//! Fairness-aware window admission.
//!
//! The intersection manager schedules one batch of plan requests per
//! processing window. Under saturation more requests are pending than one
//! window can absorb, and *which* requests get in decides both throughput
//! and fairness: a naive "first `max` in map-iteration order" cut (the
//! bug this module replaces) silently favours whatever the container
//! iteration happens to yield and can starve a vehicle indefinitely.
//!
//! [`AdmissionQueue`] holds every offered request with its arrival time
//! and a deferral count. Each window, [`AdmissionQueue::admit`] selects
//! up to [`AdmissionPolicy::max_batch`] entries:
//!
//! * Entries deferred at least [`AdmissionPolicy::max_defer_windows`]
//!   times form the **aged class** and are served first, oldest first
//!   (FIFO by admission sequence number). This bounds starvation: once a
//!   request ages, nothing pushed after it can be admitted ahead of it,
//!   so it is scheduled within `⌈backlog_ahead / capacity⌉` further
//!   windows (pinned by the `admission_props` proptest).
//! * Remaining capacity goes to the **fresh class**, ordered by
//!   [`AdmissionPolicy::order`]: [`Arrival`](AdmissionOrder::Arrival)
//!   (earliest push first) or [`Deadline`](AdmissionOrder::Deadline)
//!   (most urgent first, per a caller-supplied deadline function —
//!   typically time-to-stop-line, so vehicles about to reach the box
//!   are planned before ones that just entered the zone).
//!
//! Every cut is deterministic: ties break on a monotonically increasing
//! sequence number assigned at push, never on container iteration order.
//! With an unbounded policy (`max_batch: None`, the default) `admit`
//! returns all entries in exact push order and never sorts — the
//! historical single-batch behaviour, bit-for-bit.
//!
//! Admission is applied by the *host* (simulation world or bench driver)
//! before [`Scheduler::schedule`](crate::Scheduler::schedule); the policy
//! travels in [`SchedulerConfig`](crate::SchedulerConfig) so the host,
//! bench, and report layers read one source of truth. Schedulers
//! themselves normalize whatever batch they receive through
//! `batch_order`, so admission ordering never changes plan contents —
//! only *membership* of the window batch.

use crate::plan::PlanRequest;

/// How the fresh (non-aged) class is ordered when the cap binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionOrder {
    /// Earliest-offered first (FIFO over push order).
    Arrival,
    /// Most urgent first, per the caller's deadline function; ties break
    /// on push order.
    #[default]
    Deadline,
}

/// Per-window admission policy, carried in
/// [`SchedulerConfig`](crate::SchedulerConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Most requests admitted per window; `None` admits everything (the
    /// default — no cap, no reordering).
    pub max_batch: Option<usize>,
    /// Ordering of the fresh class when the cap binds.
    pub order: AdmissionOrder,
    /// Deferral count at which an entry joins the aged class and is
    /// served FIFO ahead of all fresh entries. Must be ≥ 1.
    pub max_defer_windows: u32,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_batch: None,
            order: AdmissionOrder::Deadline,
            max_defer_windows: 4,
        }
    }
}

impl AdmissionPolicy {
    /// A bounded deadline-ordered policy with the default aging horizon.
    pub fn bounded(max_batch: usize) -> Self {
        AdmissionPolicy {
            max_batch: Some(max_batch),
            ..AdmissionPolicy::default()
        }
    }

    /// Validates the policy, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == Some(0) {
            return Err("admission max_batch must be positive when set".into());
        }
        if self.max_defer_windows == 0 {
            return Err("admission max_defer_windows must be at least 1".into());
        }
        Ok(())
    }
}

/// One queued request with its admission bookkeeping.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Simulation time the request was offered.
    pub arrival: f64,
    /// Windows this entry has been passed over.
    pub deferrals: u32,
    /// Monotonic push sequence number — the deterministic tie-break.
    pub seq: u64,
    /// The request itself.
    pub request: PlanRequest,
}

/// Result of one [`AdmissionQueue::admit`] call.
#[derive(Debug)]
pub struct AdmissionOutcome {
    /// Entries admitted to this window, in the order the policy chose.
    pub admitted: Vec<QueuedRequest>,
    /// Entries that were waiting when the window opened.
    pub offered: usize,
    /// Entries pushed back into the queue (`offered - admitted.len()`).
    pub deferred: usize,
}

/// The pending-request queue an admission policy draws from.
#[derive(Debug, Clone, Default)]
pub struct AdmissionQueue {
    entries: Vec<QueuedRequest>,
    next_seq: u64,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        AdmissionQueue::default()
    }

    /// Number of waiting entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Waiting entries in push order (aged entries keep their original
    /// position; ordering is applied only at admission time).
    pub fn iter(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.entries.iter()
    }

    /// Sum of deferral counts across waiting entries (metrics hook).
    pub fn total_deferrals(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.deferrals)).sum()
    }

    /// Offers a request, stamping it with the next sequence number.
    pub fn push(&mut self, arrival: f64, request: PlanRequest) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(QueuedRequest {
            arrival,
            deferrals: 0,
            seq,
            request,
        });
    }

    /// Drops waiting entries that no longer need a plan (left the map,
    /// got a plan by other means).
    pub fn retain(&mut self, mut keep: impl FnMut(&QueuedRequest) -> bool) {
        self.entries.retain(|e| keep(e));
    }

    /// Removes and returns every waiting entry in push order.
    pub fn drain_all(&mut self) -> Vec<QueuedRequest> {
        std::mem::take(&mut self.entries)
    }

    /// Admits up to `policy.max_batch` entries for this window.
    ///
    /// `deadline_of` maps a waiting entry to its urgency key (smaller =
    /// sooner = admitted earlier under
    /// [`AdmissionOrder::Deadline`]); it is only consulted when the cap
    /// binds and the order is `Deadline`. Entries passed over get their
    /// deferral count incremented and stay queued in their original
    /// relative order.
    pub fn admit(
        &mut self,
        policy: &AdmissionPolicy,
        mut deadline_of: impl FnMut(&QueuedRequest) -> f64,
    ) -> AdmissionOutcome {
        let offered = self.entries.len();
        let cap = policy.max_batch.unwrap_or(usize::MAX);
        if offered <= cap {
            // Uncapped window: exact push order, no sorting — identical
            // to the historical single-batch path.
            return AdmissionOutcome {
                admitted: std::mem::take(&mut self.entries),
                offered,
                deferred: 0,
            };
        }

        let mut waiting = std::mem::take(&mut self.entries);
        // Aged entries first, FIFO by seq; then the fresh class by the
        // configured order. Sorting by seq is a total order, so the cut
        // is deterministic regardless of how `waiting` was built.
        let mut ranked: Vec<usize> = (0..waiting.len()).collect();
        let aged = |e: &QueuedRequest| e.deferrals >= policy.max_defer_windows;
        ranked.sort_by(|&a, &b| {
            let (ea, eb) = (&waiting[a], &waiting[b]);
            match (aged(ea), aged(eb)) {
                (true, false) => return std::cmp::Ordering::Less,
                (false, true) => return std::cmp::Ordering::Greater,
                (true, true) => return ea.seq.cmp(&eb.seq),
                (false, false) => {}
            }
            match policy.order {
                AdmissionOrder::Arrival => ea.seq.cmp(&eb.seq),
                AdmissionOrder::Deadline => deadline_of(ea)
                    .total_cmp(&deadline_of(eb))
                    .then(ea.seq.cmp(&eb.seq)),
            }
        });

        let cut: std::collections::HashSet<usize> = ranked[..cap].iter().copied().collect();
        let mut admitted = Vec::with_capacity(cap);
        for &i in &ranked[..cap] {
            admitted.push(waiting[i].clone());
        }
        // Deferred entries keep their original relative order so the
        // next window's tie-breaks stay push-stable.
        let mut kept = Vec::with_capacity(waiting.len() - cap);
        for (i, mut e) in waiting.drain(..).enumerate() {
            if !cut.contains(&i) {
                e.deferrals += 1;
                kept.push(e);
            }
        }
        let deferred = kept.len();
        self.entries = kept;
        AdmissionOutcome {
            admitted,
            offered,
            deferred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_intersection::MovementId;
    use nwade_traffic::{VehicleDescriptor, VehicleId};

    fn req(id: u64, position_s: f64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor {
                brand: "test".into(),
                model: "unit".into(),
                color: "gray".into(),
            },
            movement: MovementId::new(0),
            position_s,
            speed: 10.0,
        }
    }

    fn ids(entries: &[QueuedRequest]) -> Vec<u64> {
        entries.iter().map(|e| e.request.id.raw()).collect()
    }

    #[test]
    fn unbounded_policy_preserves_push_order_exactly() {
        let mut q = AdmissionQueue::new();
        for id in [5u64, 1, 9, 3] {
            q.push(0.0, req(id, 10.0));
        }
        let out = q.admit(&AdmissionPolicy::default(), |_| 0.0);
        assert_eq!(ids(&out.admitted), vec![5, 1, 9, 3]);
        assert_eq!((out.offered, out.deferred), (4, 0));
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_order_admits_most_urgent_first() {
        let mut q = AdmissionQueue::new();
        // Larger position_s = closer to the box = smaller deadline.
        q.push(0.0, req(1, 10.0));
        q.push(0.0, req(2, 90.0));
        q.push(0.0, req(3, 50.0));
        let policy = AdmissionPolicy::bounded(2);
        let out = q.admit(&policy, |e| 100.0 - e.request.position_s);
        assert_eq!(ids(&out.admitted), vec![2, 3]);
        assert_eq!((out.offered, out.deferred), (3, 1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().next().unwrap().deferrals, 1);
    }

    #[test]
    fn arrival_order_is_fifo_under_cap() {
        let mut q = AdmissionQueue::new();
        for id in [7u64, 8, 9] {
            q.push(0.0, req(id, 10.0));
        }
        let policy = AdmissionPolicy {
            max_batch: Some(2),
            order: AdmissionOrder::Arrival,
            ..AdmissionPolicy::default()
        };
        let out = q.admit(&policy, |_| unreachable!("arrival order never asks"));
        assert_eq!(ids(&out.admitted), vec![7, 8]);
        assert_eq!(ids(&q.drain_all()), vec![9]);
    }

    #[test]
    fn aged_entries_jump_the_deadline_queue() {
        let mut q = AdmissionQueue::new();
        q.push(0.0, req(1, 10.0)); // far from box: keeps losing on deadline
        let policy = AdmissionPolicy {
            max_batch: Some(1),
            max_defer_windows: 2,
            ..AdmissionPolicy::default()
        };
        let deadline = |e: &QueuedRequest| 1000.0 - e.request.position_s;
        // Two windows of more-urgent competition defer vehicle 1 twice.
        for w in 0..2u64 {
            q.push(1.0, req(100 + w, 900.0));
            let out = q.admit(&policy, deadline);
            assert_eq!(ids(&out.admitted), vec![100 + w]);
        }
        // Now aged: admitted ahead of an even more urgent newcomer.
        q.push(2.0, req(200, 990.0));
        let out = q.admit(&policy, deadline);
        assert_eq!(ids(&out.admitted), vec![1]);
    }

    #[test]
    fn retain_drops_stale_entries() {
        let mut q = AdmissionQueue::new();
        q.push(0.0, req(1, 10.0));
        q.push(0.0, req(2, 20.0));
        q.retain(|e| e.request.id.raw() != 1);
        assert_eq!(ids(&q.drain_all()), vec![2]);
    }

    #[test]
    fn policy_validation_rejects_degenerate_values() {
        assert!(AdmissionPolicy::default().validate().is_ok());
        assert!(AdmissionPolicy::bounded(0).validate().is_err());
        let p = AdmissionPolicy {
            max_defer_windows: 0,
            ..AdmissionPolicy::default()
        };
        assert!(p.validate().is_err());
    }
}
