//! The conflict check a vehicle runs on a batch of travel plans.
//!
//! Algorithm 1 (step ii) has each vehicle "calculate the travel plans in
//! the block to see if the plans contain any conflict (i.e., car
//! collision)". The check here uses the same zone-occupancy semantics as
//! the scheduler, so an honest scheduler's output always passes and any
//! tampered or equivocating plan set is caught deterministically.

use crate::plan::TravelPlan;
use crate::reservation::{occupancy_of, ReservationTable};
use nwade_intersection::Topology;
use nwade_traffic::VehicleId;

/// Returns every pair of plans that would occupy the same conflict-zone
/// cell with less than `gap` seconds of separation, ordered and deduped.
///
/// An empty result means the plan set is collision-free under the
/// scheduler's own safety criterion.
pub fn find_conflicts(
    plans: &[TravelPlan],
    topology: &Topology,
    gap: f64,
) -> Vec<(VehicleId, VehicleId)> {
    let mut table = ReservationTable::new();
    let mut conflicts = Vec::new();
    for plan in plans {
        let movement = topology.movement(plan.movement());
        let occupancy = occupancy_of(movement, plan.profile());
        if let Some((_, holder)) = table.first_conflict(&occupancy, gap, Some(plan.id())) {
            let pair = (holder.min(plan.id()), holder.max(plan.id()));
            conflicts.push(pair);
        }
        table.reserve(plan.id(), &occupancy);
    }
    conflicts.sort_unstable();
    conflicts.dedup();
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::VehicleStatus;
    use nwade_geometry::MotionProfile;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        build(IntersectionKind::FourWayCross, &GeometryConfig::default())
    }

    fn plan(topo: &Topology, id: u64, movement: MovementId, start_time: f64) -> TravelPlan {
        let path = topo.movement(movement).path();
        TravelPlan::new(
            VehicleId::new(id),
            VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            VehicleStatus {
                position: path.point_at(0.0),
                speed: 15.0,
                heading: path.heading_at(0.0),
            },
            movement,
            MotionProfile::cruise(start_time, 15.0, path.length()),
        )
    }

    #[test]
    fn simultaneous_crossing_plans_conflict() {
        let topo = topo();
        let (a, b) = topo.conflicting_pairs()[0];
        let pa = plan(&topo, 0, a, 0.0);
        let pb = plan(&topo, 1, b, 0.0);
        let conflicts = find_conflicts(&[pa, pb], &topo, 1.0);
        assert_eq!(conflicts, vec![(VehicleId::new(0), VehicleId::new(1))]);
    }

    #[test]
    fn staggered_crossing_plans_are_clean() {
        let topo = topo();
        let (a, b) = topo.conflicting_pairs()[0];
        let pa = plan(&topo, 0, a, 0.0);
        // 60 s later: all shared cells long vacated.
        let pb = plan(&topo, 1, b, 60.0);
        assert!(find_conflicts(&[pa, pb], &topo, 1.0).is_empty());
    }

    #[test]
    fn conflict_reported_once_per_pair() {
        let topo = topo();
        let (a, b) = topo.conflicting_pairs()[0];
        // Crossing paths share many cells; the pair must appear once.
        let plans = vec![plan(&topo, 0, a, 0.0), plan(&topo, 1, b, 0.0)];
        assert_eq!(find_conflicts(&plans, &topo, 1.0).len(), 1);
    }

    #[test]
    fn empty_and_singleton_sets_are_clean() {
        let topo = topo();
        assert!(find_conflicts(&[], &topo, 1.0).is_empty());
        let p = plan(&topo, 0, MovementId::new(0), 0.0);
        assert!(find_conflicts(&[p], &topo, 1.0).is_empty());
    }

    #[test]
    fn tailgating_same_lane_conflicts() {
        let topo = topo();
        let m = MovementId::new(0);
        // Two vehicles on the same movement 0.2 s apart: same cells,
        // overlapping occupancy.
        let plans = vec![plan(&topo, 0, m, 0.0), plan(&topo, 1, m, 0.2)];
        assert_eq!(find_conflicts(&plans, &topo, 1.0).len(), 1);
    }
}
