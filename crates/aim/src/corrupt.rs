//! Malicious-IM plan corruptions (attack injection).
//!
//! A compromised intersection manager "may send out wrong travel plans to
//! induce pile-up accidents" (threat iii, Fig. 1c). These helpers take an
//! honestly scheduled batch and corrupt it the way the attacker would;
//! the NWADE block verification must catch every one of them.

use crate::plan::TravelPlan;
use crate::reservation::occupancy_of;
use nwade_geometry::MotionProfile;
use nwade_intersection::Topology;
use std::collections::HashMap;

/// Retimes two plans on zone-sharing movements so they hit a shared cell
/// simultaneously — the "conflicting travel plans" attack.
///
/// Returns `None` if no two plans in the batch share any zone cell (the
/// attacker needs crossing traffic to stage a collision).
pub fn make_conflicting(
    plans: &[TravelPlan],
    topology: &Topology,
    now: f64,
) -> Option<Vec<TravelPlan>> {
    // Find two plans whose movements share a cell.
    let mut cell_user: HashMap<nwade_intersection::ZoneId, usize> = HashMap::new();
    let mut pair: Option<(usize, usize, nwade_intersection::ZoneId)> = None;
    'outer: for (i, plan) in plans.iter().enumerate() {
        for zi in topology.movement(plan.movement()).zones() {
            if let Some(&j) = cell_user.get(&zi.zone) {
                if plans[j].movement() != plan.movement() {
                    pair = Some((j, i, zi.zone));
                    break 'outer;
                }
            } else {
                cell_user.insert(zi.zone, i);
            }
        }
    }
    let (i, j, zone) = pair?;

    let mut out = plans.to_vec();
    // Distance from each vehicle's current position to the shared cell.
    let dist_to = |p: &TravelPlan| -> f64 {
        let m = topology.movement(p.movement());
        let zi = m
            .zones()
            .iter()
            .find(|z| z.zone == zone)
            .expect("zone on movement");
        (zi.enter - p.profile().start_position()).max(1.0)
    };
    let (da, db) = (dist_to(&plans[i]), dist_to(&plans[j]));
    // Both cruise so they reach the shared cell at the same instant, at
    // speeds the attacker picks to look plausible (≤ 20 m/s).
    let t_meet = da.max(db) / 18.0;
    let retime = |p: &TravelPlan, d: f64| -> TravelPlan {
        let v = (d / t_meet).clamp(1.0, 25.0);
        let m = topology.movement(p.movement());
        let remaining = m.path().length() - p.profile().start_position();
        let profile = MotionProfile::new(
            now,
            p.profile().start_position(),
            v,
            MotionProfile::cruise(now, v, remaining).segments().to_vec(),
        );
        TravelPlan::new(
            p.id(),
            p.descriptor().clone(),
            *p.status(),
            p.movement(),
            profile,
        )
    };
    out[i] = retime(&plans[i], da);
    out[j] = retime(&plans[j], db);
    debug_assert!(
        !crate::find_conflicts(&out, topology, 0.1).is_empty(),
        "corruption failed to create a conflict"
    );
    Some(out)
}

/// Replaces one plan's instruction with a profile that stops the vehicle
/// dead in the middle of the intersection — a subtler wrong plan that is
/// consistent by itself but blocks everyone scheduled behind it.
///
/// Returns `None` when `plans` is empty.
pub fn make_parking(
    plans: &[TravelPlan],
    topology: &Topology,
    now: f64,
) -> Option<Vec<TravelPlan>> {
    let mut out = plans.to_vec();
    let victim = out.first_mut()?;
    let m = topology.movement(victim.movement());
    let mid = (m.box_entry() + m.box_exit()) / 2.0;
    let s0 = victim.profile().start_position();
    // Cruise, then brake so the stop lands exactly mid-box.
    let v = 12.0f64;
    let brake_dist = v * v / (2.0 * 3.0);
    let cruise_dist = (mid - s0 - brake_dist).max(0.0);
    let profile = MotionProfile::new(now, s0, v, vec![])
        .with_segment(cruise_dist / v, 0.0)
        .with_segment(v / 3.0, -3.0);
    *victim = TravelPlan::new(
        victim.id(),
        victim.descriptor().clone(),
        *victim.status(),
        victim.movement(),
        profile,
    );
    Some(out)
}

/// Checks whether a plan's occupancy intrudes on any other plan in the
/// batch (used by tests and by attack validation).
pub fn intrudes(plan: &TravelPlan, others: &[TravelPlan], topology: &Topology, gap: f64) -> bool {
    let mut table = crate::reservation::ReservationTable::new();
    for other in others {
        if other.id() == plan.id() {
            continue;
        }
        let occ = occupancy_of(topology.movement(other.movement()), other.profile());
        table.reserve(other.id(), &occ);
    }
    let occ = occupancy_of(topology.movement(plan.movement()), plan.profile());
    !table.is_free(&occ, gap, Some(plan.id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanRequest;
    use crate::scheduler::{ReservationScheduler, Scheduler, SchedulerConfig};
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::{VehicleDescriptor, VehicleId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn honest_batch(n: usize) -> (Arc<Topology>, Vec<TravelPlan>) {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let n_mv = topo.movements().len();
        let reqs: Vec<PlanRequest> = (0..n as u64)
            .map(|i| PlanRequest {
                id: VehicleId::new(i),
                descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(i)),
                movement: MovementId::new(((i as usize * 7) % n_mv) as u16),
                position_s: 0.0,
                speed: 15.0,
            })
            .collect();
        // One request per batch, 4 s apart (spawns are physically gated).
        let plans: Vec<TravelPlan> = reqs
            .iter()
            .enumerate()
            .flat_map(|(i, r)| s.schedule(std::slice::from_ref(r), i as f64 * 4.0))
            .collect();
        (topo, plans)
    }

    #[test]
    fn honest_batch_is_clean_then_corruption_conflicts() {
        let (topo, plans) = honest_batch(10);
        assert!(crate::find_conflicts(&plans, &topo, 0.5).is_empty());
        let corrupted = make_conflicting(&plans, &topo, 0.0).expect("crossing traffic exists");
        assert!(
            !crate::find_conflicts(&corrupted, &topo, 0.5).is_empty(),
            "corrupted batch must contain a conflict"
        );
        // Same vehicles, same movements — only instructions changed.
        assert_eq!(corrupted.len(), plans.len());
        for (a, b) in corrupted.iter().zip(&plans) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.movement(), b.movement());
        }
    }

    #[test]
    fn make_conflicting_needs_crossing_traffic() {
        let (topo, plans) = honest_batch(1);
        assert!(make_conflicting(&plans, &topo, 0.0).is_none());
    }

    #[test]
    fn parking_plan_blocks_the_box() {
        let (topo, plans) = honest_batch(6);
        let corrupted = make_parking(&plans, &topo, 0.0).expect("non-empty batch");
        let victim = &corrupted[0];
        // Victim stops inside the box.
        assert_eq!(victim.profile().final_speed(), 0.0);
        let m = topo.movement(victim.movement());
        let stop_pos = victim.profile().end_position();
        assert!(
            stop_pos > m.box_entry() && stop_pos < m.box_exit(),
            "stops at {stop_pos:.1}, box [{:.1}, {:.1}]",
            m.box_entry(),
            m.box_exit()
        );
    }

    #[test]
    fn intrudes_detects_overlap() {
        let (topo, plans) = honest_batch(10);
        let corrupted = make_conflicting(&plans, &topo, 0.0).expect("pair found");
        // At least one corrupted plan intrudes on the rest.
        let any = corrupted
            .iter()
            .any(|p| intrudes(p, &corrupted, &topo, 0.5));
        assert!(any);
        // No honest plan intrudes on the honest batch.
        assert!(plans.iter().all(|p| !intrudes(p, &plans, &topo, 0.5)));
    }

    #[test]
    fn empty_batch_handled() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        assert!(make_parking(&[], &topo, 0.0).is_none());
        assert!(make_conflicting(&[], &topo, 0.0).is_none());
    }
}
