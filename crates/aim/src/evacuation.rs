//! Evacuation planning (§IV-B5).
//!
//! When a threat is confirmed, the intersection manager regenerates
//! travel plans so normal vehicles circumvent the malicious vehicle:
//! cells around each threat position are blocked for a danger window, the
//! speed cap is reduced (evacuation plans "instruct vehicles to drive
//! slower to maintain sufficient reaction"), and every affected vehicle
//! is rescheduled from its current state. A vehicle that cannot reach its
//! exit without entering a blocked cell pulls over (brakes to a stop).

use crate::plan::{PlanRequest, TravelPlan, VehicleStatus};
use crate::reservation::ReservationTable;
use crate::scheduler::SchedulerConfig;
use crate::seek::{EntrySeeker, SeekScratch};
use nwade_geometry::{MotionProfile, TimeInterval, Vec2};
use nwade_intersection::{Topology, ZoneId};
use nwade_traffic::VehicleId;
use std::sync::Arc;

/// Sentinel "vehicle" holding threat-blocked cells.
const THREAT_HOLDER: VehicleId = VehicleId::new(u64::MAX);

/// Evacuation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvacuationConfig {
    /// Radius around a threat position whose cells are blocked, meters.
    pub danger_radius: f64,
    /// How long blocked cells stay blocked, seconds.
    pub block_duration: f64,
    /// Speed cap multiplier during evacuation (≤ 1).
    pub speed_factor: f64,
}

impl Default for EvacuationConfig {
    fn default() -> Self {
        EvacuationConfig {
            danger_radius: 25.0,
            block_duration: 60.0,
            speed_factor: 0.6,
        }
    }
}

/// Generates evacuation plans around confirmed threats.
#[derive(Debug, Clone)]
pub struct EvacuationPlanner {
    topology: Arc<Topology>,
    scheduler_config: SchedulerConfig,
    config: EvacuationConfig,
}

impl EvacuationPlanner {
    /// Creates a planner.
    pub fn new(
        topology: Arc<Topology>,
        scheduler_config: SchedulerConfig,
        config: EvacuationConfig,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.speed_factor) && config.speed_factor > 0.0,
            "speed factor must be in (0, 1]"
        );
        EvacuationPlanner {
            topology,
            scheduler_config,
            config,
        }
    }

    /// Zone cells within the danger radius of any threat.
    pub fn blocked_cells(&self, threats: &[Vec2]) -> Vec<ZoneId> {
        let cell = self.topology.zone_cell();
        let mut out = Vec::new();
        for threat in threats {
            let reach = (self.config.danger_radius / cell).ceil() as i32;
            let c0 = (threat.x / cell).floor() as i32;
            let r0 = (threat.y / cell).floor() as i32;
            for dc in -reach..=reach {
                for dr in -reach..=reach {
                    let center = Vec2::new(
                        (c0 + dc) as f64 * cell + cell / 2.0,
                        (r0 + dr) as f64 * cell + cell / 2.0,
                    );
                    if center.distance(*threat) <= self.config.danger_radius {
                        out.push(ZoneId {
                            col: c0 + dc,
                            row: r0 + dr,
                        });
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Replans `vehicles` (their *current* states) around `threats` at
    /// time `now`. Vehicles closer to their exit are planned first so the
    /// intersection drains outward.
    pub fn plan(&self, vehicles: &[PlanRequest], threats: &[Vec2], now: f64) -> Vec<TravelPlan> {
        let mut table = ReservationTable::new();
        let block = TimeInterval::new(now, now + self.config.block_duration);
        let blocked: Vec<_> = self
            .blocked_cells(threats)
            .into_iter()
            .map(|z| (z, block))
            .collect();
        table.reserve(THREAT_HOLDER, &blocked);

        let mut order: Vec<&PlanRequest> = vehicles.iter().collect();
        order.sort_by(|a, b| {
            let ra = self.topology.movement(a.movement).path().length() - a.position_s;
            let rb = self.topology.movement(b.movement).path().length() - b.position_s;
            ra.partial_cmp(&rb).expect("finite remaining distance")
        });

        let lim = self.scheduler_config.limits;
        let v_cap = lim.v_max * self.config.speed_factor;
        let mut scratch = SeekScratch::new();
        let mut plans = Vec::with_capacity(vehicles.len());
        for req in order {
            let movement = self.topology.movement(req.movement);
            let path = movement.path();
            let d_end = (path.length() - req.position_s).max(0.0);
            let earliest = now
                + MotionProfile::earliest_arrival(req.speed.min(v_cap), v_cap, lim.a_max, d_end);
            let seeker = EntrySeeker {
                movement,
                table: &table,
                gap: self.scheduler_config.zone_gap,
                ignore: req.id,
                now,
                v0: req.speed.min(v_cap),
                v_max: v_cap,
                a_max: lim.a_max,
                d_max: lim.d_max,
                d_plan: d_end,
                position_s: req.position_s,
                start: earliest,
                step: self.scheduler_config.search_step,
                deadline: earliest + self.scheduler_config.max_delay,
            };
            let chosen = if self.scheduler_config.probe {
                seeker.linear(&mut scratch)
            } else {
                seeker.seek(None, &mut scratch)
            };
            let (profile, occupancy) = chosen.unwrap_or_else(|| {
                // Pull over: brake to a stop without planning through
                // anyone already parked.
                crate::reservation::park_fallback(
                    movement,
                    req.position_s,
                    req.speed.min(lim.v_max),
                    now,
                    &table,
                    self.scheduler_config.zone_gap,
                    req.id,
                    lim.d_max,
                )
            });
            table.reserve(req.id, &occupancy);
            plans.push(TravelPlan::new(
                req.id,
                req.descriptor.clone(),
                VehicleStatus {
                    position: path.point_at(req.position_s),
                    speed: req.speed,
                    heading: path.heading_at(req.position_s),
                },
                req.movement,
                profile,
            ));
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::find_conflicts;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn planner(topo: Arc<Topology>) -> EvacuationPlanner {
        EvacuationPlanner::new(
            topo,
            SchedulerConfig::default(),
            EvacuationConfig::default(),
        )
    }

    fn request(id: u64, movement: usize, s: f64, v: f64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(movement as u16),
            position_s: s,
            speed: v,
        }
    }

    #[test]
    fn blocked_cells_cover_threat_disc() {
        let topo = topo();
        let p = planner(topo.clone());
        let cells = p.blocked_cells(&[Vec2::ZERO]);
        // ~π·25²/9 ≈ 218 cells.
        assert!(
            (150..=300).contains(&cells.len()),
            "unexpected blocked count {}",
            cells.len()
        );
        // All within the danger radius (cell diagonal slack).
        let cell = topo.zone_cell();
        for z in &cells {
            let center = Vec2::new(
                z.col as f64 * cell + cell / 2.0,
                z.row as f64 * cell + cell / 2.0,
            );
            assert!(center.norm() <= 25.0 + 1e-9);
        }
    }

    #[test]
    fn no_threats_blocks_nothing() {
        let p = planner(topo());
        assert!(p.blocked_cells(&[]).is_empty());
    }

    #[test]
    fn evacuation_plans_avoid_the_threat_cells() {
        let topo = topo();
        let p = planner(topo.clone());
        // Threat parked at the center of the box.
        let threat = Vec2::ZERO;
        let reqs: Vec<PlanRequest> = (0..6)
            .map(|i| request(i, (i as usize * 5) % topo.movements().len(), 50.0, 12.0))
            .collect();
        let plans = p.plan(&reqs, &[threat], 0.0);
        assert_eq!(plans.len(), 6);
        assert!(find_conflicts(&plans, &topo, 0.5).is_empty());
        let blocked: std::collections::HashSet<_> =
            p.blocked_cells(&[threat]).into_iter().collect();
        for plan in &plans {
            let m = topo.movement(plan.movement());
            for (zone, iv) in crate::reservation::occupancy_of(m, plan.profile()) {
                if blocked.contains(&zone) {
                    assert!(
                        iv.start >= 60.0 - 1.2,
                        "{} enters blocked {zone} at {:.1}s",
                        plan.id(),
                        iv.start
                    );
                }
            }
        }
    }

    #[test]
    fn evacuation_caps_speed() {
        let topo = topo();
        let p = planner(topo.clone());
        let reqs = vec![request(0, 0, 0.0, 20.0)];
        let plans = p.plan(&reqs, &[Vec2::new(500.0, 500.0)], 0.0);
        let cap = SchedulerConfig::default().limits.v_max * 0.6;
        for t in 0..60 {
            assert!(
                plans[0].profile().speed_at(t as f64) <= cap + 1e-6,
                "speed exceeds the evacuation cap"
            );
        }
    }

    #[test]
    fn vehicle_trapped_by_threat_pulls_over() {
        let topo = topo();
        let mut cfg = EvacuationConfig::default();
        cfg.block_duration = 1e6; // threat never clears
        let p = EvacuationPlanner::new(topo.clone(), SchedulerConfig::default(), cfg);
        // Vehicle 10 m before the box on movement 0, threat right on its
        // path ahead.
        let m = topo.movement(MovementId::new(0));
        let ahead = m.path().point_at(m.box_entry() + 10.0);
        let reqs = vec![request(0, 0, m.box_entry() - 10.0, 10.0)];
        let plans = p.plan(&reqs, &[ahead], 0.0);
        assert_eq!(plans[0].profile().final_speed(), 0.0, "must pull over");
        assert_eq!(plans[0].exit_time(&topo), None);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn zero_speed_factor_panics() {
        let mut cfg = EvacuationConfig::default();
        cfg.speed_factor = 0.0;
        let _ = EvacuationPlanner::new(topo(), SchedulerConfig::default(), cfg);
    }
}
