//! Baseline: first-come-first-served full-intersection lock.
//!
//! The classic conservative policy — only one vehicle may be inside the
//! intersection box at a time. Used as the throughput baseline the
//! reservation scheduler is compared against.

use crate::plan::{PlanRequest, TravelPlan, VehicleStatus};
use crate::reservation::{occupancy_of, ReservationTable};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::seek::{EntrySeeker, SeekScratch};
use nwade_geometry::MotionProfile;
use nwade_intersection::Topology;
use std::sync::Arc;

/// The FCFS full-lock scheduler.
#[derive(Debug, Clone)]
pub struct FcfsScheduler {
    topology: Arc<Topology>,
    config: SchedulerConfig,
    table: ReservationTable,
    box_free_at: f64,
    scratch: SeekScratch,
}

impl FcfsScheduler {
    /// Creates the baseline scheduler.
    pub fn new(topology: Arc<Topology>, config: SchedulerConfig) -> Self {
        FcfsScheduler {
            topology,
            config,
            table: ReservationTable::new(),
            box_free_at: f64::NEG_INFINITY,
            scratch: SeekScratch::new(),
        }
    }

    fn plan_one(&mut self, req: &PlanRequest, now: f64) -> TravelPlan {
        let movement = self.topology.movement(req.movement);
        let path = movement.path();
        let lim = self.config.limits;
        let d_box = movement.box_entry() - req.position_s;
        let in_approach = d_box > 1.0;
        let d_plan = if in_approach {
            d_box
        } else {
            (path.length() - req.position_s).max(0.0)
        };
        let earliest =
            now + MotionProfile::earliest_arrival(req.speed, lim.v_max, lim.a_max, d_plan);
        // The global box lock only gates vehicles still approaching it.
        let target = if in_approach {
            earliest.max(self.box_free_at + self.config.zone_gap)
        } else {
            earliest
        };

        let seeker = EntrySeeker {
            movement,
            table: &self.table,
            gap: self.config.zone_gap,
            ignore: req.id,
            now,
            v0: req.speed,
            v_max: lim.v_max,
            a_max: lim.a_max,
            d_max: lim.d_max,
            d_plan,
            position_s: req.position_s,
            start: target,
            step: self.config.search_step,
            deadline: target + self.config.max_delay,
        };
        let chosen = if self.config.probe {
            seeker.linear(&mut self.scratch)
        } else {
            seeker.seek(None, &mut self.scratch)
        };

        let (profile, occupancy) = chosen.unwrap_or_else(|| {
            crate::reservation::park_fallback(
                movement,
                req.position_s,
                req.speed.min(lim.v_max),
                now,
                &self.table,
                self.config.zone_gap,
                req.id,
                lim.d_max,
            )
        });

        // Hold the global box lock until this vehicle leaves the box.
        if let Some(exit) = profile.time_at_position(movement.box_exit()) {
            self.box_free_at = self.box_free_at.max(exit);
        }
        self.table.release(req.id);
        self.table.reserve(req.id, &occupancy);
        TravelPlan::new(
            req.id,
            req.descriptor.clone(),
            VehicleStatus {
                position: path.point_at(req.position_s),
                speed: req.speed,
                heading: path.heading_at(req.position_s),
            },
            req.movement,
            profile,
        )
    }
}

impl Scheduler for FcfsScheduler {
    fn schedule(&mut self, requests: &[PlanRequest], now: f64) -> Vec<TravelPlan> {
        crate::scheduler::batch_order(requests, &self.topology)
            .into_iter()
            .map(|r| self.plan_one(r, now))
            .collect()
    }

    fn collect_garbage(&mut self, t: f64) {
        self.table.release_before(t);
    }

    fn release(&mut self, vehicle: nwade_traffic::VehicleId) {
        self.table.release(vehicle);
    }

    fn book(&mut self, plan: &TravelPlan) {
        self.table.release(plan.id());
        let occupancy = occupancy_of(self.topology.movement(plan.movement()), plan.profile());
        self.table.reserve(plan.id(), &occupancy);
    }

    fn name(&self) -> &'static str {
        "fcfs-lock"
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn export_state(&self) -> crate::scheduler::SchedulerState {
        // The box-free horizon is durable state too: restoring only the
        // table would let a recovered IM re-admit a vehicle into the
        // box before the previous crossing finishes.
        crate::scheduler::SchedulerState {
            table: self.table.encode(),
            aux: self.box_free_at.to_be_bytes().to_vec(),
        }
    }

    fn import_state(&mut self, state: &crate::scheduler::SchedulerState) -> bool {
        let Some(table) = ReservationTable::decode(&state.table) else {
            return false;
        };
        let Ok(aux): Result<[u8; 8], _> = state.aux.as_slice().try_into() else {
            return false;
        };
        self.table = table;
        self.box_free_at = f64::from_be_bytes(aux);
        true
    }

    fn clone_box(&self) -> Box<dyn crate::scheduler::Scheduler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::find_conflicts;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::{VehicleDescriptor, VehicleId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn request(id: u64, movement: usize) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(movement as u16),
            position_s: 0.0,
            speed: 15.0,
        }
    }

    /// One request per batch, 4 s apart — matches how the simulator gates
    /// spawns so vehicles never materialize on top of each other.
    fn schedule_staggered<S: Scheduler>(s: &mut S, reqs: &[PlanRequest]) -> Vec<TravelPlan> {
        reqs.iter()
            .enumerate()
            .flat_map(|(i, r)| s.schedule(std::slice::from_ref(r), i as f64 * 4.0))
            .collect()
    }

    #[test]
    fn box_crossings_are_serialized() {
        let topo = topo();
        let mut s = FcfsScheduler::new(topo.clone(), SchedulerConfig::default());
        let plans = schedule_staggered(&mut s, &[request(0, 0), request(1, 5), request(2, 9)]);
        // Every pair of (box-entry, box-exit) windows must be disjoint.
        let mut windows: Vec<(f64, f64)> = plans
            .iter()
            .map(|p| {
                let m = topo.movement(p.movement());
                (
                    p.profile().time_at_position(m.box_entry()).expect("enters"),
                    p.profile().time_at_position(m.box_exit()).expect("exits"),
                )
            })
            .collect();
        windows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in windows.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "box windows overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        assert!(find_conflicts(&plans, &topo, 0.5).is_empty());
    }

    /// Denser stream (1.5 s apart) so the single-vehicle box lock binds.
    fn schedule_dense<S: Scheduler>(s: &mut S, reqs: &[PlanRequest]) -> Vec<TravelPlan> {
        reqs.iter()
            .enumerate()
            .flat_map(|(i, r)| s.schedule(std::slice::from_ref(r), i as f64 * 1.5))
            .collect()
    }

    #[test]
    fn fcfs_is_slower_than_reservation() {
        use crate::scheduler::ReservationScheduler;
        let topo = topo();
        let n = topo.movements().len();
        let reqs: Vec<PlanRequest> = (0..20).map(|i| request(i, (i as usize * 7) % n)).collect();
        let exit_sum = |plans: &[TravelPlan]| -> f64 {
            plans
                .iter()
                .map(|p| p.exit_time(&topo).unwrap_or(f64::INFINITY))
                .sum()
        };
        let mut fcfs = FcfsScheduler::new(topo.clone(), SchedulerConfig::default());
        let mut resv = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let fcfs_total = exit_sum(&schedule_dense(&mut fcfs, &reqs));
        let resv_total = exit_sum(&schedule_dense(&mut resv, &reqs));
        assert!(
            resv_total < fcfs_total,
            "reservation ({resv_total:.0}) should beat FCFS ({fcfs_total:.0})"
        );
    }

    #[test]
    fn name_and_topology() {
        let topo = topo();
        let s = FcfsScheduler::new(topo.clone(), SchedulerConfig::default());
        assert_eq!(s.name(), "fcfs-lock");
        assert_eq!(s.topology().name(), "4-way cross");
    }
}
