//! Autonomous intersection management (AIM) substrate.
//!
//! The paper integrates NWADE into DASH (its reference \[16\]), a reservation-style
//! intersection manager. DASH itself is closed; this crate implements a
//! conflict-free reservation scheduler with the same externally visible
//! behaviour — each incoming vehicle asks for a plan, the manager returns
//! a kinematically feasible speed profile that crosses the intersection
//! without ever sharing a conflict-zone cell with another vehicle at the
//! same time — plus two baselines (full-lock FCFS and a fixed traffic
//! light) used for throughput comparisons.
//!
//! * [`TravelPlan`] — `⟨id, char, status, inst⟩` exactly as Eq. 1,
//! * [`ReservationTable`] — time-interval bookings per conflict zone,
//! * [`ReservationScheduler`] — the DASH stand-in,
//! * [`FcfsScheduler`], [`TrafficLightScheduler`] — baselines,
//! * [`find_conflicts`] — the conflict check vehicles run on received
//!   blocks (Algorithm 1, step ii),
//! * [`AdmissionQueue`] — fairness-aware per-window admission with a
//!   starvation-bounding aged class (applied by the host before
//!   scheduling),
//! * [`EvacuationPlanner`] — regenerates plans around confirmed threats,
//! * [`corrupt`] — malicious-IM plan corruptions used by attack
//!   injection.

#![forbid(unsafe_code)]

pub mod admission;
pub mod conflict;
pub mod corrupt;
pub mod evacuation;
pub mod fcfs;
pub mod plan;
pub mod reservation;
pub mod scheduler;
pub mod seek;
pub mod traffic_light;

pub use admission::{
    AdmissionOrder, AdmissionOutcome, AdmissionPolicy, AdmissionQueue, QueuedRequest,
};
pub use conflict::find_conflicts;
pub use evacuation::EvacuationPlanner;
pub use fcfs::FcfsScheduler;
pub use plan::{PlanRequest, TravelPlan, VehicleStatus};
pub use reservation::{occupancy_into, occupancy_of, park_fallback, Blocking, ReservationTable};
pub use scheduler::{ReservationScheduler, Scheduler, SchedulerConfig, SchedulerState};
pub use seek::{EntrySeeker, SeekScratch};
pub use traffic_light::TrafficLightScheduler;
