//! Travel plans: `⟨id, char, status, inst⟩` (Eq. 1 of the paper).

use bytes::{BufMut, BytesMut};
use nwade_geometry::{MotionProfile, Vec2};
use nwade_intersection::{MovementId, Topology};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use serde::{Deserialize, Serialize};

/// A vehicle's dynamic status at planning time: GPS position, speed and
/// moving direction (§IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleStatus {
    /// World position in meters.
    pub position: Vec2,
    /// Speed in m/s.
    pub speed: f64,
    /// Unit heading.
    pub heading: Vec2,
}

/// A request for a travel plan, sent by a vehicle entering the
/// communication zone.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Requesting vehicle.
    pub id: VehicleId,
    /// Its static characteristics.
    pub descriptor: VehicleDescriptor,
    /// The movement it wants to follow.
    pub movement: MovementId,
    /// Current arclength along the movement path.
    pub position_s: f64,
    /// Current speed in m/s.
    pub speed: f64,
}

/// The travel plan `T_i^j` of Eq. 1: identity, static characteristics,
/// dynamic status, and the instruction — a speed profile along the
/// movement path in absolute simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TravelPlan {
    id: VehicleId,
    descriptor: VehicleDescriptor,
    status: VehicleStatus,
    movement: MovementId,
    profile: MotionProfile,
}

impl TravelPlan {
    /// Assembles a plan.
    pub fn new(
        id: VehicleId,
        descriptor: VehicleDescriptor,
        status: VehicleStatus,
        movement: MovementId,
        profile: MotionProfile,
    ) -> Self {
        TravelPlan {
            id,
            descriptor,
            status,
            movement,
            profile,
        }
    }

    /// The vehicle this plan schedules.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Static characteristics (`char_j`).
    pub fn descriptor(&self) -> &VehicleDescriptor {
        &self.descriptor
    }

    /// Dynamic status at planning time (`status_j`).
    pub fn status(&self) -> &VehicleStatus {
        &self.status
    }

    /// The movement the plan follows.
    pub fn movement(&self) -> MovementId {
        self.movement
    }

    /// The instruction (`inst_j`): the speed profile to execute.
    pub fn profile(&self) -> &MotionProfile {
        &self.profile
    }

    /// The expected world state (position, speed) at absolute time `t`,
    /// which a watcher compares against its sensor reading (Algorithm 2).
    pub fn expected_state(&self, topology: &Topology, t: f64) -> (Vec2, f64) {
        let path = topology.movement(self.movement).path();
        let (s, v) = self.profile.state_at(t);
        (path.point_at(s), v)
    }

    /// Absolute time at which the vehicle leaves the modeled area, or
    /// `None` if the plan parks it inside (evacuation pull-over).
    pub fn exit_time(&self, topology: &Topology) -> Option<f64> {
        let path = topology.movement(self.movement).path();
        self.profile.time_at_position(path.length())
    }

    /// Canonical byte encoding used as a Merkle leaf (Fig. 3). Two plans
    /// encode identically iff all fields match bit-for-bit.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128);
        buf.put_u64(self.id.raw());
        let desc = self.descriptor.encode();
        buf.put_u16(desc.len() as u16);
        buf.put_slice(&desc);
        buf.put_f64(self.status.position.x);
        buf.put_f64(self.status.position.y);
        buf.put_f64(self.status.speed);
        buf.put_f64(self.status.heading.x);
        buf.put_f64(self.status.heading.y);
        buf.put_u16(self.movement.index() as u16);
        buf.put_f64(self.profile.start_time());
        buf.put_f64(self.profile.start_position());
        buf.put_f64(self.profile.start_speed());
        buf.put_u16(self.profile.segments().len() as u16);
        for seg in self.profile.segments() {
            buf.put_f64(seg.duration);
            buf.put_f64(seg.accel);
        }
        buf.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_geometry::ProfileSegment;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind};

    fn descriptor() -> VehicleDescriptor {
        VehicleDescriptor {
            brand: "Aurora".into(),
            model: "S1".into(),
            color: "red".into(),
        }
    }

    fn plan() -> TravelPlan {
        TravelPlan::new(
            VehicleId::new(7),
            descriptor(),
            VehicleStatus {
                position: Vec2::new(1.0, 2.0),
                speed: 10.0,
                heading: Vec2::new(1.0, 0.0),
            },
            MovementId::new(0),
            MotionProfile::new(5.0, 0.0, 10.0, vec![ProfileSegment::new(30.0, 0.0)]),
        )
    }

    #[test]
    fn accessors() {
        let p = plan();
        assert_eq!(p.id().raw(), 7);
        assert_eq!(p.movement().index(), 0);
        assert_eq!(p.status().speed, 10.0);
        assert_eq!(p.descriptor().brand, "Aurora");
        assert_eq!(p.profile().start_time(), 5.0);
    }

    #[test]
    fn expected_state_follows_path() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let p = plan();
        let (pos0, v0) = p.expected_state(&topo, 5.0);
        let (pos1, v1) = p.expected_state(&topo, 15.0);
        assert_eq!(v0, 10.0);
        assert_eq!(v1, 10.0);
        // Moved 100 m along the movement path.
        let path = topo.movement(MovementId::new(0)).path();
        assert!(pos0.distance(path.point_at(0.0)) < 1e-9);
        assert!(pos1.distance(path.point_at(100.0)) < 1e-9);
    }

    #[test]
    fn exit_time_matches_path_length() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let p = plan();
        let len = topo.movement(MovementId::new(0)).path().length();
        let t = p.exit_time(&topo).expect("cruises to the end");
        assert!((t - (5.0 + len / 10.0)).abs() < 1e-9);
    }

    #[test]
    fn parked_plan_has_no_exit_time() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let p = TravelPlan::new(
            VehicleId::new(1),
            descriptor(),
            VehicleStatus {
                position: Vec2::ZERO,
                speed: 0.0,
                heading: Vec2::new(1.0, 0.0),
            },
            MovementId::new(0),
            MotionProfile::stopped(0.0, 50.0),
        );
        assert_eq!(p.exit_time(&topo), None);
    }

    #[test]
    fn encode_is_deterministic_and_field_sensitive() {
        let a = plan();
        let b = plan();
        assert_eq!(a.encode(), b.encode());
        let c = TravelPlan::new(
            VehicleId::new(8), // different id
            descriptor(),
            *a.status(),
            a.movement(),
            a.profile().clone(),
        );
        assert_ne!(a.encode(), c.encode());
        let d = TravelPlan::new(
            a.id(),
            descriptor(),
            *a.status(),
            a.movement(),
            a.profile().clone().with_segment(1.0, 0.5), // extra segment
        );
        assert_ne!(a.encode(), d.encode());
    }
}
