//! Travel plans: `⟨id, char, status, inst⟩` (Eq. 1 of the paper).

use bytes::{Buf, BufMut, BytesMut};
use nwade_geometry::{MotionProfile, ProfileSegment, Vec2};
use nwade_intersection::{MovementId, Topology};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use serde::{Deserialize, Serialize};

/// A vehicle's dynamic status at planning time: GPS position, speed and
/// moving direction (§IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleStatus {
    /// World position in meters.
    pub position: Vec2,
    /// Speed in m/s.
    pub speed: f64,
    /// Unit heading.
    pub heading: Vec2,
}

/// A request for a travel plan, sent by a vehicle entering the
/// communication zone.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Requesting vehicle.
    pub id: VehicleId,
    /// Its static characteristics.
    pub descriptor: VehicleDescriptor,
    /// The movement it wants to follow.
    pub movement: MovementId,
    /// Current arclength along the movement path.
    pub position_s: f64,
    /// Current speed in m/s.
    pub speed: f64,
}

impl PlanRequest {
    /// Canonical byte encoding (mirrors [`TravelPlan::encode`]'s field
    /// layout) used to persist in-flight window requests in the WAL.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64(self.id.raw());
        let desc = self.descriptor.encode();
        buf.put_u16(desc.len() as u16);
        buf.put_slice(&desc);
        buf.put_u16(self.movement.index() as u16);
        buf.put_f64(self.position_s);
        buf.put_f64(self.speed);
        buf.to_vec()
    }

    /// Decodes one request from the front of `cursor`, advancing it
    /// past the consumed bytes. Returns `None` (cursor position then
    /// unspecified) on truncated or malformed input; never panics.
    pub fn decode_from(cursor: &mut &[u8]) -> Option<Self> {
        let id = VehicleId::new(cursor.try_get_u64().ok()?);
        let desc_len = cursor.try_get_u16().ok()? as usize;
        if cursor.remaining() < desc_len {
            return None;
        }
        let descriptor = VehicleDescriptor::decode(&cursor[..desc_len])?;
        *cursor = &cursor[desc_len..];
        let movement = MovementId::new(cursor.try_get_u16().ok()?);
        let position_s = cursor.try_get_f64().ok()?;
        let speed = cursor.try_get_f64().ok()?;
        Some(PlanRequest {
            id,
            descriptor,
            movement,
            position_s,
            speed,
        })
    }

    /// Decodes an encoding produced by [`PlanRequest::encode`],
    /// rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = bytes;
        let req = PlanRequest::decode_from(&mut cursor)?;
        cursor.is_empty().then_some(req)
    }
}

/// The travel plan `T_i^j` of Eq. 1: identity, static characteristics,
/// dynamic status, and the instruction — a speed profile along the
/// movement path in absolute simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TravelPlan {
    id: VehicleId,
    descriptor: VehicleDescriptor,
    status: VehicleStatus,
    movement: MovementId,
    profile: MotionProfile,
}

impl TravelPlan {
    /// Assembles a plan.
    pub fn new(
        id: VehicleId,
        descriptor: VehicleDescriptor,
        status: VehicleStatus,
        movement: MovementId,
        profile: MotionProfile,
    ) -> Self {
        TravelPlan {
            id,
            descriptor,
            status,
            movement,
            profile,
        }
    }

    /// The vehicle this plan schedules.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Static characteristics (`char_j`).
    pub fn descriptor(&self) -> &VehicleDescriptor {
        &self.descriptor
    }

    /// Dynamic status at planning time (`status_j`).
    pub fn status(&self) -> &VehicleStatus {
        &self.status
    }

    /// The movement the plan follows.
    pub fn movement(&self) -> MovementId {
        self.movement
    }

    /// The instruction (`inst_j`): the speed profile to execute.
    pub fn profile(&self) -> &MotionProfile {
        &self.profile
    }

    /// The expected world state (position, speed) at absolute time `t`,
    /// which a watcher compares against its sensor reading (Algorithm 2).
    pub fn expected_state(&self, topology: &Topology, t: f64) -> (Vec2, f64) {
        let path = topology.movement(self.movement).path();
        let (s, v) = self.profile.state_at(t);
        (path.point_at(s), v)
    }

    /// Absolute time at which the vehicle leaves the modeled area, or
    /// `None` if the plan parks it inside (evacuation pull-over).
    pub fn exit_time(&self, topology: &Topology) -> Option<f64> {
        let path = topology.movement(self.movement).path();
        self.profile.time_at_position(path.length())
    }

    /// Canonical byte encoding used as a Merkle leaf (Fig. 3). Two plans
    /// encode identically iff all fields match bit-for-bit.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128);
        buf.put_u64(self.id.raw());
        let desc = self.descriptor.encode();
        buf.put_u16(desc.len() as u16);
        buf.put_slice(&desc);
        buf.put_f64(self.status.position.x);
        buf.put_f64(self.status.position.y);
        buf.put_f64(self.status.speed);
        buf.put_f64(self.status.heading.x);
        buf.put_f64(self.status.heading.y);
        buf.put_u16(self.movement.index() as u16);
        buf.put_f64(self.profile.start_time());
        buf.put_f64(self.profile.start_position());
        buf.put_f64(self.profile.start_speed());
        buf.put_u16(self.profile.segments().len() as u16);
        for seg in self.profile.segments() {
            buf.put_f64(seg.duration);
            buf.put_f64(seg.accel);
        }
        buf.to_vec()
    }

    /// Decodes one plan from the front of `cursor`, advancing it past
    /// the consumed bytes — the WAL and block codecs embed plans
    /// back-to-back. Returns `None` (cursor position then unspecified)
    /// on truncated input or on field values the constructors would
    /// reject (negative start speed, negative/non-finite segment
    /// durations); never panics, the bytes may be a torn WAL tail.
    pub fn decode_from(cursor: &mut &[u8]) -> Option<Self> {
        let id = VehicleId::new(cursor.try_get_u64().ok()?);
        let desc_len = cursor.try_get_u16().ok()? as usize;
        if cursor.remaining() < desc_len {
            return None;
        }
        let descriptor = VehicleDescriptor::decode(&cursor[..desc_len])?;
        *cursor = &cursor[desc_len..];
        let status = VehicleStatus {
            position: Vec2::new(cursor.try_get_f64().ok()?, cursor.try_get_f64().ok()?),
            speed: cursor.try_get_f64().ok()?,
            heading: Vec2::new(cursor.try_get_f64().ok()?, cursor.try_get_f64().ok()?),
        };
        let movement = MovementId::new(cursor.try_get_u16().ok()?);
        let start_time = cursor.try_get_f64().ok()?;
        let start_position = cursor.try_get_f64().ok()?;
        let start_speed = cursor.try_get_f64().ok()?;
        if !(start_speed >= 0.0) {
            return None;
        }
        let n_segments = cursor.try_get_u16().ok()? as usize;
        let mut segments = Vec::with_capacity(n_segments.min(256));
        for _ in 0..n_segments {
            let duration = cursor.try_get_f64().ok()?;
            let accel = cursor.try_get_f64().ok()?;
            if !(duration.is_finite() && duration >= 0.0) {
                return None;
            }
            segments.push(ProfileSegment::new(duration, accel));
        }
        Some(TravelPlan {
            id,
            descriptor,
            status,
            movement,
            profile: MotionProfile::new(start_time, start_position, start_speed, segments),
        })
    }

    /// Decodes an encoding produced by [`TravelPlan::encode`],
    /// rejecting trailing bytes: `decode(encode(p)) == Some(p)` for any
    /// plan, and any strict prefix of an encoding decodes to `None`.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = bytes;
        let plan = TravelPlan::decode_from(&mut cursor)?;
        cursor.is_empty().then_some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_geometry::ProfileSegment;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind};

    fn descriptor() -> VehicleDescriptor {
        VehicleDescriptor {
            brand: "Aurora".into(),
            model: "S1".into(),
            color: "red".into(),
        }
    }

    fn plan() -> TravelPlan {
        TravelPlan::new(
            VehicleId::new(7),
            descriptor(),
            VehicleStatus {
                position: Vec2::new(1.0, 2.0),
                speed: 10.0,
                heading: Vec2::new(1.0, 0.0),
            },
            MovementId::new(0),
            MotionProfile::new(5.0, 0.0, 10.0, vec![ProfileSegment::new(30.0, 0.0)]),
        )
    }

    #[test]
    fn accessors() {
        let p = plan();
        assert_eq!(p.id().raw(), 7);
        assert_eq!(p.movement().index(), 0);
        assert_eq!(p.status().speed, 10.0);
        assert_eq!(p.descriptor().brand, "Aurora");
        assert_eq!(p.profile().start_time(), 5.0);
    }

    #[test]
    fn expected_state_follows_path() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let p = plan();
        let (pos0, v0) = p.expected_state(&topo, 5.0);
        let (pos1, v1) = p.expected_state(&topo, 15.0);
        assert_eq!(v0, 10.0);
        assert_eq!(v1, 10.0);
        // Moved 100 m along the movement path.
        let path = topo.movement(MovementId::new(0)).path();
        assert!(pos0.distance(path.point_at(0.0)) < 1e-9);
        assert!(pos1.distance(path.point_at(100.0)) < 1e-9);
    }

    #[test]
    fn exit_time_matches_path_length() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let p = plan();
        let len = topo.movement(MovementId::new(0)).path().length();
        let t = p.exit_time(&topo).expect("cruises to the end");
        assert!((t - (5.0 + len / 10.0)).abs() < 1e-9);
    }

    #[test]
    fn parked_plan_has_no_exit_time() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let p = TravelPlan::new(
            VehicleId::new(1),
            descriptor(),
            VehicleStatus {
                position: Vec2::ZERO,
                speed: 0.0,
                heading: Vec2::new(1.0, 0.0),
            },
            MovementId::new(0),
            MotionProfile::stopped(0.0, 50.0),
        );
        assert_eq!(p.exit_time(&topo), None);
    }

    #[test]
    fn plan_decode_round_trips_and_rejects_prefixes() {
        let p = plan();
        let bytes = p.encode();
        assert_eq!(TravelPlan::decode(&bytes), Some(p.clone()));
        for cut in 0..bytes.len() {
            assert_eq!(TravelPlan::decode(&bytes[..cut]), None, "prefix {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(TravelPlan::decode(&trailing), None);
    }

    #[test]
    fn plan_decode_rejects_invalid_field_values() {
        let p = plan();
        let bytes = p.encode();
        // Overwrite start_speed (third f64 of the profile block) with -1.
        let speed_off = bytes.len() - 2 /* seg count */ - 16 /* one segment */ - 8;
        let mut bad = bytes.clone();
        bad[speed_off..speed_off + 8].copy_from_slice(&(-1.0f64).to_be_bytes());
        assert_eq!(TravelPlan::decode(&bad), None);
        // Overwrite the segment duration with NaN.
        let dur_off = bytes.len() - 16;
        let mut bad = bytes;
        bad[dur_off..dur_off + 8].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(TravelPlan::decode(&bad), None);
    }

    #[test]
    fn request_decode_round_trips() {
        let req = PlanRequest {
            id: VehicleId::new(11),
            descriptor: descriptor(),
            movement: MovementId::new(3),
            position_s: 42.5,
            speed: 13.0,
        };
        let bytes = req.encode();
        assert_eq!(PlanRequest::decode(&bytes), Some(req));
        for cut in 0..bytes.len() {
            assert_eq!(PlanRequest::decode(&bytes[..cut]), None, "prefix {cut}");
        }
    }

    #[test]
    fn encode_is_deterministic_and_field_sensitive() {
        let a = plan();
        let b = plan();
        assert_eq!(a.encode(), b.encode());
        let c = TravelPlan::new(
            VehicleId::new(8), // different id
            descriptor(),
            *a.status(),
            a.movement(),
            a.profile().clone(),
        );
        assert_ne!(a.encode(), c.encode());
        let d = TravelPlan::new(
            a.id(),
            descriptor(),
            *a.status(),
            a.movement(),
            a.profile().clone().with_segment(1.0, 0.5), // extra segment
        );
        assert_ne!(a.encode(), d.encode());
    }
}
