//! Time-interval reservations over conflict-zone cells.
//!
//! The table keeps every zone's bookings **sorted by (start, end,
//! vehicle)** with a prefix-maximum-of-ends array alongside. That makes
//! conflict checks binary-searchable (candidates are the prefix whose
//! starts precede our end; the prefix maximum cuts the backward scan as
//! soon as no earlier booking can still reach us), `release` O(holdings)
//! via a vehicle→zones reverse index instead of a full-table sweep, and
//! — the piece the slot-seeking planners build on — supports
//! [`ReservationTable::first_blocking`], which reports not just *that* a
//! placement conflicts but a proven lower bound on when the zone next
//! admits an interval of that shape.

use bytes::{Buf, BufMut, BytesMut};
use nwade_geometry::{occupancy_interval, MotionProfile, TimeInterval};
use nwade_intersection::{Movement, ZoneId};
use nwade_traffic::VehicleId;
use std::cmp::Ordering;
use std::collections::HashMap;

/// The zone occupancy of one plan: which cells it holds and when.
pub type Occupancy = Vec<(ZoneId, TimeInterval)>;

/// Computes the zone occupancy of `profile` along `movement` into a
/// caller-owned buffer (cleared first), so planners probing many
/// candidate entry times reuse one allocation.
///
/// A profile that brakes to a stop inside a cell holds that cell forever
/// (interval end `= ∞`) and occupies nothing beyond it.
pub fn occupancy_into(movement: &Movement, profile: &MotionProfile, out: &mut Occupancy) {
    out.clear();
    for zi in movement.zones() {
        if zi.exit <= profile.start_position() {
            continue; // already behind the vehicle
        }
        match occupancy_interval(profile, zi.enter.max(profile.start_position()), zi.exit) {
            Some(iv) => {
                let open_ended = iv.end.is_infinite();
                out.push((zi.zone, iv));
                if open_ended {
                    break; // stopped inside this cell
                }
            }
            None => break, // never reaches this cell
        }
    }
}

/// Computes the zone occupancy of `profile` along `movement`.
pub fn occupancy_of(movement: &Movement, profile: &MotionProfile) -> Occupancy {
    let mut out = Vec::with_capacity(movement.zones().len());
    occupancy_into(movement, profile, &mut out);
    out
}

/// Builds a "park" profile that brakes to a stop *without intruding on
/// existing reservations*: starting from the natural stopping distance,
/// the stop point is pulled back (allowing harder-than-comfort braking —
/// this is a jam, not a cruise) until the resulting occupancy is free.
/// As a last resort the vehicle halts in place.
///
/// Used as the saturated-intersection fallback by every scheduler: the
/// emitted plan may strand the vehicle, but it never *plans a collision*,
/// so vehicle-side block verification stays clean.
pub fn park_fallback(
    movement: &Movement,
    position_s: f64,
    speed: f64,
    now: f64,
    table: &ReservationTable,
    gap: f64,
    vehicle: VehicleId,
    d_max: f64,
) -> (MotionProfile, Occupancy) {
    let natural = if speed > 0.0 {
        speed * speed / (2.0 * d_max)
    } else {
        0.0
    };
    let mut stop_dist = natural;
    let mut occupancy = Occupancy::new();
    loop {
        let profile = if stop_dist <= 0.01 || speed <= 0.01 {
            MotionProfile::stopped(now, position_s)
        } else {
            let rate = speed * speed / (2.0 * stop_dist);
            MotionProfile::new(
                now,
                position_s,
                speed,
                vec![nwade_geometry::ProfileSegment::new(speed / rate, -rate)],
            )
        };
        occupancy_into(movement, &profile, &mut occupancy);
        if stop_dist <= 0.01 || table.is_free(&occupancy, gap, Some(vehicle)) {
            return (profile, occupancy);
        }
        stop_dist = (stop_dist - 3.0).max(0.0);
    }
}

/// The first conflicting zone of a rejected booking attempt, plus a
/// proven bound the slot-seeking planners jump by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blocking {
    /// The first zone (in occupancy order) with a conflict.
    pub zone: ZoneId,
    /// A vehicle holding a conflicting booking in that zone.
    pub holder: VehicleId,
    /// Every placement in this zone of an interval at least as long as
    /// the rejected one, starting at or before this time, still
    /// conflicts with some booking; the first feasible start is strictly
    /// later. `INFINITY` when an open-ended booking blocks forever.
    pub blocked_until: f64,
}

/// One zone's bookings, sorted by (start, end, vehicle), with the prefix
/// maximum of interval ends for early exit in backward scans (ends are
/// not sorted — long and open-ended intervals can precede short ones).
#[derive(Debug, Clone, Default)]
struct ZoneLane {
    entries: Vec<(TimeInterval, VehicleId)>,
    max_end: Vec<f64>,
}

fn lane_order(a: &(TimeInterval, VehicleId), b: &(TimeInterval, VehicleId)) -> Ordering {
    a.0.start
        .partial_cmp(&b.0.start)
        .unwrap_or(Ordering::Equal)
        .then(a.0.end.partial_cmp(&b.0.end).unwrap_or(Ordering::Equal))
        .then(a.1.cmp(&b.1))
}

impl ZoneLane {
    fn insert(&mut self, iv: TimeInterval, vehicle: VehicleId) {
        let entry = (iv, vehicle);
        let pos = self
            .entries
            .partition_point(|e| lane_order(e, &entry) == Ordering::Less);
        self.entries.insert(pos, entry);
        self.rebuild_max_from(pos);
    }

    /// Recomputes the prefix maximum from index `from` to the end.
    fn rebuild_max_from(&mut self, from: usize) {
        self.max_end.truncate(from);
        let mut run = if from == 0 {
            f64::NEG_INFINITY
        } else {
            self.max_end[from - 1]
        };
        for (iv, _) in &self.entries[from..] {
            run = run.max(iv.end);
            self.max_end.push(run);
        }
    }

    fn remove_vehicle(&mut self, vehicle: VehicleId) {
        let first = self.entries.iter().position(|(_, v)| *v == vehicle);
        if let Some(first) = first {
            self.entries.retain(|(_, v)| *v != vehicle);
            self.rebuild_max_from(first);
        }
    }

    /// A booking conflicting with `iv` under `gap`, if any.
    ///
    /// Same predicate as [`TimeInterval::overlaps_with_gap`]: candidates
    /// are the sorted prefix with `start <= iv.end + gap`; scanning it
    /// backwards, once the prefix maximum of ends falls `gap` short of
    /// `iv.start` no earlier booking can overlap either.
    fn first_overlap(
        &self,
        iv: &TimeInterval,
        gap: f64,
        ignore: Option<VehicleId>,
    ) -> Option<(TimeInterval, VehicleId)> {
        let hi = self
            .entries
            .partition_point(|(b, _)| b.start <= iv.end + gap);
        for i in (0..hi).rev() {
            if self.max_end[i] + gap < iv.start {
                break;
            }
            let (b, v) = self.entries[i];
            if Some(v) == ignore {
                continue;
            }
            if b.end + gap >= iv.start {
                return Some((b, v));
            }
        }
        None
    }

    /// Walks the booking chain from `from`: returns a time `U >= from`
    /// such that **every** placement `[s, s + duration]` with
    /// `s ∈ [from, U]` conflicts with some booking (under `gap`). The
    /// first feasible start is therefore strictly greater than `U`.
    /// Returns `from` itself when nothing conflicts there.
    ///
    /// Soundness: entries are visited in ascending start order; whenever
    /// a booking `B` conflicts at the current bound (`B.end + gap >=
    /// until` and, by the not-yet-broken loop condition, `B.start <=
    /// until + duration + gap`), every `s ∈ (until, B.end + gap]` also
    /// satisfies both inequalities against `B`, extending the covered
    /// range. Once a booking starts beyond `until + duration + gap`, so
    /// does every later one, and none can touch a placement starting at
    /// or before `until`.
    fn blocked_until(&self, from: f64, duration: f64, gap: f64, ignore: Option<VehicleId>) -> f64 {
        let mut until = from;
        for (b, v) in &self.entries {
            if b.start > until + duration + gap {
                break;
            }
            if Some(*v) == ignore {
                continue;
            }
            if b.end + gap >= until {
                until = until.max(b.end + gap);
                if until.is_infinite() {
                    return f64::INFINITY;
                }
            }
        }
        until
    }
}

/// A reservation table: for each zone cell, the time intervals already
/// promised to vehicles. The scheduler guarantees a configurable temporal
/// gap between any two reservations of the same cell.
#[derive(Debug, Clone, Default)]
pub struct ReservationTable {
    zones: HashMap<ZoneId, ZoneLane>,
    /// Which zones each vehicle holds bookings in (with multiplicity),
    /// so `release` touches only those lanes.
    holdings: HashMap<VehicleId, Vec<ZoneId>>,
}

impl ReservationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ReservationTable::default()
    }

    /// Returns the first conflicting `(zone, holder)` if `occupancy`
    /// cannot be booked with the required `gap` seconds between
    /// same-cell reservations, ignoring intervals held by `ignore`.
    pub fn first_conflict(
        &self,
        occupancy: &Occupancy,
        gap: f64,
        ignore: Option<VehicleId>,
    ) -> Option<(ZoneId, VehicleId)> {
        for (zone, iv) in occupancy {
            if let Some(lane) = self.zones.get(zone) {
                if let Some((_, holder)) = lane.first_overlap(iv, gap, ignore) {
                    return Some((*zone, holder));
                }
            }
        }
        None
    }

    /// Like [`ReservationTable::first_conflict`], but also reports how
    /// long the conflicting zone stays provably blocked for an interval
    /// of this shape — the jump bound the slot-seeking planners binary
    /// search against.
    pub fn first_blocking(
        &self,
        occupancy: &Occupancy,
        gap: f64,
        ignore: Option<VehicleId>,
    ) -> Option<Blocking> {
        for (zone, iv) in occupancy {
            if let Some(lane) = self.zones.get(zone) {
                if let Some((_, holder)) = lane.first_overlap(iv, gap, ignore) {
                    return Some(Blocking {
                        zone: *zone,
                        holder,
                        blocked_until: lane.blocked_until(iv.start, iv.duration(), gap, ignore),
                    });
                }
            }
        }
        None
    }

    /// `true` when `occupancy` can be booked.
    pub fn is_free(&self, occupancy: &Occupancy, gap: f64, ignore: Option<VehicleId>) -> bool {
        self.first_conflict(occupancy, gap, ignore).is_none()
    }

    /// Books `occupancy` for `vehicle` (no conflict check — call
    /// [`ReservationTable::is_free`] first).
    pub fn reserve(&mut self, vehicle: VehicleId, occupancy: &Occupancy) {
        if occupancy.is_empty() {
            return;
        }
        let held = self.holdings.entry(vehicle).or_default();
        for (zone, iv) in occupancy {
            self.zones.entry(*zone).or_default().insert(*iv, vehicle);
            held.push(*zone);
        }
    }

    /// Removes every reservation held by `vehicle`.
    pub fn release(&mut self, vehicle: VehicleId) {
        let Some(mut zones) = self.holdings.remove(&vehicle) else {
            return;
        };
        zones.sort_unstable();
        zones.dedup();
        for zone in zones {
            if let Some(lane) = self.zones.get_mut(&zone) {
                lane.remove_vehicle(vehicle);
                if lane.entries.is_empty() {
                    self.zones.remove(&zone);
                }
            }
        }
    }

    /// Drops reservations that ended before `t` (garbage collection).
    /// Only the sorted prefix with `start < t` is scanned: a booking
    /// starting at or after `t` ends at or after `t` too.
    pub fn release_before(&mut self, t: f64) {
        let mut dead: Vec<(VehicleId, ZoneId)> = Vec::new();
        for (zone, lane) in self.zones.iter_mut() {
            let cut = lane.entries.partition_point(|(iv, _)| iv.start < t);
            if cut == 0 {
                continue;
            }
            let mut idx = 0usize;
            let mut first_removed = usize::MAX;
            lane.entries.retain(|(iv, v)| {
                let keep = idx >= cut || iv.end >= t;
                if !keep {
                    dead.push((*v, *zone));
                    if first_removed == usize::MAX {
                        first_removed = idx;
                    }
                }
                idx += 1;
                keep
            });
            if first_removed != usize::MAX {
                lane.rebuild_max_from(first_removed);
            }
        }
        self.zones.retain(|_, lane| !lane.entries.is_empty());
        for (vehicle, zone) in dead {
            if let Some(held) = self.holdings.get_mut(&vehicle) {
                if let Some(pos) = held.iter().position(|z| *z == zone) {
                    held.swap_remove(pos);
                }
                if held.is_empty() {
                    self.holdings.remove(&vehicle);
                }
            }
        }
    }

    /// Bookings of one zone cell in (start, end, vehicle) order
    /// (diagnostics and tests).
    pub fn entries_at(&self, zone: ZoneId) -> Vec<(TimeInterval, VehicleId)> {
        self.zones
            .get(&zone)
            .map(|lane| lane.entries.clone())
            .unwrap_or_default()
    }

    /// Total number of booked intervals.
    pub fn len(&self) -> usize {
        self.zones.values().map(|lane| lane.entries.len()).sum()
    }

    /// `true` when no reservations exist.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Canonical snapshot encoding of every booked lane, used by the
    /// IM's durable-state snapshots. Zones are emitted in (col, row)
    /// order and entries in their sorted lane order, so two tables with
    /// the same bookings encode byte-identically regardless of insert
    /// history — differential tests compare these bytes directly.
    pub fn encode(&self) -> Vec<u8> {
        let mut zones: Vec<&ZoneId> = self.zones.keys().collect();
        zones.sort_unstable_by_key(|z| (z.col, z.row));
        let mut buf = BytesMut::with_capacity(16 + self.len() * 24);
        buf.put_u32(zones.len() as u32);
        for zone in zones {
            let lane = &self.zones[zone];
            buf.put_u32(zone.col as u32);
            buf.put_u32(zone.row as u32);
            buf.put_u32(lane.entries.len() as u32);
            for (iv, vehicle) in &lane.entries {
                buf.put_f64(iv.start);
                buf.put_f64(iv.end);
                buf.put_u64(vehicle.raw());
            }
        }
        buf.to_vec()
    }

    /// Rebuilds a table from a snapshot produced by
    /// [`ReservationTable::encode`]: `decode(encode(t))` books exactly
    /// the same intervals (and behaves identically under every table
    /// operation). Returns `None` on truncated input, trailing bytes,
    /// or intervals the table could never contain (`end < start`, NaN);
    /// never panics — the snapshot may come from a corrupt device.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = bytes;
        let mut table = ReservationTable::new();
        let n_zones = cursor.try_get_u32().ok()?;
        for _ in 0..n_zones {
            let zone = ZoneId {
                col: cursor.try_get_u32().ok()? as i32,
                row: cursor.try_get_u32().ok()? as i32,
            };
            let n_entries = cursor.try_get_u32().ok()?;
            for _ in 0..n_entries {
                let start = cursor.try_get_f64().ok()?;
                let end = cursor.try_get_f64().ok()?;
                if !(end >= start) {
                    return None;
                }
                let vehicle = VehicleId::new(cursor.try_get_u64().ok()?);
                table
                    .zones
                    .entry(zone)
                    .or_default()
                    .insert(TimeInterval { start, end }, vehicle);
                table.holdings.entry(vehicle).or_default().push(zone);
            }
        }
        cursor.is_empty().then_some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};

    fn zid(c: i32, r: i32) -> ZoneId {
        ZoneId { col: c, row: r }
    }

    fn occ(zones: &[(ZoneId, f64, f64)]) -> Occupancy {
        zones
            .iter()
            .map(|(z, a, b)| (*z, TimeInterval::new(*a, *b)))
            .collect()
    }

    #[test]
    fn empty_table_is_free() {
        let t = ReservationTable::new();
        assert!(t.is_empty());
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 5.0)]), 1.0, None));
    }

    #[test]
    fn overlap_in_same_zone_conflicts() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        let conflict = t.first_conflict(&occ(&[(zid(0, 0), 4.0, 8.0)]), 0.0, None);
        assert_eq!(conflict, Some((zid(0, 0), VehicleId::new(1))));
        // Different zone: free.
        assert!(t.is_free(&occ(&[(zid(1, 0), 4.0, 8.0)]), 0.0, None));
    }

    #[test]
    fn gap_is_enforced() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        // Starts 0.5 s after the booking ends: fails with a 1 s gap.
        assert!(!t.is_free(&occ(&[(zid(0, 0), 5.5, 8.0)]), 1.0, None));
        assert!(t.is_free(&occ(&[(zid(0, 0), 6.5, 8.0)]), 1.0, None));
    }

    #[test]
    fn ignore_own_reservations() {
        let mut t = ReservationTable::new();
        let me = VehicleId::new(1);
        t.reserve(me, &occ(&[(zid(0, 0), 0.0, 5.0)]));
        assert!(t.is_free(&occ(&[(zid(0, 0), 2.0, 4.0)]), 1.0, Some(me)));
        assert!(!t.is_free(&occ(&[(zid(0, 0), 2.0, 4.0)]), 1.0, Some(VehicleId::new(2))));
    }

    #[test]
    fn release_frees_zones() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        t.reserve(VehicleId::new(2), &occ(&[(zid(0, 0), 10.0, 15.0)]));
        t.release(VehicleId::new(1));
        assert_eq!(t.len(), 1);
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 5.0)]), 1.0, None));
    }

    #[test]
    fn release_before_garbage_collects() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        t.reserve(VehicleId::new(2), &occ(&[(zid(0, 0), 10.0, 15.0)]));
        t.release_before(6.0);
        assert_eq!(t.len(), 1);
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 5.0)]), 1.0, None));
        assert!(!t.is_free(&occ(&[(zid(0, 0), 11.0, 12.0)]), 1.0, None));
    }

    #[test]
    fn open_ended_interval_blocks_forever() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 5.0, f64::INFINITY)]));
        assert!(!t.is_free(&occ(&[(zid(0, 0), 1e9, 1e9 + 1.0)]), 1.0, None));
        // But before it starts (minus gap) the zone is usable.
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 3.0)]), 1.0, None));
    }

    #[test]
    fn entries_stay_sorted_and_release_uses_holdings() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(3), &occ(&[(zid(0, 0), 10.0, 12.0)]));
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 20.0)]));
        t.reserve(
            VehicleId::new(2),
            &occ(&[(zid(0, 0), 5.0, 6.0), (zid(1, 0), 5.0, 6.0)]),
        );
        let entries = t.entries_at(zid(0, 0));
        let starts: Vec<f64> = entries.iter().map(|(iv, _)| iv.start).collect();
        assert_eq!(starts, vec![0.0, 5.0, 10.0]);
        // Long interval inserted first still found when probing late
        // (prefix-max-of-ends keeps the backward scan alive past the
        // short booking).
        assert!(!t.is_free(&occ(&[(zid(0, 0), 18.0, 19.0)]), 0.0, None));
        t.release(VehicleId::new(2));
        assert_eq!(t.len(), 2);
        assert!(t.entries_at(zid(1, 0)).is_empty());
        t.release(VehicleId::new(2)); // idempotent
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn blocked_until_walks_booking_chains() {
        let mut t = ReservationTable::new();
        // Chain: [0,5], [5.5,10], [10.5,15] with gap 1 the whole range
        // [0, 16] is blocked for any placement.
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        t.reserve(VehicleId::new(2), &occ(&[(zid(0, 0), 5.5, 10.0)]));
        t.reserve(VehicleId::new(3), &occ(&[(zid(0, 0), 10.5, 15.0)]));
        let b = t
            .first_blocking(&occ(&[(zid(0, 0), 1.0, 3.0)]), 1.0, None)
            .expect("conflicts");
        assert_eq!(b.zone, zid(0, 0));
        assert_eq!(b.blocked_until, 16.0);
        // Just past the bound the zone really is free.
        assert!(t.is_free(&occ(&[(zid(0, 0), 16.1, 18.0)]), 1.0, None));
        // An open-ended booking blocks forever — but only placements too
        // long for the [16, 19] hole chain into it.
        t.reserve(VehicleId::new(4), &occ(&[(zid(0, 0), 20.0, f64::INFINITY)]));
        let b = t
            .first_blocking(&occ(&[(zid(0, 0), 1.0, 3.0)]), 1.0, None)
            .expect("conflicts");
        assert_eq!(b.blocked_until, 16.0, "a 2 s placement still fits the hole");
        let b = t
            .first_blocking(&occ(&[(zid(0, 0), 1.0, 11.0)]), 1.0, None)
            .expect("conflicts");
        assert!(b.blocked_until.is_infinite());
    }

    #[test]
    fn blocked_until_ignores_own_bookings() {
        let mut t = ReservationTable::new();
        let me = VehicleId::new(7);
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        t.reserve(me, &occ(&[(zid(0, 0), 6.0, 100.0)]));
        let b = t
            .first_blocking(&occ(&[(zid(0, 0), 1.0, 3.0)]), 1.0, Some(me))
            .expect("still conflicts with V1");
        assert_eq!(b.holder, VehicleId::new(1));
        assert_eq!(b.blocked_until, 6.0);
    }

    #[test]
    fn snapshot_round_trips_bookings_and_behavior() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(3), &occ(&[(zid(0, 0), 10.0, 12.0)]));
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 20.0)]));
        t.reserve(
            VehicleId::new(2),
            &occ(&[(zid(-1, 2), 5.0, 6.0), (zid(1, 0), 5.0, f64::INFINITY)]),
        );
        let bytes = t.encode();
        let mut r = ReservationTable::decode(&bytes).expect("snapshot decodes");
        assert_eq!(r.len(), t.len());
        assert_eq!(r.encode(), bytes, "canonical bytes are a fixpoint");
        assert_eq!(r.entries_at(zid(0, 0)), t.entries_at(zid(0, 0)));
        // Restored table behaves identically.
        assert!(!r.is_free(&occ(&[(zid(1, 0), 1e9, 1e9 + 1.0)]), 1.0, None));
        r.release(VehicleId::new(2));
        t.release(VehicleId::new(2));
        assert_eq!(r.encode(), t.encode());
        r.release_before(15.0);
        t.release_before(15.0);
        assert_eq!(r.encode(), t.encode());
    }

    #[test]
    fn snapshot_decode_rejects_corrupt_input() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        let bytes = t.encode();
        for cut in 1..bytes.len() {
            assert!(ReservationTable::decode(&bytes[..cut]).is_none(), "{cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(9);
        assert!(ReservationTable::decode(&trailing).is_none());
        // Inverted interval (end < start) must be rejected.
        let mut bad = bytes;
        let start_off = 4 + 8 + 4;
        bad[start_off..start_off + 8].copy_from_slice(&9.0f64.to_be_bytes());
        assert!(ReservationTable::decode(&bad).is_none());
        // Empty snapshot decodes to an empty table.
        let empty = ReservationTable::new().encode();
        assert!(ReservationTable::decode(&empty).unwrap().is_empty());
    }

    #[test]
    fn occupancy_of_cruising_profile_covers_all_zones() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        let profile = MotionProfile::cruise(0.0, 10.0, m.path().length());
        let occ = occupancy_of(m, &profile);
        assert_eq!(occ.len(), m.zones().len());
        // Intervals are time-ordered and contiguous-ish.
        for w in occ.windows(2) {
            assert!(w[0].1.start <= w[1].1.start);
        }
    }

    #[test]
    fn occupancy_of_stopping_profile_truncates() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        // Brakes from 10 m/s: stops after ~16.7 m, far before the box.
        let profile = MotionProfile::brake_to_stop(0.0, 0.0, 10.0, 3.0);
        let occ = occupancy_of(m, &profile);
        assert!(occ.len() < m.zones().len());
        let last = occ.last().expect("some zones");
        assert!(last.1.end.is_infinite(), "parked cell held forever");
    }

    #[test]
    fn occupancy_skips_zones_behind_start() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        let mid = m.path().length() / 2.0;
        let profile = MotionProfile::new(0.0, mid, 10.0, vec![]);
        let occ = occupancy_of(m, &profile);
        assert!(occ.len() < m.zones().len());
        assert!(occ.iter().all(|(_, iv)| iv.start >= 0.0));
    }

    #[test]
    fn occupancy_into_reuses_buffer() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        let mut buf = Occupancy::new();
        let p1 = MotionProfile::cruise(0.0, 10.0, m.path().length());
        occupancy_into(m, &p1, &mut buf);
        assert_eq!(buf, occupancy_of(m, &p1));
        let p2 = MotionProfile::brake_to_stop(0.0, 0.0, 10.0, 3.0);
        occupancy_into(m, &p2, &mut buf);
        assert_eq!(buf, occupancy_of(m, &p2));
    }
}
