//! Time-interval reservations over conflict-zone cells.

use nwade_geometry::{occupancy_interval, MotionProfile, TimeInterval};
use nwade_intersection::{Movement, ZoneId};
use nwade_traffic::VehicleId;
use std::collections::HashMap;

/// The zone occupancy of one plan: which cells it holds and when.
pub type Occupancy = Vec<(ZoneId, TimeInterval)>;

/// Computes the zone occupancy of `profile` along `movement`.
///
/// A profile that brakes to a stop inside a cell holds that cell forever
/// (interval end `= ∞`) and occupies nothing beyond it.
pub fn occupancy_of(movement: &Movement, profile: &MotionProfile) -> Occupancy {
    let mut out = Vec::with_capacity(movement.zones().len());
    for zi in movement.zones() {
        if zi.exit <= profile.start_position() {
            continue; // already behind the vehicle
        }
        match occupancy_interval(profile, zi.enter.max(profile.start_position()), zi.exit) {
            Some(iv) => {
                let open_ended = iv.end.is_infinite();
                out.push((zi.zone, iv));
                if open_ended {
                    break; // stopped inside this cell
                }
            }
            None => break, // never reaches this cell
        }
    }
    out
}

/// Builds a "park" profile that brakes to a stop *without intruding on
/// existing reservations*: starting from the natural stopping distance,
/// the stop point is pulled back (allowing harder-than-comfort braking —
/// this is a jam, not a cruise) until the resulting occupancy is free.
/// As a last resort the vehicle halts in place.
///
/// Used as the saturated-intersection fallback by every scheduler: the
/// emitted plan may strand the vehicle, but it never *plans a collision*,
/// so vehicle-side block verification stays clean.
pub fn park_fallback(
    movement: &Movement,
    position_s: f64,
    speed: f64,
    now: f64,
    table: &ReservationTable,
    gap: f64,
    vehicle: VehicleId,
    d_max: f64,
) -> (MotionProfile, Occupancy) {
    let natural = if speed > 0.0 {
        speed * speed / (2.0 * d_max)
    } else {
        0.0
    };
    let mut stop_dist = natural;
    loop {
        let profile = if stop_dist <= 0.01 || speed <= 0.01 {
            MotionProfile::stopped(now, position_s)
        } else {
            let rate = speed * speed / (2.0 * stop_dist);
            MotionProfile::new(
                now,
                position_s,
                speed,
                vec![nwade_geometry::ProfileSegment::new(speed / rate, -rate)],
            )
        };
        let occupancy = occupancy_of(movement, &profile);
        if stop_dist <= 0.01 || table.is_free(&occupancy, gap, Some(vehicle)) {
            return (profile, occupancy);
        }
        stop_dist = (stop_dist - 3.0).max(0.0);
    }
}

/// A reservation table: for each zone cell, the time intervals already
/// promised to vehicles. The scheduler guarantees a configurable temporal
/// gap between any two reservations of the same cell.
#[derive(Debug, Clone, Default)]
pub struct ReservationTable {
    zones: HashMap<ZoneId, Vec<(TimeInterval, VehicleId)>>,
}

impl ReservationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ReservationTable::default()
    }

    /// Returns the first conflicting `(zone, holder)` if `occupancy`
    /// cannot be booked with the required `gap` seconds between
    /// same-cell reservations, ignoring intervals held by `ignore`.
    pub fn first_conflict(
        &self,
        occupancy: &Occupancy,
        gap: f64,
        ignore: Option<VehicleId>,
    ) -> Option<(ZoneId, VehicleId)> {
        for (zone, iv) in occupancy {
            if let Some(existing) = self.zones.get(zone) {
                for (booked, holder) in existing {
                    if Some(*holder) == ignore {
                        continue;
                    }
                    if iv.overlaps_with_gap(booked, gap) {
                        return Some((*zone, *holder));
                    }
                }
            }
        }
        None
    }

    /// `true` when `occupancy` can be booked.
    pub fn is_free(&self, occupancy: &Occupancy, gap: f64, ignore: Option<VehicleId>) -> bool {
        self.first_conflict(occupancy, gap, ignore).is_none()
    }

    /// Books `occupancy` for `vehicle` (no conflict check — call
    /// [`ReservationTable::is_free`] first).
    pub fn reserve(&mut self, vehicle: VehicleId, occupancy: &Occupancy) {
        for (zone, iv) in occupancy {
            self.zones.entry(*zone).or_default().push((*iv, vehicle));
        }
    }

    /// Removes every reservation held by `vehicle`.
    pub fn release(&mut self, vehicle: VehicleId) {
        for entries in self.zones.values_mut() {
            entries.retain(|(_, v)| *v != vehicle);
        }
        self.zones.retain(|_, v| !v.is_empty());
    }

    /// Drops reservations that ended before `t` (garbage collection).
    pub fn release_before(&mut self, t: f64) {
        for entries in self.zones.values_mut() {
            entries.retain(|(iv, _)| iv.end >= t);
        }
        self.zones.retain(|_, v| !v.is_empty());
    }

    /// Bookings of one zone cell (diagnostics and tests).
    pub fn entries_at(&self, zone: ZoneId) -> Vec<(TimeInterval, VehicleId)> {
        self.zones.get(&zone).cloned().unwrap_or_default()
    }

    /// Total number of booked intervals.
    pub fn len(&self) -> usize {
        self.zones.values().map(Vec::len).sum()
    }

    /// `true` when no reservations exist.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};

    fn zid(c: i32, r: i32) -> ZoneId {
        ZoneId { col: c, row: r }
    }

    fn occ(zones: &[(ZoneId, f64, f64)]) -> Occupancy {
        zones
            .iter()
            .map(|(z, a, b)| (*z, TimeInterval::new(*a, *b)))
            .collect()
    }

    #[test]
    fn empty_table_is_free() {
        let t = ReservationTable::new();
        assert!(t.is_empty());
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 5.0)]), 1.0, None));
    }

    #[test]
    fn overlap_in_same_zone_conflicts() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        let conflict = t.first_conflict(&occ(&[(zid(0, 0), 4.0, 8.0)]), 0.0, None);
        assert_eq!(conflict, Some((zid(0, 0), VehicleId::new(1))));
        // Different zone: free.
        assert!(t.is_free(&occ(&[(zid(1, 0), 4.0, 8.0)]), 0.0, None));
    }

    #[test]
    fn gap_is_enforced() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        // Starts 0.5 s after the booking ends: fails with a 1 s gap.
        assert!(!t.is_free(&occ(&[(zid(0, 0), 5.5, 8.0)]), 1.0, None));
        assert!(t.is_free(&occ(&[(zid(0, 0), 6.5, 8.0)]), 1.0, None));
    }

    #[test]
    fn ignore_own_reservations() {
        let mut t = ReservationTable::new();
        let me = VehicleId::new(1);
        t.reserve(me, &occ(&[(zid(0, 0), 0.0, 5.0)]));
        assert!(t.is_free(&occ(&[(zid(0, 0), 2.0, 4.0)]), 1.0, Some(me)));
        assert!(!t.is_free(&occ(&[(zid(0, 0), 2.0, 4.0)]), 1.0, Some(VehicleId::new(2))));
    }

    #[test]
    fn release_frees_zones() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        t.reserve(VehicleId::new(2), &occ(&[(zid(0, 0), 10.0, 15.0)]));
        t.release(VehicleId::new(1));
        assert_eq!(t.len(), 1);
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 5.0)]), 1.0, None));
    }

    #[test]
    fn release_before_garbage_collects() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 0.0, 5.0)]));
        t.reserve(VehicleId::new(2), &occ(&[(zid(0, 0), 10.0, 15.0)]));
        t.release_before(6.0);
        assert_eq!(t.len(), 1);
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 5.0)]), 1.0, None));
        assert!(!t.is_free(&occ(&[(zid(0, 0), 11.0, 12.0)]), 1.0, None));
    }

    #[test]
    fn open_ended_interval_blocks_forever() {
        let mut t = ReservationTable::new();
        t.reserve(VehicleId::new(1), &occ(&[(zid(0, 0), 5.0, f64::INFINITY)]));
        assert!(!t.is_free(&occ(&[(zid(0, 0), 1e9, 1e9 + 1.0)]), 1.0, None));
        // But before it starts (minus gap) the zone is usable.
        assert!(t.is_free(&occ(&[(zid(0, 0), 0.0, 3.0)]), 1.0, None));
    }

    #[test]
    fn occupancy_of_cruising_profile_covers_all_zones() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        let profile = MotionProfile::cruise(0.0, 10.0, m.path().length());
        let occ = occupancy_of(m, &profile);
        assert_eq!(occ.len(), m.zones().len());
        // Intervals are time-ordered and contiguous-ish.
        for w in occ.windows(2) {
            assert!(w[0].1.start <= w[1].1.start);
        }
    }

    #[test]
    fn occupancy_of_stopping_profile_truncates() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        // Brakes from 10 m/s: stops after ~16.7 m, far before the box.
        let profile = MotionProfile::brake_to_stop(0.0, 0.0, 10.0, 3.0);
        let occ = occupancy_of(m, &profile);
        assert!(occ.len() < m.zones().len());
        let last = occ.last().expect("some zones");
        assert!(last.1.end.is_infinite(), "parked cell held forever");
    }

    #[test]
    fn occupancy_skips_zones_behind_start() {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let m = topo.movement(MovementId::new(0));
        let mid = m.path().length() / 2.0;
        let profile = MotionProfile::new(0.0, mid, 10.0, vec![]);
        let occ = occupancy_of(m, &profile);
        assert!(occ.len() < m.zones().len());
        assert!(occ.iter().all(|(_, iv)| iv.start >= 0.0));
    }
}
