//! The reservation-based scheduler (DASH stand-in) and the scheduler
//! trait shared with the baselines.

use crate::plan::{PlanRequest, TravelPlan, VehicleStatus};
use crate::reservation::{occupancy_of, Occupancy, ReservationTable};
use crate::seek::{EntrySeeker, SeekScratch};
use nwade_geometry::MotionProfile;
use nwade_intersection::{Movement, Topology};
use nwade_traffic::KinematicLimits;
use std::sync::Arc;

/// Scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Vehicle kinematic limits.
    pub limits: KinematicLimits,
    /// Required temporal gap between two reservations of one cell,
    /// seconds.
    pub zone_gap: f64,
    /// Entry-time search step, seconds.
    pub search_step: f64,
    /// Maximum extra delay the search will consider before giving up and
    /// holding the vehicle at the stop line, seconds.
    pub max_delay: f64,
    /// Run the retained linear probe loop instead of the slot-seeking
    /// search. Plans are identical either way (pinned by differential
    /// tests); the flag exists for those tests and for window-latency
    /// baselines.
    pub probe: bool,
    /// Worker threads for the read-only pre-pass that computes each
    /// request's earliest-arrival profile and occupancy before the
    /// sequential booking pass. `1` skips the pre-pass.
    pub threads: usize,
    /// Per-window admission policy the host applies *before* calling
    /// [`Scheduler::schedule`]. Schedulers normalize their batch through
    /// `batch_order`, so this decides window membership, not plan
    /// contents. The default admits everything in arrival order.
    pub admission: crate::admission::AdmissionPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            limits: KinematicLimits::default(),
            zone_gap: 1.2,
            search_step: 0.5,
            max_delay: 240.0,
            probe: false,
            threads: 1,
            admission: crate::admission::AdmissionPolicy::default(),
        }
    }
}

/// Planning distance and earliest kinematically possible arrival for a
/// request: plan to the box entry while approaching; a vehicle already
/// past it (recovery replan mid-crossing) is planned to the path end so
/// it actually drives out instead of freezing in place.
pub(crate) fn approach(
    movement: &Movement,
    req: &PlanRequest,
    lim: &KinematicLimits,
    now: f64,
) -> (f64, f64) {
    let d_box = movement.box_entry() - req.position_s;
    let d_plan = if d_box > 1.0 {
        d_box
    } else {
        (movement.path().length() - req.position_s).max(0.0)
    };
    let earliest = now + MotionProfile::earliest_arrival(req.speed, lim.v_max, lim.a_max, d_plan);
    (d_plan, earliest)
}

/// A scheduler's durable state, as captured by
/// [`Scheduler::export_state`]: the canonical reservation-table bytes
/// plus a scheduler-specific auxiliary blob (e.g. the FCFS box-free
/// horizon). Restoring it with [`Scheduler::import_state`] on a freshly
/// built scheduler of the same kind yields one that behaves identically
/// to the original under every subsequent call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedulerState {
    /// [`ReservationTable::encode`] bytes.
    pub table: Vec<u8>,
    /// Scheduler-kind-specific extra state (empty for stateless kinds).
    pub aux: Vec<u8>,
}

impl SchedulerState {
    /// Flat encoding: `[u32 table len][table][u32 aux len][aux]`.
    pub fn encode(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(8 + self.table.len() + self.aux.len());
        buf.put_u32(self.table.len() as u32);
        buf.put_slice(&self.table);
        buf.put_u32(self.aux.len() as u32);
        buf.put_slice(&self.aux);
        buf
    }

    /// Decodes [`SchedulerState::encode`] bytes; `None` on truncation
    /// or trailing garbage, never a panic.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        use bytes::Buf;
        let mut cursor = bytes;
        let table_len = cursor.try_get_u32().ok()? as usize;
        if cursor.remaining() < table_len {
            return None;
        }
        let table = cursor[..table_len].to_vec();
        cursor = &cursor[table_len..];
        let aux_len = cursor.try_get_u32().ok()? as usize;
        if cursor.remaining() != aux_len {
            return None;
        }
        let aux = cursor.to_vec();
        Some(SchedulerState { table, aux })
    }
}

/// An intersection scheduler: turns plan requests into travel plans.
///
/// Implementations must be deterministic — the same request sequence must
/// yield the same plans, because the blockchain layer hashes plans and
/// vehicles recompute expectations from them.
pub trait Scheduler {
    /// Schedules a batch of requests at absolute time `now`.
    ///
    /// Returned plans are conflict-free among themselves and against all
    /// previously issued plans (checked by [`crate::find_conflicts`]).
    fn schedule(&mut self, requests: &[PlanRequest], now: f64) -> Vec<TravelPlan>;

    /// Forgets reservations that ended before `t`.
    fn collect_garbage(&mut self, t: f64);

    /// Releases the reservations of a vehicle that left or was re-planned.
    fn release(&mut self, vehicle: nwade_traffic::VehicleId);

    /// Books an externally computed plan (e.g. an evacuation plan) into
    /// the reservation state so subsequent scheduling respects it. Any
    /// prior reservations of the same vehicle are replaced.
    fn book(&mut self, plan: &TravelPlan);

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// The topology this scheduler serves.
    fn topology(&self) -> &Topology;

    /// Captures the scheduler's durable state for an IM snapshot.
    fn export_state(&self) -> SchedulerState;

    /// Restores a [`Scheduler::export_state`] snapshot. Returns `false`
    /// (leaving the scheduler untouched) when the bytes are malformed —
    /// recovery then falls back to a cold restart.
    fn import_state(&mut self, state: &SchedulerState) -> bool;

    /// Deep copy behind the trait object. Forensic world snapshots clone
    /// the whole intersection manager, scheduler included; the copy must
    /// behave identically to the original under every subsequent call.
    fn clone_box(&self) -> Box<dyn Scheduler + Send>;
}

impl Clone for Box<dyn Scheduler + Send> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The DASH stand-in: greedy earliest-feasible-entry reservation
/// scheduling over conflict-zone cells.
///
/// For each request the scheduler computes the earliest kinematically
/// possible arrival at the intersection box, then finds the first target
/// entry time on the [`SchedulerConfig::search_step`] grid whose whole
/// zone occupancy is bookable — by slot-seeking jumps over the table's
/// sorted interval lanes (see [`EntrySeeker::seek`]), or by the retained
/// linear probe loop when [`SchedulerConfig::probe`] is set; both select
/// the same grid point. The profile shape comes from
/// [`MotionProfile::arrive_at`]: adjust speed once, then hold — gentle
/// on passengers and easy for watchers to verify.
#[derive(Debug, Clone)]
pub struct ReservationScheduler {
    topology: Arc<Topology>,
    config: SchedulerConfig,
    table: ReservationTable,
    scratch: SeekScratch,
}

impl ReservationScheduler {
    /// Creates a scheduler for `topology`.
    pub fn new(topology: Arc<Topology>, config: SchedulerConfig) -> Self {
        ReservationScheduler {
            topology,
            config,
            table: ReservationTable::new(),
            scratch: SeekScratch::new(),
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Current number of booked intervals (for tests and load metrics).
    pub fn reservation_count(&self) -> usize {
        self.table.len()
    }

    /// Builds the plan for one request against the current table.
    ///
    /// `seed` optionally carries the request's earliest-arrival profile
    /// and occupancy, precomputed by the parallel pre-pass.
    fn plan_one(
        &mut self,
        req: &PlanRequest,
        now: f64,
        seed: Option<(MotionProfile, Occupancy)>,
    ) -> TravelPlan {
        let movement = self.topology.movement(req.movement);
        let path = movement.path();
        let lim = self.config.limits;
        let (d_plan, earliest) = approach(movement, req, &lim, now);

        let seeker = EntrySeeker {
            movement,
            table: &self.table,
            gap: self.config.zone_gap,
            ignore: req.id,
            now,
            v0: req.speed,
            v_max: lim.v_max,
            a_max: lim.a_max,
            d_max: lim.d_max,
            d_plan,
            position_s: req.position_s,
            start: earliest,
            step: self.config.search_step,
            deadline: earliest + self.config.max_delay,
        };
        let chosen = if self.config.probe {
            seeker.linear(&mut self.scratch)
        } else {
            seeker.seek(seed, &mut self.scratch)
        };

        let (profile, occupancy) = chosen.unwrap_or_else(|| {
            if std::env::var("NWADE_DEBUG").is_ok() {
                // Diagnose why the earliest profile failed.
                let probe = MotionProfile::arrive_at(
                    now, req.speed, lim.v_max, lim.a_max, lim.d_max, d_plan, earliest - now,
                );
                let probe = MotionProfile::new(probe.start_time(), req.position_s, probe.start_speed(), probe.segments().to_vec());
                let occ = occupancy_of(movement, &probe);
                eprintln!(
                    "[nwade-debug] scheduler fallback for {}: mv={} pos={:.1} v={:.1} d_plan={:.1} first_conflict={:?}",
                    req.id, req.movement.index(), req.position_s, req.speed, d_plan,
                    self.table.first_conflict(&occ, self.config.zone_gap, Some(req.id))
                );
            }
            // Saturated intersection: park without intruding on anyone —
            // traffic jam semantics.
            crate::reservation::park_fallback(
                movement,
                req.position_s,
                req.speed.min(lim.v_max),
                now,
                &self.table,
                self.config.zone_gap,
                req.id,
                lim.d_max,
            )
        });

        self.table.release(req.id);
        self.table.reserve(req.id, &occupancy);
        let status = VehicleStatus {
            position: path.point_at(req.position_s),
            speed: req.speed,
            heading: path.heading_at(req.position_s),
        };
        TravelPlan::new(
            req.id,
            req.descriptor.clone(),
            status,
            req.movement,
            profile,
        )
    }
}

/// Orders a batch so vehicles closest to the intersection box are planned
/// first — a trailing vehicle must respect the reservations of the
/// vehicle physically ahead of it, never the other way around.
pub(crate) fn batch_order<'a>(
    requests: &'a [PlanRequest],
    topology: &Topology,
) -> Vec<&'a PlanRequest> {
    let mut order: Vec<&PlanRequest> = requests.iter().collect();
    order.sort_by(|a, b| {
        let da = topology.movement(a.movement).box_entry() - a.position_s;
        let db = topology.movement(b.movement).box_entry() - b.position_s;
        da.partial_cmp(&db)
            .expect("finite distances")
            .then(a.id.cmp(&b.id))
    });
    order
}

impl ReservationScheduler {
    /// Read-only pre-pass: each request's earliest-arrival profile and
    /// occupancy, computed over parallel chunks before the sequential
    /// booking pass. Deterministic — the seed depends only on the
    /// request's own kinematics (not on the table), and chunk
    /// concatenation preserves request order, so results are
    /// bit-identical to computing them inline.
    fn first_probes(
        &self,
        ordered: &[&PlanRequest],
        now: f64,
    ) -> Vec<Option<(MotionProfile, Occupancy)>> {
        if self.config.probe || self.config.threads <= 1 {
            return ordered.iter().map(|_| None).collect();
        }
        let lim = self.config.limits;
        let topology = &self.topology;
        nwade_exec::fan_out(ordered, self.config.threads, |chunk| {
            chunk
                .iter()
                .map(|req| {
                    let movement = topology.movement(req.movement);
                    let (d_plan, earliest) = approach(movement, req, &lim, now);
                    let profile = MotionProfile::arrive_at(
                        now,
                        req.speed,
                        lim.v_max,
                        lim.a_max,
                        lim.d_max,
                        d_plan,
                        earliest - now,
                    )
                    .with_start_position(req.position_s);
                    let occupancy = occupancy_of(movement, &profile);
                    Some((profile, occupancy))
                })
                .collect()
        })
    }
}

impl Scheduler for ReservationScheduler {
    fn schedule(&mut self, requests: &[PlanRequest], now: f64) -> Vec<TravelPlan> {
        let ordered = batch_order(requests, &self.topology);
        let seeds = self.first_probes(&ordered, now);
        ordered
            .into_iter()
            .zip(seeds)
            .map(|(r, seed)| self.plan_one(r, now, seed))
            .collect()
    }

    fn collect_garbage(&mut self, t: f64) {
        self.table.release_before(t);
    }

    fn release(&mut self, vehicle: nwade_traffic::VehicleId) {
        self.table.release(vehicle);
    }

    fn book(&mut self, plan: &TravelPlan) {
        self.table.release(plan.id());
        let occupancy = occupancy_of(self.topology.movement(plan.movement()), plan.profile());
        self.table.reserve(plan.id(), &occupancy);
    }

    fn name(&self) -> &'static str {
        "reservation"
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            table: self.table.encode(),
            aux: Vec::new(),
        }
    }

    fn import_state(&mut self, state: &SchedulerState) -> bool {
        match ReservationTable::decode(&state.table) {
            Some(table) => {
                self.table = table;
                true
            }
            None => false,
        }
    }

    fn clone_box(&self) -> Box<dyn Scheduler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::find_conflicts;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::{VehicleDescriptor, VehicleId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn request(id: u64, movement: usize, speed: f64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(movement as u16),
            position_s: 0.0,
            speed,
        }
    }

    fn crossing_movements(topo: &Topology) -> (usize, usize) {
        // Two movements from *different legs* that share a zone (same-leg
        // pairs share the approach, which is a following constraint, not
        // a crossing).
        topo.conflicting_pairs()
            .iter()
            .map(|(a, b)| (a.index(), b.index()))
            .find(|(a, b)| topo.movements()[*a].from_leg() != topo.movements()[*b].from_leg())
            .expect("crossing pair exists")
    }

    /// Schedules each request in its own batch, 4 s apart — vehicles
    /// cannot physically spawn on top of each other, and the simulator
    /// gates spawns the same way.
    fn schedule_staggered<S: Scheduler>(s: &mut S, reqs: &[PlanRequest]) -> Vec<TravelPlan> {
        reqs.iter()
            .enumerate()
            .flat_map(|(i, r)| s.schedule(std::slice::from_ref(r), i as f64 * 4.0))
            .collect()
    }

    #[test]
    fn single_vehicle_gets_earliest_plan() {
        let topo = topo();
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let req = request(0, 0, 15.0);
        let plans = s.schedule(std::slice::from_ref(&req), 100.0);
        assert_eq!(plans.len(), 1);
        let m = topo.movement(req.movement);
        let lim = SchedulerConfig::default().limits;
        let earliest =
            100.0 + MotionProfile::earliest_arrival(15.0, lim.v_max, lim.a_max, m.box_entry());
        let t_entry = plans[0]
            .profile()
            .time_at_position(m.box_entry())
            .expect("reaches box");
        assert!(
            (t_entry - earliest).abs() < 0.01,
            "entry {t_entry}, earliest {earliest}"
        );
    }

    #[test]
    fn conflicting_requests_are_serialized() {
        let topo = topo();
        let (ma, mb) = crossing_movements(&topo);
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let plans = s.schedule(&[request(0, ma, 15.0), request(1, mb, 15.0)], 0.0);
        assert_eq!(plans.len(), 2);
        assert!(
            find_conflicts(&plans, &topo, 0.5).is_empty(),
            "scheduler produced conflicting plans"
        );
    }

    #[test]
    fn stream_of_many_requests_is_conflict_free() {
        let topo = topo();
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let n_movements = topo.movements().len();
        let requests: Vec<PlanRequest> = (0..40)
            .map(|i| request(i, (i as usize * 7) % n_movements, 12.0))
            .collect();
        let plans = schedule_staggered(&mut s, &requests);
        assert_eq!(plans.len(), 40);
        assert!(
            find_conflicts(&plans, &topo, 0.5).is_empty(),
            "conflicts in a 40-vehicle stream"
        );
    }

    #[test]
    fn sequential_batches_respect_earlier_reservations() {
        let topo = topo();
        let (ma, mb) = crossing_movements(&topo);
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let first = s.schedule(&[request(0, ma, 15.0)], 0.0);
        let second = s.schedule(&[request(1, mb, 15.0)], 2.0);
        let mut all = first;
        all.extend(second);
        assert!(find_conflicts(&all, &topo, 0.5).is_empty());
    }

    #[test]
    fn same_lane_followers_keep_spacing() {
        let topo = topo();
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        // Three vehicles entering the same lane 4 s apart.
        let plans = schedule_staggered(
            &mut s,
            &[
                request(0, 0, 15.0),
                request(1, 0, 15.0),
                request(2, 0, 15.0),
            ],
        );
        assert!(find_conflicts(&plans, &topo, 0.5).is_empty());
        // Box-entry times are strictly increasing.
        let m = topo.movement(MovementId::new(0));
        let entries: Vec<f64> = plans
            .iter()
            .map(|p| {
                p.profile()
                    .time_at_position(m.box_entry())
                    .expect("arrives")
            })
            .collect();
        assert!(entries.windows(2).all(|w| w[1] > w[0] + 0.5));
    }

    #[test]
    fn garbage_collection_shrinks_table() {
        let topo = topo();
        let mut s = ReservationScheduler::new(topo, SchedulerConfig::default());
        s.schedule(&[request(0, 0, 15.0)], 0.0);
        let before = s.reservation_count();
        assert!(before > 0);
        s.collect_garbage(1e9);
        assert_eq!(s.reservation_count(), 0);
    }

    #[test]
    fn release_frees_a_vehicle() {
        let topo = topo();
        let mut s = ReservationScheduler::new(topo, SchedulerConfig::default());
        s.schedule(&[request(0, 0, 15.0)], 0.0);
        s.release(VehicleId::new(0));
        assert_eq!(s.reservation_count(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = topo();
        let run = || {
            let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
            let reqs: Vec<PlanRequest> =
                (0..10).map(|i| request(i, i as usize % 4, 12.0)).collect();
            s.schedule(&reqs, 0.0)
                .iter()
                .map(|p| p.encode())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn works_on_every_intersection_kind() {
        for kind in IntersectionKind::ALL {
            let topo = Arc::new(build(kind, &GeometryConfig::default()));
            let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
            let n = topo.movements().len();
            let reqs: Vec<PlanRequest> = (0..20)
                .map(|i| request(i, (i as usize * 3) % n, 12.0))
                .collect();
            let plans = schedule_staggered(&mut s, &reqs);
            assert!(
                find_conflicts(&plans, &topo, 0.5).is_empty(),
                "{kind}: conflicting plans"
            );
        }
    }
}
