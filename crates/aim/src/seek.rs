//! Slot-seeking entry-time search shared by the planners.
//!
//! Every scheduler used to walk the probe grid `{earliest + k·step}`
//! linearly: build the [`MotionProfile::arrive_at`] profile for the
//! target, compute its occupancy, test the table, step by
//! `search_step`, up to `max_delay / search_step` (≈ 480) probes per
//! request. [`EntrySeeker::seek`] answers the same question — the first
//! *grid point* whose occupancy books cleanly — by jumping: when a probe
//! conflicts, [`crate::ReservationTable::first_blocking`] reports how
//! long the conflicting zone stays provably blocked for an interval of
//! that shape, and a binary search over the remaining grid finds the
//! first target whose zone-entry time clears that bound (≈ log₂ 480 ≈ 9
//! profile builds per blocking episode).
//!
//! ## Why the result is bit-identical to the linear loop
//!
//! `arrive_at` ramps from the current speed to a hold speed `v` found by
//! bisection; a later target means a lower `v`, hence a pointwise slower
//! profile, hence, for every zone: a non-decreasing entry time, a
//! non-decreasing exit time, a non-decreasing crossing duration, and —
//! once the hold speed falls below the resolvable minimum — monotone
//! *absence* (the profile parks short of the zone). A placement
//! conflicts with a booking `B` iff `start ≤ B.end + gap` (and the
//! symmetric condition, which slower profiles keep satisfied), so
//! "clears the blocked range" is a monotone predicate of the grid index
//! and binary search skips exactly the grid points that still conflict.
//! The linear loop would have rejected every one of them, so both
//! searches land on the same grid point — and the grid itself is built
//! by the same accumulated `target += step` floats the linear loop
//! produces. The linear loop is retained behind the
//! `SchedulerConfig::probe` flag and pinned equal by differential tests.

use crate::reservation::{occupancy_into, Occupancy, ReservationTable};
use nwade_geometry::MotionProfile;
use nwade_intersection::{Movement, ZoneId};
use nwade_traffic::VehicleId;

/// Reusable buffers for one scheduler: probing many candidate entry
/// times reuses these allocations instead of building fresh vectors per
/// probe.
#[derive(Debug, Clone, Default)]
pub struct SeekScratch {
    /// Occupancy at the current committed grid point.
    occupancy: Occupancy,
    /// Occupancy buffer for binary-search evaluations.
    probe: Occupancy,
    /// The probe grid (accumulated, see [`EntrySeeker::seek`]).
    targets: Vec<f64>,
}

impl SeekScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        SeekScratch::default()
    }
}

/// One entry-time search over the probe grid
/// `{start, start + step, …} ∩ [start, deadline]`.
#[derive(Debug)]
pub struct EntrySeeker<'a> {
    /// The movement being planned.
    pub movement: &'a Movement,
    /// The reservation table to book against.
    pub table: &'a ReservationTable,
    /// Temporal gap between same-cell reservations, seconds.
    pub gap: f64,
    /// The requesting vehicle (its own bookings are ignored).
    pub ignore: VehicleId,
    /// Absolute time the plan starts.
    pub now: f64,
    /// Current speed (clamped to `v_max` by `arrive_at`).
    pub v0: f64,
    /// Speed limit for the profile.
    pub v_max: f64,
    /// Acceleration limit.
    pub a_max: f64,
    /// Deceleration limit.
    pub d_max: f64,
    /// Distance the profile must cover.
    pub d_plan: f64,
    /// Arclength position the profile starts at.
    pub position_s: f64,
    /// First grid point (the earliest feasible arrival, possibly pushed
    /// back by scheduler-specific locks).
    pub start: f64,
    /// Grid spacing (`search_step`).
    pub step: f64,
    /// Last admissible target; grid points beyond it are not probed.
    pub deadline: f64,
}

impl EntrySeeker<'_> {
    /// The arrival profile targeting `target`, rebased to the request's
    /// arclength.
    pub fn profile_at(&self, target: f64) -> MotionProfile {
        MotionProfile::arrive_at(
            self.now,
            self.v0,
            self.v_max,
            self.a_max,
            self.d_max,
            self.d_plan,
            target - self.now,
        )
        .with_start_position(self.position_s)
    }

    /// The retained linear probe loop — the pre-slot-seek search, kept
    /// behind [`crate::SchedulerConfig::probe`] for differential tests.
    pub fn linear(&self, scratch: &mut SeekScratch) -> Option<(MotionProfile, Occupancy)> {
        let mut target = self.start;
        loop {
            let profile = self.profile_at(target);
            occupancy_into(self.movement, &profile, &mut scratch.occupancy);
            if self
                .table
                .is_free(&scratch.occupancy, self.gap, Some(self.ignore))
            {
                return Some((profile, scratch.occupancy.clone()));
            }
            target += self.step;
            if target > self.deadline {
                return None;
            }
        }
    }

    /// Slot-seeking search: same result as [`EntrySeeker::linear`], in
    /// O(blocking episodes × log grid) probes instead of O(grid).
    ///
    /// `seed` may carry the profile and occupancy of the *first* grid
    /// point, precomputed by the parallel pre-pass; it must be exactly
    /// what `profile_at(start)` produces.
    pub fn seek(
        &self,
        seed: Option<(MotionProfile, Occupancy)>,
        scratch: &mut SeekScratch,
    ) -> Option<(MotionProfile, Occupancy)> {
        // Build the grid by the same accumulation the linear loop runs
        // (`target += step`), so grid point k is bit-for-bit the float
        // the linear search would probe.
        scratch.targets.clear();
        let mut t = self.start;
        loop {
            scratch.targets.push(t);
            t += self.step;
            if t > self.deadline {
                break;
            }
        }
        let kmax = scratch.targets.len() - 1;

        let mut k = 0usize;
        let mut profile = match seed {
            Some((p, occ)) => {
                scratch.occupancy = occ;
                p
            }
            None => {
                let p = self.profile_at(scratch.targets[0]);
                occupancy_into(self.movement, &p, &mut scratch.occupancy);
                p
            }
        };
        loop {
            let Some(blocking) =
                self.table
                    .first_blocking(&scratch.occupancy, self.gap, Some(self.ignore))
            else {
                return Some((profile, scratch.occupancy.clone()));
            };
            if k == kmax {
                return None; // the linear loop would step past the deadline
            }
            // Clear-predicate: the zone's entry time moves past the
            // blocked range — or, when an open-ended booking blocks
            // forever, the profile parks short of the zone entirely
            // (entry = ∞). Monotone in k (see module docs).
            let until = blocking.blocked_until;
            let clears = |entry: f64| {
                if until.is_infinite() {
                    entry.is_infinite()
                } else {
                    entry > until
                }
            };
            if !clears(self.zone_entry(scratch.targets[kmax], blocking.zone, &mut scratch.probe)) {
                // Even the last grid point still conflicts with this
                // chain — so does everything between (monotonicity).
                return None;
            }
            let (mut lo, mut hi) = (k, kmax);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if clears(self.zone_entry(scratch.targets[mid], blocking.zone, &mut scratch.probe))
                {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            k = hi;
            profile = self.profile_at(scratch.targets[k]);
            occupancy_into(self.movement, &profile, &mut scratch.occupancy);
        }
    }

    /// Entry time of `zone` for the profile targeting `target`, or `∞`
    /// when that profile never reaches the zone (slower profiles park
    /// short of it).
    fn zone_entry(&self, target: f64, zone: ZoneId, buf: &mut Occupancy) -> f64 {
        let p = self.profile_at(target);
        occupancy_into(self.movement, &p, buf);
        buf.iter()
            .find(|(z, _)| *z == zone)
            .map_or(f64::INFINITY, |(_, iv)| iv.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanRequest;
    use crate::reservation::occupancy_of;
    use nwade_geometry::TimeInterval;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
    use nwade_traffic::{KinematicLimits, VehicleDescriptor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn request(id: u64, movement: usize, speed: f64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(movement as u16),
            position_s: 0.0,
            speed,
        }
    }

    fn seeker<'a>(
        topo: &'a Topology,
        table: &'a ReservationTable,
        req: &PlanRequest,
        now: f64,
    ) -> EntrySeeker<'a> {
        let lim = KinematicLimits::default();
        let movement = topo.movement(req.movement);
        let d_plan = movement.box_entry() - req.position_s;
        let earliest =
            now + MotionProfile::earliest_arrival(req.speed, lim.v_max, lim.a_max, d_plan);
        EntrySeeker {
            movement,
            table,
            gap: 1.2,
            ignore: req.id,
            now,
            v0: req.speed,
            v_max: lim.v_max,
            a_max: lim.a_max,
            d_max: lim.d_max,
            d_plan,
            position_s: req.position_s,
            start: earliest,
            step: 0.5,
            deadline: earliest + 240.0,
        }
    }

    /// Seek and the retained linear loop agree — empty table, contended
    /// table, and a table blocked forever by an open-ended booking.
    #[test]
    fn seek_matches_linear() {
        let topo = topo();
        let mut table = ReservationTable::new();
        let mut scratch = SeekScratch::new();
        let req = request(1, 0, 15.0);

        // Empty table: both take the earliest grid point.
        let s = seeker(&topo, &table, &req, 0.0);
        let a = s.linear(&mut scratch);
        let b = s.seek(None, &mut scratch);
        assert_eq!(a, b);

        // Book a same-lane leader and a crossing stream (staggered 4 s
        // apart — vehicles cannot spawn on top of each other), then
        // re-plan against the populated table.
        let (_, lead_occ) = a.expect("books on an empty table");
        table.reserve(VehicleId::new(0), &lead_occ);
        for i in 0..6 {
            let other = request(100 + i, 5, 13.0);
            let so = seeker(&topo, &table, &other, 4.0 * i as f64);
            let got = so.seek(None, &mut scratch);
            assert_eq!(got, so.linear(&mut scratch), "request {i}");
            let got = got.expect("schedules");
            table.reserve(other.id, &got.1);
        }
        let follow = request(2, 0, 15.0);
        let sf = seeker(&topo, &table, &follow, 4.0);
        assert_eq!(sf.seek(None, &mut scratch), sf.linear(&mut scratch));

        // A zone blocked forever: both paths must give up identically.
        let (z, _) = lead_occ.first().expect("lead occupies at least one zone");
        let mut forever = ReservationTable::new();
        forever.reserve(
            VehicleId::new(9),
            &vec![(*z, TimeInterval::new(0.0, f64::INFINITY))],
        );
        let s = seeker(&topo, &forever, &req, 0.0);
        assert_eq!(s.seek(None, &mut scratch), s.linear(&mut scratch));
    }

    /// The precomputed seed changes nothing.
    #[test]
    fn seed_is_transparent() {
        let topo = topo();
        let mut table = ReservationTable::new();
        let mut scratch = SeekScratch::new();
        let first = request(1, 0, 15.0);
        let s = seeker(&topo, &table, &first, 0.0);
        let (_, occ) = s.seek(None, &mut scratch).expect("books");
        table.reserve(first.id, &occ);

        let req = request(2, 0, 15.0);
        let s = seeker(&topo, &table, &req, 1.0);
        let seed_profile = s.profile_at(s.start);
        let seed_occ = occupancy_of(s.movement, &seed_profile);
        let with_seed = s.seek(Some((seed_profile, seed_occ)), &mut scratch);
        let without = s.seek(None, &mut scratch);
        assert_eq!(with_seed, without);
    }
}
