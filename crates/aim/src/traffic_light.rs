//! Baseline: fixed-cycle traffic light.
//!
//! Legs are grouped into phases (opposite legs share a phase at a 4-way;
//! every leg gets its own phase otherwise). A vehicle may only enter the
//! intersection box during its phase's green window; within the window,
//! zone reservations still enforce spacing.

use crate::plan::{PlanRequest, TravelPlan, VehicleStatus};
use crate::reservation::{occupancy_into, occupancy_of, Occupancy, ReservationTable};
use crate::scheduler::{Scheduler, SchedulerConfig};
use nwade_geometry::MotionProfile;
use nwade_intersection::Topology;
use std::sync::Arc;

/// Signal timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalTiming {
    /// Green duration per phase, seconds.
    pub green: f64,
    /// All-red clearance between phases, seconds.
    pub all_red: f64,
    /// Margin before the end of green after which entries are refused.
    pub entry_margin: f64,
}

impl Default for SignalTiming {
    fn default() -> Self {
        SignalTiming {
            green: 20.0,
            all_red: 3.0,
            entry_margin: 2.0,
        }
    }
}

/// The fixed-cycle traffic-light scheduler.
///
/// The entry-time search stays a linear probe here: green-window
/// rollovers make the target sequence non-uniform, so the slot-seeking
/// grid jumps the other schedulers use do not apply.
#[derive(Debug, Clone)]
pub struct TrafficLightScheduler {
    topology: Arc<Topology>,
    config: SchedulerConfig,
    timing: SignalTiming,
    table: ReservationTable,
    phases: usize,
    scratch: Occupancy,
}

impl TrafficLightScheduler {
    /// Creates the traffic-light baseline.
    pub fn new(topology: Arc<Topology>, config: SchedulerConfig, timing: SignalTiming) -> Self {
        let n_legs = topology.legs().len();
        let phases = if n_legs == 4 { 2 } else { n_legs };
        TrafficLightScheduler {
            topology,
            config,
            timing,
            table: ReservationTable::new(),
            phases,
            scratch: Occupancy::new(),
        }
    }

    /// The phase index of a leg.
    fn phase_of(&self, leg: usize) -> usize {
        if self.phases == 2 {
            leg % 2
        } else {
            leg
        }
    }

    /// Cycle length in seconds.
    fn cycle(&self) -> f64 {
        self.phases as f64 * (self.timing.green + self.timing.all_red)
    }

    /// The first green window `[start, latest_entry]` for `phase` whose
    /// latest permissible entry is `>= t`.
    fn next_green(&self, phase: usize, t: f64) -> (f64, f64) {
        let cycle = self.cycle();
        let offset = phase as f64 * (self.timing.green + self.timing.all_red);
        let latest_entry_offset = offset + self.timing.green - self.timing.entry_margin;
        let k = ((t - latest_entry_offset) / cycle).ceil().max(0.0);
        let start = k * cycle + offset;
        (start, start + self.timing.green - self.timing.entry_margin)
    }

    fn plan_one(&mut self, req: &PlanRequest, now: f64) -> TravelPlan {
        let movement = self.topology.movement(req.movement);
        let path = movement.path();
        let lim = self.config.limits;
        let phase = self.phase_of(movement.from_leg().index());
        let d_box = movement.box_entry() - req.position_s;
        let in_approach = d_box > 1.0;
        let d_plan = if in_approach {
            d_box
        } else {
            (movement.path().length() - req.position_s).max(0.0)
        };
        let earliest =
            now + MotionProfile::earliest_arrival(req.speed, lim.v_max, lim.a_max, d_plan);
        let deadline = earliest + self.config.max_delay;

        // A vehicle already past the stop line (recovery replan) clears
        // the box regardless of the signal.
        let (mut win_start, mut win_end) = if in_approach {
            self.next_green(phase, earliest)
        } else {
            (0.0, f64::INFINITY)
        };
        let mut target = earliest.max(win_start);
        let chosen = loop {
            if target > win_end {
                let (s, e) = self.next_green(phase, win_end + self.timing.all_red);
                win_start = s;
                win_end = e;
                target = win_start;
            }
            if target > deadline {
                break None;
            }
            let profile = MotionProfile::arrive_at(
                now,
                req.speed,
                lim.v_max,
                lim.a_max,
                lim.d_max,
                d_plan,
                target - now,
            )
            .with_start_position(req.position_s);
            // The fallback "fastest" profile may still arrive before the
            // window opens; verify the actual entry time.
            let entry = profile
                .time_at_position(movement.box_entry())
                .unwrap_or(f64::INFINITY);
            if in_approach && entry < win_start - 1e-6 {
                target += self.config.search_step;
                continue;
            }
            occupancy_into(movement, &profile, &mut self.scratch);
            if self
                .table
                .is_free(&self.scratch, self.config.zone_gap, Some(req.id))
            {
                break Some((profile, self.scratch.clone()));
            }
            target += self.config.search_step;
        };

        let (profile, occupancy) = chosen.unwrap_or_else(|| {
            crate::reservation::park_fallback(
                movement,
                req.position_s,
                req.speed.min(lim.v_max),
                now,
                &self.table,
                self.config.zone_gap,
                req.id,
                lim.d_max,
            )
        });
        self.table.release(req.id);
        self.table.reserve(req.id, &occupancy);
        TravelPlan::new(
            req.id,
            req.descriptor.clone(),
            VehicleStatus {
                position: path.point_at(req.position_s),
                speed: req.speed,
                heading: path.heading_at(req.position_s),
            },
            req.movement,
            profile,
        )
    }
}

impl Scheduler for TrafficLightScheduler {
    fn schedule(&mut self, requests: &[PlanRequest], now: f64) -> Vec<TravelPlan> {
        crate::scheduler::batch_order(requests, &self.topology)
            .into_iter()
            .map(|r| self.plan_one(r, now))
            .collect()
    }

    fn collect_garbage(&mut self, t: f64) {
        self.table.release_before(t);
    }

    fn release(&mut self, vehicle: nwade_traffic::VehicleId) {
        self.table.release(vehicle);
    }

    fn book(&mut self, plan: &TravelPlan) {
        self.table.release(plan.id());
        let occupancy = occupancy_of(self.topology.movement(plan.movement()), plan.profile());
        self.table.reserve(plan.id(), &occupancy);
    }

    fn name(&self) -> &'static str {
        "traffic-light"
    }

    fn topology(&self) -> &Topology {
        &self.topology
    }

    fn export_state(&self) -> crate::scheduler::SchedulerState {
        // Signal phases are a pure function of time; only the table is
        // durable.
        crate::scheduler::SchedulerState {
            table: self.table.encode(),
            aux: Vec::new(),
        }
    }

    fn import_state(&mut self, state: &crate::scheduler::SchedulerState) -> bool {
        match ReservationTable::decode(&state.table) {
            Some(table) => {
                self.table = table;
                true
            }
            None => false,
        }
    }

    fn clone_box(&self) -> Box<dyn crate::scheduler::Scheduler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::find_conflicts;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::{VehicleDescriptor, VehicleId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn request(id: u64, movement: usize) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(movement as u16),
            position_s: 0.0,
            speed: 15.0,
        }
    }

    fn scheduler(topo: Arc<Topology>) -> TrafficLightScheduler {
        TrafficLightScheduler::new(topo, SchedulerConfig::default(), SignalTiming::default())
    }

    #[test]
    fn four_way_uses_two_phases() {
        let s = scheduler(topo());
        assert_eq!(s.phases, 2);
        assert_eq!(s.phase_of(0), s.phase_of(2));
        assert_eq!(s.phase_of(1), s.phase_of(3));
        assert_ne!(s.phase_of(0), s.phase_of(1));
    }

    #[test]
    fn five_way_uses_per_leg_phases() {
        let t = Arc::new(build(
            IntersectionKind::FiveWayIrregular,
            &GeometryConfig::default(),
        ));
        let s = scheduler(t);
        assert_eq!(s.phases, 5);
    }

    #[test]
    fn next_green_windows_are_periodic() {
        let s = scheduler(topo());
        let (s0, e0) = s.next_green(0, 0.0);
        assert_eq!(s0, 0.0);
        assert_eq!(e0, 20.0 - 2.0);
        let (s1, _) = s.next_green(0, e0 + 0.1);
        assert!((s1 - s.cycle()).abs() < 1e-9);
        // Phase 1 offset by green + all-red.
        let (p1, _) = s.next_green(1, 0.0);
        assert_eq!(p1, 23.0);
    }

    fn schedule_staggered<S: Scheduler>(s: &mut S, reqs: &[PlanRequest]) -> Vec<TravelPlan> {
        reqs.iter()
            .enumerate()
            .flat_map(|(i, r)| s.schedule(std::slice::from_ref(r), i as f64 * 4.0))
            .collect()
    }

    #[test]
    fn entries_happen_during_green_only() {
        let topo = topo();
        let mut s = scheduler(topo.clone());
        let n = topo.movements().len();
        let reqs: Vec<PlanRequest> = (0..12).map(|i| request(i, (i as usize * 5) % n)).collect();
        let plans = schedule_staggered(&mut s, &reqs);
        for p in &plans {
            let m = topo.movement(p.movement());
            let Some(entry) = p.profile().time_at_position(m.box_entry()) else {
                continue; // held at the line
            };
            let phase = s.phase_of(m.from_leg().index());
            let (ws, we) = s.next_green(phase, entry - 1e-6);
            assert!(
                entry >= ws - 1e-6 && entry <= we + 1e-6,
                "{}: entry {entry:.2} outside green [{ws:.2}, {we:.2}]",
                p.id()
            );
        }
        assert!(find_conflicts(&plans, &topo, 0.5).is_empty());
    }

    #[test]
    fn light_is_slower_than_reservation() {
        use crate::scheduler::ReservationScheduler;
        let topo = topo();
        let n = topo.movements().len();
        let reqs: Vec<PlanRequest> = (0..16).map(|i| request(i, (i as usize * 7) % n)).collect();
        let total = |plans: &[TravelPlan]| -> f64 {
            plans
                .iter()
                .map(|p| p.exit_time(&topo).unwrap_or(1e6))
                .sum()
        };
        let light = total(&schedule_staggered(&mut scheduler(topo.clone()), &reqs));
        let mut r = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let resv = total(&schedule_staggered(&mut r, &reqs));
        assert!(
            resv < light,
            "reservation ({resv:.0}) should beat the light ({light:.0})"
        );
    }
}
