//! Property tests for fairness-aware admission: the starvation bound
//! (every offered request is admitted within `K + ⌈(L+1)/C⌉` windows,
//! where `L` is the backlog ahead of it at arrival), determinism, and
//! exact conservation of the offered/admitted/deferred accounting.

use nwade_aim::{AdmissionOrder, AdmissionPolicy, AdmissionQueue, PlanRequest, QueuedRequest};
use nwade_intersection::MovementId;
use nwade_traffic::{VehicleDescriptor, VehicleId};
use proptest::prelude::*;

fn req(id: u64, position_s: f64) -> PlanRequest {
    PlanRequest {
        id: VehicleId::new(id),
        descriptor: VehicleDescriptor {
            brand: "prop".into(),
            model: "test".into(),
            color: "gray".into(),
        },
        movement: MovementId::new(0),
        position_s,
        speed: 10.0,
    }
}

/// One window's worth of load: burst size and per-request urgency keys.
fn arb_windows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, 0..7), 1..30)
}

fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    (
        1usize..4,
        1u32..5,
        prop_oneof![
            Just(AdmissionOrder::Arrival),
            Just(AdmissionOrder::Deadline),
        ],
    )
        .prop_map(|(cap, k, order)| AdmissionPolicy {
            max_batch: Some(cap),
            order,
            max_defer_windows: k,
        })
}

/// Runs the full load through the queue, then drains the tail with empty
/// windows. Returns `(admission_window, arrival_window, backlog_at_push)`
/// per request id.
fn run(windows: &[Vec<f64>], policy: &AdmissionPolicy) -> Vec<(u64, usize, usize, usize)> {
    let mut q = AdmissionQueue::new();
    let mut meta: Vec<(usize, usize)> = Vec::new(); // id-indexed (arrival window, backlog)
    let mut admitted_at: Vec<Option<usize>> = Vec::new();
    let deadline = |e: &QueuedRequest| e.request.position_s;
    let mut w = 0usize;
    let mut next_id = 0u64;
    let total: usize = windows.iter().map(Vec::len).sum();
    loop {
        if let Some(burst) = windows.get(w) {
            for key in burst {
                meta.push((w, q.len()));
                admitted_at.push(None);
                q.push(w as f64, req(next_id, *key));
                next_id += 1;
            }
        }
        let out = q.admit(policy, deadline);
        let window_total = out.admitted.len() + out.deferred;
        assert_eq!(out.offered, window_total, "conservation");
        for e in &out.admitted {
            let id = e.request.id.raw() as usize;
            assert!(admitted_at[id].is_none(), "admitted twice");
            admitted_at[id] = Some(w);
        }
        w += 1;
        if w >= windows.len() && q.is_empty() {
            break;
        }
        assert!(w < windows.len() + total + 2, "drain never terminates");
    }
    (0..next_id)
        .map(|id| {
            let i = id as usize;
            let (arr, backlog) = meta[i];
            let adm = admitted_at[i].expect("every request eventually admitted");
            (id, adm, arr, backlog)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under sustained overload, every request is admitted within
    /// `K + ⌈(L+1)/C⌉` windows of its arrival: after at most K deferrals
    /// it joins the aged FIFO class, where only the `L` entries already
    /// ahead of it (a set that never grows) can precede it.
    #[test]
    fn starvation_is_bounded(windows in arb_windows(), policy in arb_policy()) {
        let cap = policy.max_batch.unwrap();
        let k = policy.max_defer_windows as usize;
        for (id, adm, arr, backlog) in run(&windows, &policy) {
            let bound = k + (backlog + 1).div_ceil(cap);
            prop_assert!(
                adm - arr <= bound,
                "request {} waited {} windows, bound {} (backlog {}, cap {}, K {})",
                id, adm - arr, bound, backlog, cap, k
            );
        }
    }

    /// The same load replayed through a fresh queue yields the identical
    /// admission schedule — no dependence on anything but push order.
    #[test]
    fn admission_is_deterministic(windows in arb_windows(), policy in arb_policy()) {
        prop_assert_eq!(run(&windows, &policy), run(&windows, &policy));
    }

    /// An unbounded policy is a pure pass-through: every window admits
    /// exactly its pending set in push order with zero deferrals.
    #[test]
    fn unbounded_policy_is_identity(windows in arb_windows()) {
        let policy = AdmissionPolicy::default();
        let mut q = AdmissionQueue::new();
        let mut next_id = 0u64;
        for (w, burst) in windows.iter().enumerate() {
            let mut expect = Vec::new();
            for key in burst {
                q.push(w as f64, req(next_id, *key));
                expect.push(next_id);
                next_id += 1;
            }
            let out = q.admit(&policy, |e| e.request.position_s);
            let got: Vec<u64> = out.admitted.iter().map(|e| e.request.id.raw()).collect();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(out.deferred, 0);
            prop_assert!(q.is_empty());
        }
    }
}
