//! Property tests over the scheduler's public API: every plan it emits
//! must be physically lawful and mutually safe, for arbitrary request
//! streams — plus differential properties pinning the slot-seeking
//! search to the retained linear probe loop, and the sorted reservation
//! table to a brute-force reference.

use nwade_aim::evacuation::EvacuationConfig;
use nwade_aim::{
    find_conflicts, occupancy_of, EvacuationPlanner, FcfsScheduler, PlanRequest,
    ReservationScheduler, ReservationTable, Scheduler, SchedulerConfig, TrafficLightScheduler,
};
use nwade_geometry::{TimeInterval, Vec2};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology, ZoneId};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn topo() -> Arc<Topology> {
    Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ))
}

fn request(id: u64, movement: usize, speed: f64) -> PlanRequest {
    PlanRequest {
        id: VehicleId::new(id),
        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
        movement: MovementId::new(movement as u16),
        position_s: 0.0,
        speed,
    }
}

fn check_scheduler(mut s: impl Scheduler, stream: Vec<(usize, f64, f64)>) {
    let topo = s.topology().clone();
    let v_max = SchedulerConfig::default().limits.v_max;
    let mut all = Vec::new();
    let mut clock: f64 = 0.0;
    for (i, (movement, speed, gap)) in stream.into_iter().enumerate() {
        clock += gap;
        let plans = s.schedule(&[request(i as u64, movement % 16, speed)], clock);
        all.extend(plans);
    }
    // 1. No two emitted plans conflict.
    assert!(
        find_conflicts(&all, &topo, 0.5).is_empty(),
        "scheduler emitted conflicting plans"
    );
    for plan in &all {
        // 2. Speed stays within the limit at all times.
        for i in 0..400 {
            let v = plan.profile().speed_at(i as f64 * 0.5);
            assert!(v <= v_max + 1e-6, "{}: speed {v}", plan.id());
        }
        // 3. Occupancy intervals are ordered by entry time.
        let occ = occupancy_of(topo.movement(plan.movement()), plan.profile());
        for w in occ.windows(2) {
            assert!(w[0].1.start <= w[1].1.start + 1e-9);
        }
    }
}

/// Brute-force reference for [`ReservationTable`]: a flat list of
/// bookings, every query a full linear scan.
#[derive(Default)]
struct RefTable {
    entries: Vec<(ZoneId, TimeInterval, VehicleId)>,
}

impl RefTable {
    fn reserve(&mut self, vehicle: VehicleId, occ: &[(ZoneId, TimeInterval)]) {
        for (zone, iv) in occ {
            self.entries.push((*zone, *iv, vehicle));
        }
    }

    fn release(&mut self, vehicle: VehicleId) {
        self.entries.retain(|(_, _, v)| *v != vehicle);
    }

    fn release_before(&mut self, t: f64) {
        self.entries.retain(|(_, iv, _)| iv.end >= t);
    }

    fn conflicts_in_zone(
        &self,
        zone: ZoneId,
        iv: &TimeInterval,
        gap: f64,
        ignore: Option<VehicleId>,
    ) -> bool {
        self.entries
            .iter()
            .any(|(z, b, v)| *z == zone && Some(*v) != ignore && iv.overlaps_with_gap(b, gap))
    }

    fn first_conflict_zone(
        &self,
        occ: &[(ZoneId, TimeInterval)],
        gap: f64,
        ignore: Option<VehicleId>,
    ) -> Option<ZoneId> {
        occ.iter()
            .find(|(z, iv)| self.conflicts_in_zone(*z, iv, gap, ignore))
            .map(|(z, _)| *z)
    }
}

fn zid(i: usize) -> ZoneId {
    ZoneId {
        col: i as i32,
        row: 0,
    }
}

/// An op stream over both tables: bookings (durations past 18 s become
/// open-ended), releases, garbage collection.
type TableOps = (
    Vec<(u64, usize, f64, f64)>, // reserve: vehicle, zone, start, duration
    Vec<u64>,                    // release: vehicle
    Option<f64>,                 // release_before: cutoff
);

fn apply_ops(ops: &TableOps) -> (ReservationTable, RefTable) {
    let mut table = ReservationTable::new();
    let mut reference = RefTable::default();
    for (vehicle, zone, start, dur) in &ops.0 {
        let end = if *dur > 18.0 {
            f64::INFINITY
        } else {
            start + dur
        };
        let occ = vec![(zid(*zone), TimeInterval::new(*start, end))];
        table.reserve(VehicleId::new(*vehicle), &occ);
        reference.reserve(VehicleId::new(*vehicle), &occ);
    }
    for vehicle in &ops.1 {
        table.release(VehicleId::new(*vehicle));
        reference.release(VehicleId::new(*vehicle));
    }
    if let Some(t) = ops.2 {
        table.release_before(t);
        reference.release_before(t);
    }
    (table, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sorted interval table answers every conflict query exactly
    /// like the brute-force scan, and `first_blocking`'s bound is sound:
    /// every placement starting inside `[start, blocked_until]` really
    /// does conflict.
    #[test]
    fn sorted_table_matches_linear_reference(
        ops in (
            proptest::collection::vec((0u64..8, 0usize..6, 0.0..50.0f64, 0.1..25.0f64), 0..40),
            proptest::collection::vec(0u64..8, 0..4),
            (any::<bool>(), 0.0..60.0f64).prop_map(|(some, t)| some.then_some(t)),
        ),
        queries in proptest::collection::vec(
            (proptest::collection::vec((0usize..6, 0.0..60.0f64, 0.1..15.0f64), 1..4),
             0.0..3.0f64,
             (any::<bool>(), 0u64..8).prop_map(|(some, v)| some.then_some(v))),
            1..8),
    ) {
        let (table, reference) = apply_ops(&ops);
        for (occ_spec, gap, ignore) in &queries {
            let occ: Vec<(ZoneId, TimeInterval)> = occ_spec
                .iter()
                .map(|(z, s, d)| (zid(*z), TimeInterval::new(*s, s + d)))
                .collect();
            let ignore = ignore.map(VehicleId::new);
            // First conflicting entry in occupancy order (the occupancy
            // may legally list the same zone more than once).
            let hit = occ
                .iter()
                .position(|(z, iv)| reference.conflicts_in_zone(*z, iv, *gap, ignore));
            let expect = reference.first_conflict_zone(&occ, *gap, ignore);
            prop_assert_eq!(
                table.first_conflict(&occ, *gap, ignore).map(|(z, _)| z),
                expect
            );
            prop_assert_eq!(table.is_free(&occ, *gap, ignore), expect.is_none());
            if let Some(blocking) = table.first_blocking(&occ, *gap, ignore) {
                prop_assert_eq!(Some(blocking.zone), expect);
                let iv = occ[hit.expect("reference saw the conflict too")].1;
                let until = blocking.blocked_until;
                prop_assert!(until >= iv.start);
                let probes = if until.is_infinite() {
                    vec![iv.start, iv.start + 7.0, iv.start + 1000.0]
                } else {
                    (0..=4).map(|k| iv.start + (until - iv.start) * k as f64 / 4.0).collect()
                };
                for s in probes {
                    let placed = TimeInterval::new(s, s + iv.duration());
                    prop_assert!(
                        reference.conflicts_in_zone(blocking.zone, &placed, *gap, ignore),
                        "blocked_until {} claims start {} conflicts, reference disagrees",
                        until, s
                    );
                }
            }
        }
    }
}

/// Runs a request stream through a scheduler, one request per batch,
/// returning the canonical encodings of every emitted plan.
fn plans_encoded<S: Scheduler>(mut s: S, stream: &[(usize, f64, f64)]) -> Vec<Vec<u8>> {
    let mut clock = 0.0;
    let mut out = Vec::new();
    for (i, (movement, speed, gap)) in stream.iter().enumerate() {
        clock += gap;
        out.extend(
            s.schedule(&[request(i as u64, movement % 16, *speed)], clock)
                .iter()
                .map(nwade_aim::TravelPlan::encode),
        );
    }
    out
}

fn probe_config() -> SchedulerConfig {
    SchedulerConfig {
        probe: true,
        ..SchedulerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The slot-seeking search and the retained linear probe loop emit
    /// bit-identical plans for arbitrary request streams — reservation
    /// scheduler and FCFS baseline alike.
    #[test]
    fn probe_and_seek_schedule_identically(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..15)
    ) {
        let topo = topo();
        prop_assert_eq!(
            plans_encoded(
                ReservationScheduler::new(topo.clone(), SchedulerConfig::default()),
                &stream,
            ),
            plans_encoded(ReservationScheduler::new(topo.clone(), probe_config()), &stream)
        );
        prop_assert_eq!(
            plans_encoded(FcfsScheduler::new(topo.clone(), SchedulerConfig::default()), &stream),
            plans_encoded(FcfsScheduler::new(topo, probe_config()), &stream)
        );
    }

    /// The parallel first-probe pre-pass never changes the plans, and
    /// neither does the worker count.
    #[test]
    fn prepass_threads_do_not_change_plans(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64), 2..20)
    ) {
        let topo = topo();
        let batch: Vec<PlanRequest> = stream
            .iter()
            .enumerate()
            .map(|(i, (movement, speed))| request(i as u64, movement % 16, *speed))
            .collect();
        let run = |threads: usize| {
            let cfg = SchedulerConfig { threads, ..SchedulerConfig::default() };
            let mut s = ReservationScheduler::new(topo.clone(), cfg);
            s.schedule(&batch, 0.0)
                .iter()
                .map(nwade_aim::TravelPlan::encode)
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        prop_assert_eq!(run(2), serial.clone());
        prop_assert_eq!(run(8), serial);
    }

    /// Evacuation replanning is probe/seek identical too.
    #[test]
    fn evacuation_probe_and_seek_identical(
        vehicles in proptest::collection::vec(
            (0usize..16, 0.0..80.0f64, 3.0..18.0f64), 1..8),
        threat_x in -40.0..40.0f64,
        threat_y in -40.0..40.0f64,
    ) {
        let topo = topo();
        let reqs: Vec<PlanRequest> = vehicles
            .iter()
            .enumerate()
            .map(|(i, (movement, s, v))| {
                let mut r = request(i as u64, movement % 16, *v);
                r.position_s = *s;
                r
            })
            .collect();
        let threats = [Vec2::new(threat_x, threat_y)];
        let run = |cfg: SchedulerConfig| {
            EvacuationPlanner::new(topo.clone(), cfg, EvacuationConfig::default())
                .plan(&reqs, &threats, 5.0)
                .iter()
                .map(nwade_aim::TravelPlan::encode)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(SchedulerConfig::default()), run(probe_config()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reservation_scheduler_always_safe(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..15)
    ) {
        check_scheduler(
            ReservationScheduler::new(topo(), SchedulerConfig::default()),
            stream,
        );
    }

    #[test]
    fn fcfs_scheduler_always_safe(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..10)
    ) {
        check_scheduler(FcfsScheduler::new(topo(), SchedulerConfig::default()), stream);
    }

    #[test]
    fn traffic_light_scheduler_always_safe(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..10)
    ) {
        check_scheduler(
            TrafficLightScheduler::new(topo(), SchedulerConfig::default(), Default::default()),
            stream,
        );
    }
}
