//! Property tests over the scheduler's public API: every plan it emits
//! must be physically lawful and mutually safe, for arbitrary request
//! streams.

use nwade_aim::{
    find_conflicts, occupancy_of, FcfsScheduler, PlanRequest, ReservationScheduler, Scheduler,
    SchedulerConfig, TrafficLightScheduler,
};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn topo() -> Arc<Topology> {
    Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ))
}

fn request(id: u64, movement: usize, speed: f64) -> PlanRequest {
    PlanRequest {
        id: VehicleId::new(id),
        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
        movement: MovementId::new(movement as u16),
        position_s: 0.0,
        speed,
    }
}

fn check_scheduler(mut s: impl Scheduler, stream: Vec<(usize, f64, f64)>) {
    let topo = s.topology().clone();
    let v_max = SchedulerConfig::default().limits.v_max;
    let mut all = Vec::new();
    let mut clock: f64 = 0.0;
    for (i, (movement, speed, gap)) in stream.into_iter().enumerate() {
        clock += gap;
        let plans = s.schedule(&[request(i as u64, movement % 16, speed)], clock);
        all.extend(plans);
    }
    // 1. No two emitted plans conflict.
    assert!(
        find_conflicts(&all, &topo, 0.5).is_empty(),
        "scheduler emitted conflicting plans"
    );
    for plan in &all {
        // 2. Speed stays within the limit at all times.
        for i in 0..400 {
            let v = plan.profile().speed_at(i as f64 * 0.5);
            assert!(v <= v_max + 1e-6, "{}: speed {v}", plan.id());
        }
        // 3. Occupancy intervals are ordered by entry time.
        let occ = occupancy_of(topo.movement(plan.movement()), plan.profile());
        for w in occ.windows(2) {
            assert!(w[0].1.start <= w[1].1.start + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reservation_scheduler_always_safe(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..15)
    ) {
        check_scheduler(
            ReservationScheduler::new(topo(), SchedulerConfig::default()),
            stream,
        );
    }

    #[test]
    fn fcfs_scheduler_always_safe(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..10)
    ) {
        check_scheduler(FcfsScheduler::new(topo(), SchedulerConfig::default()), stream);
    }

    #[test]
    fn traffic_light_scheduler_always_safe(
        stream in proptest::collection::vec(
            (0usize..16, 5.0..22.0f64, 1.5..8.0f64), 1..10)
    ) {
        check_scheduler(
            TrafficLightScheduler::new(topo(), SchedulerConfig::default(), Default::default()),
            stream,
        );
    }
}
