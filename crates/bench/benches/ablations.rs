//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * CRT vs plain RSA signing (the manager-side speedup),
//! * Montgomery vs division-based modular exponentiation,
//! * Merkle-root packaging vs a flat batch hash,
//! * bounded chain cache verification cost vs cache depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_chain::BlockPackager;
use nwade_chain::ChainCache;
use nwade_crypto::merkle::leaf_hash;
use nwade_crypto::modular::{modpow_plain, Montgomery};
use nwade_crypto::MockScheme;
use nwade_crypto::{sha256, BigUint, MerkleTree, RsaKeyPair};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_crt_vs_plain(c: &mut Criterion) {
    let key = RsaKeyPair::generate(2048, &mut StdRng::seed_from_u64(1));
    let digest = sha256(b"block digest");
    let mut group = c.benchmark_group("ablation_rsa_signing");
    group.sample_size(10);
    group.bench_function("crt", |b| b.iter(|| key.sign_digest(&digest)));
    group.bench_function("plain", |b| b.iter(|| key.sign_digest_plain(&digest)));
    group.finish();
}

fn bench_montgomery_vs_plain(c: &mut Criterion) {
    // 1024-bit odd modulus and operands.
    let mut rng = StdRng::seed_from_u64(2);
    let m = {
        let p = nwade_crypto::prime::gen_prime(512, 8, &mut rng);
        let q = nwade_crypto::prime::gen_prime(512, 8, &mut rng);
        &p * &q
    };
    let base = BigUint::from_u64(0xdead_beef);
    let exp = nwade_crypto::prime::random_with_bits(&mut rng, 512);
    let mut group = c.benchmark_group("ablation_modpow");
    group.sample_size(10);
    group.bench_function("montgomery", |b| {
        b.iter(|| Montgomery::new(&m).modpow(&base, &exp))
    });
    group.bench_function("division", |b| b.iter(|| modpow_plain(&base, &exp, &m)));
    group.finish();
}

fn bench_merkle_vs_flat(c: &mut Criterion) {
    let payloads: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("travel-plan-{i}").repeat(8).into_bytes())
        .collect();
    let mut group = c.benchmark_group("ablation_batch_hash");
    group.bench_function("merkle_root", |b| {
        b.iter(|| MerkleTree::from_leaves(&payloads).root())
    });
    group.bench_function("flat_hash", |b| {
        b.iter(|| {
            let mut h = nwade_crypto::Sha256::new();
            for p in &payloads {
                h.update(p);
            }
            h.finalize()
        })
    });
    // The Merkle tree's extra cost buys per-plan proofs; measure one.
    let tree = MerkleTree::from_leaves(&payloads);
    group.bench_function("merkle_prove_and_verify", |b| {
        b.iter(|| {
            let proof = tree.prove(17);
            assert!(proof.verify(&leaf_hash(&payloads[17]), &tree.root()));
        })
    });
    group.finish();
}

fn bench_cache_depth(c: &mut Criterion) {
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    let mut group = c.benchmark_group("ablation_cache_depth");
    group.sample_size(10);
    for depth in [10usize, 60, 200] {
        // Build a chain of `depth` single-plan blocks.
        let scheme = Arc::new(MockScheme::from_seed(3));
        let mut packager = BlockPackager::new(scheme);
        let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        let mut cache = ChainCache::new(depth);
        for i in 0..depth as u64 {
            let plans = scheduler.schedule(
                &[PlanRequest {
                    id: VehicleId::new(i),
                    descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(i)),
                    movement: MovementId::new(((i * 7) % 16) as u16),
                    position_s: 0.0,
                    speed: 15.0,
                }],
                i as f64 * 4.0,
            );
            let block = packager.package(plans, i as f64);
            cache.append(block).expect("chains");
        }
        group.bench_with_input(
            BenchmarkId::new("current_plans_scan", depth),
            &cache,
            |b, cache| b.iter(|| cache.current_plans().len()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crt_vs_plain,
    bench_montgomery_vs_plain,
    bench_merkle_vs_flat,
    bench_cache_depth
);
criterion_main!(benches);
