//! Fig. 6 micro-benchmarks: block packaging and verification with the
//! paper's cryptography (SHA-256 + RSA-2048), per intersection type and
//! batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwade::verify::block::verify_incoming_block;
use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig, TravelPlan};
use nwade_chain::{BlockPackager, ChainCache};
use nwade_crypto::{RsaKeyPair, RsaScheme};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn scheduled_batch(topo: &Arc<Topology>, n: usize) -> Vec<TravelPlan> {
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
    let n_mv = topo.movements().len();
    (0..n)
        .flat_map(|i| {
            scheduler.schedule(
                &[PlanRequest {
                    id: VehicleId::new(i as u64),
                    descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(i as u64)),
                    movement: MovementId::new(((i * 7) % n_mv) as u16),
                    position_s: 0.0,
                    speed: 15.0,
                }],
                i as f64 * 3.0,
            )
        })
        .collect()
}

fn bench_chain_ops(c: &mut Criterion) {
    let key = Arc::new(RsaScheme::new(RsaKeyPair::generate(
        2048,
        &mut StdRng::seed_from_u64(42),
    )));
    let mut group = c.benchmark_group("fig6_chain_ops");
    group.sample_size(20);
    for kind in [
        IntersectionKind::FourWayCross,
        IntersectionKind::ThreeWayRoundabout,
    ] {
        // 120 veh/min at a 1 s window: 2 plans; plus a larger 10-plan batch.
        for batch in [2usize, 10] {
            let topo = Arc::new(build(kind, &GeometryConfig::default()));
            let plans = scheduled_batch(&topo, batch);
            group.bench_with_input(
                BenchmarkId::new(format!("package/{kind}"), batch),
                &plans,
                |b, plans| {
                    b.iter(|| {
                        let mut packager = BlockPackager::new(key.clone());
                        packager.package(plans.clone(), 0.0)
                    })
                },
            );
            let mut packager = BlockPackager::new(key.clone());
            let block = packager.package(plans.clone(), 0.0);
            // Fresh cache per iteration: the full (uncached) Algorithm 1
            // cost, dominated by the RSA signature check.
            group.bench_with_input(
                BenchmarkId::new(format!("verify/{kind}"), batch),
                &block,
                |b, block| {
                    b.iter(|| {
                        let mut cache = ChainCache::new(60);
                        verify_incoming_block(
                            block,
                            &mut cache,
                            key.as_ref(),
                            &topo,
                            0.5,
                            &Default::default(),
                        )
                        .expect("honest block verifies")
                    })
                },
            );
            // Shared cache: re-verifying a block already seen hits the
            // digest memo and pays only the Merkle-root recheck.
            let mut cache = ChainCache::new(60);
            group.bench_with_input(
                BenchmarkId::new(format!("verify_cached/{kind}"), batch),
                &block,
                |b, block| {
                    b.iter(|| {
                        verify_incoming_block(
                            block,
                            &mut cache,
                            key.as_ref(),
                            &topo,
                            0.5,
                            &Default::default(),
                        )
                        .expect("honest block verifies")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chain_ops);
criterion_main!(benches);
