//! Chaos benches: end-to-end detection rounds over a faulty channel, and
//! an IM outage/recovery round. Measures how much wall-clock the fault
//! machinery (duplication, jitter re-sorting, burst-loss state, invariant
//! checking) adds to a simulation round.

use criterion::{criterion_group, criterion_main, Criterion};
use nwade::attack::{AttackSetting, ViolationKind};
use nwade_sim::{AttackPlan, ImOutage, SimConfig, Simulation};
use nwade_vanet::FaultModel;

fn attacked(seed: u64) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 90.0;
    config.density = 60.0;
    config.seed = seed;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 40.0,
    });
    config
}

fn bench_faulty_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_round");
    group.sample_size(10);
    for intensity in [0.0, 0.1, 0.3] {
        group.bench_function(format!("v1_intensity_{intensity:.1}"), |b| {
            b.iter(|| {
                let mut config = attacked(9);
                config.medium.faults = FaultModel::at_intensity(intensity);
                let report = Simulation::new(config).run();
                assert!(report.metrics.invariants.is_clean());
                report
            })
        });
    }
    group.finish();
}

fn bench_outage_recovery_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_outage");
    group.sample_size(10);
    group.bench_function("im_outage_20s_recovery", |b| {
        b.iter(|| {
            let mut config = attacked(41);
            config.duration = 150.0;
            config.density = 80.0;
            config.attack = Some(AttackPlan {
                setting: AttackSetting::V1,
                violation: ViolationKind::SuddenStop,
                start: 50.0,
            });
            config.im_outage = Some(ImOutage {
                start: 50.0,
                duration: 20.0,
            });
            let report = Simulation::new(config).run();
            assert!(report.metrics.invariants.is_clean());
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_faulty_round, bench_outage_recovery_round);
criterion_main!(benches);
