//! Figs. 4/5 benches: the local-verification hot path and a full
//! end-to-end V1 detection round.

use criterion::{criterion_group, criterion_main, Criterion};
use nwade::attack::{AttackSetting, ViolationKind};
use nwade::messages::Observation;
use nwade::verify::local::local_verify;
use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_sim::{AttackPlan, SimConfig, Simulation};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_local_verify(c: &mut Criterion) {
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
    let plan = scheduler
        .schedule(
            &[PlanRequest {
                id: VehicleId::new(0),
                descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(0)),
                movement: MovementId::new(0),
                position_s: 0.0,
                speed: 15.0,
            }],
            0.0,
        )
        .remove(0);
    let (pos, speed) = plan.expected_state(&topo, 8.0);
    let obs = Observation {
        target: VehicleId::new(0),
        position: pos,
        speed,
        time: 8.0,
    };
    c.bench_function("fig5_local_verify", |b| {
        b.iter(|| local_verify(&plan, &topo, &obs, 5.0, 3.0))
    });
}

fn bench_detection_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_detection_round");
    group.sample_size(10);
    group.bench_function("v1_sudden_stop_90s", |b| {
        b.iter(|| {
            let mut config = SimConfig::default();
            config.duration = 90.0;
            config.density = 60.0;
            config.attack = Some(AttackPlan {
                setting: AttackSetting::V1,
                violation: ViolationKind::SuddenStop,
                start: 40.0,
            });
            let report = Simulation::new(config).run();
            assert!(report.violation_detected());
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_local_verify, bench_detection_round);
criterion_main!(benches);
