//! Fig. 7 bench: one simulated minute of traffic, measuring wall time and
//! (via asserts) the expected packet-class mix.

use criterion::{criterion_group, criterion_main, Criterion};
use nwade::messages::class;
use nwade_sim::{SimConfig, Simulation};

fn bench_network_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_network_load");
    group.sample_size(10);
    group.bench_function("no_attack_60s", |b| {
        b.iter(|| {
            let mut config = SimConfig::default();
            config.duration = 60.0;
            let report = Simulation::new(config).run();
            let stats = &report.metrics.network;
            assert!(stats.class(class::BLOCK).transmissions > 0);
            assert_eq!(stats.class(class::GLOBAL_REPORT).transmissions, 0);
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network_load);
criterion_main!(benches);
