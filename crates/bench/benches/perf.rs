//! Tick-engine microbenchmarks: per-tick and per-sense-pass cost over a
//! prespawned fleet for each execution variant. The full density sweep
//! (and the committed baseline) lives in `expgen perf`; this bench is
//! the quick interactive view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwade_bench::perf::{fleet_config, VARIANTS};
use nwade_sim::{EngineChoice, SignatureChoice, Simulation};

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_tick");
    group.sample_size(20);
    for &(variant, engine, spatial_index) in &VARIANTS {
        for density in [100usize, 400] {
            let mut sim = Simulation::new(fleet_config(engine, spatial_index));
            sim.prespawn_fleet(density);
            group.bench_function(BenchmarkId::new(variant, density), |b| {
                b.iter(|| sim.tick_once())
            });
        }
    }
    group.finish();
}

fn bench_sense(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_sense");
    group.sample_size(20);
    for &(variant, engine, spatial_index) in &VARIANTS {
        let mut sim = Simulation::new(fleet_config(engine, spatial_index));
        sim.prespawn_fleet(400);
        group.bench_function(BenchmarkId::new(variant, 400usize), |b| {
            b.iter(|| sim.force_sense_pass())
        });
    }
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_window");
    group.sample_size(20);
    // Slot-seeking vs the retained linear probe loop, same fleet — the
    // schedulers produce identical plans either way, so this measures
    // pure search cost.
    for (label, probe) in [("seek", false), ("probe", true)] {
        for density in [100usize, 400] {
            let mut config = fleet_config(EngineChoice::Serial, true);
            config.probe_scheduler = probe;
            let mut sim = Simulation::new(config);
            sim.prespawn_fleet(density);
            group.bench_function(BenchmarkId::new(label, density), |b| {
                b.iter(|| {
                    sim.enqueue_plan_requests(usize::MAX);
                    sim.force_process_window();
                })
            });
        }
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_pipeline");
    group.sample_size(10);
    // Sequential vs pipelined window engine with real RSA signing, where
    // the overlap between window N's sign/package and window N+1's
    // prepare pass actually buys wall-clock time.
    for (label, pipelined) in [("seq", false), ("pipe", true)] {
        for density in [100usize, 400] {
            let mut config = fleet_config(EngineChoice::Serial, true);
            config.signature = SignatureChoice::Rsa { bits: 1024 };
            let mut sim = Simulation::new(config);
            sim.prespawn_fleet(density);
            group.bench_function(BenchmarkId::new(label, density), |b| {
                b.iter(|| sim.bench_window_throughput(4, pipelined))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tick,
    bench_sense,
    bench_window,
    bench_pipeline
);
criterion_main!(benches);
