//! Fig. 8 bench: scheduler throughput with and without NWADE, plus the
//! baseline schedulers for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwade_sim::{SchedulerChoice, SimConfig, Simulation};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_throughput");
    group.sample_size(10);
    for (label, nwade_enabled) in [("with_nwade", true), ("without_nwade", false)] {
        group.bench_with_input(
            BenchmarkId::new("reservation_60s", label),
            &nwade_enabled,
            |b, &enabled| {
                b.iter(|| {
                    let mut config = SimConfig::default();
                    config.duration = 60.0;
                    config.nwade_enabled = enabled;
                    let report = Simulation::new(config).run();
                    assert!(report.metrics.exited > 0);
                    report
                })
            },
        );
    }
    for (label, scheduler) in [
        ("reservation", SchedulerChoice::Reservation),
        ("fcfs", SchedulerChoice::Fcfs),
        ("light", SchedulerChoice::TrafficLight),
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheduler_60s", label),
            &scheduler,
            |b, &scheduler| {
                b.iter(|| {
                    let mut config = SimConfig::default();
                    config.duration = 60.0;
                    config.scheduler = scheduler;
                    Simulation::new(config).run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
