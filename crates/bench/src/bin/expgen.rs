//! `expgen`: regenerates every table and figure of the NWADE paper.
//!
//! ```text
//! cargo run --release -p nwade-bench --bin expgen -- all
//! cargo run --release -p nwade-bench --bin expgen -- table2 fig4
//! NWADE_ROUNDS=3 NWADE_DURATION=120 cargo run --release -p nwade-bench --bin expgen -- fig8
//! ```

use nwade_bench::{
    analytic, chaos, city, detect, duration, fig4, fig5, fig6, fig7, fig8, perf, recovery, rounds,
    sensing, table1, table2, violations,
};

const EXPERIMENTS: [&str; 16] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "eq2",
    "eq3",
    "sensing",
    "violations",
    "chaos",
    "recovery",
    "perf",
    "detect",
    "city",
];

fn run(name: &str) -> Result<(), String> {
    let r = rounds();
    let d = duration();
    let out = match name {
        "table1" => table1::report(),
        "table2" => table2::report(r, d),
        "fig4" => fig4::report(r, d),
        "fig5" => fig5::report(r, d),
        "fig6" => fig6::report(),
        "fig7" => fig7::report(d, 7),
        "fig8" => fig8::report(r.min(3), d),
        "eq2" => analytic::eq2_report(),
        "eq3" => analytic::eq3_report(),
        "sensing" => sensing::report(r, d),
        "violations" => violations::report(r, d),
        "chaos" => chaos::report(r, d),
        "recovery" => recovery::report(r, d),
        "perf" => perf::report(),
        "detect" => detect::report(),
        "city" => city::report(),
        // Not in EXPERIMENTS (and so not in `all`): the guards compare
        // against committed baselines, so running them right after the
        // generating experiment rewrote those baselines would be
        // vacuous.
        "perf-guard" => perf::guard()?,
        "detect-guard" => detect::guard()?,
        "city-guard" => city::guard()?,
        other => return Err(format!("unknown experiment '{other}'")),
    };
    println!("{out}");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: expgen <experiment>...\n  experiments: {} | all | perf-guard | detect-guard | city-guard\n  env: NWADE_ROUNDS (default 10), NWADE_DURATION (default 150)",
            EXPERIMENTS.join(" | ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        if let Err(e) = run(name) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
