//! The analytic models: Eq. 2 (detection probability) and Eq. 3
//! (self-evacuation probability), including the paper's worked example.

use crate::table::render;
use nwade::prob::{detection_probability, majority_quorum, self_evacuation_probability};

/// Renders the Eq. 2 sweep: P_d over the number of colluders.
pub fn eq2_report() -> String {
    let omega = 4.0;
    let body: Vec<Vec<String>> = [0.1, 0.3, 0.5]
        .iter()
        .flat_map(|&p_v| {
            (1..=10).step_by(3).map(move |k| {
                vec![
                    format!("{p_v:.1}"),
                    k.to_string(),
                    format!("{:.4}", detection_probability(k, p_v, omega)),
                ]
            })
        })
        .collect();
    format!(
        "Eq. 2: Detection probability P_d = exp(-ω·k·p_v^k), ω = {omega}\n{}",
        render(&["p_v", "k", "P_d"], &body)
    )
}

/// Renders the Eq. 3 sweep plus the paper's worked example.
pub fn eq3_report() -> String {
    let p_im = 0.001;
    let p_v_loc = 0.1;
    let body: Vec<Vec<String>> = (1..=15)
        .step_by(2)
        .map(|k| {
            vec![
                k.to_string(),
                format!("{:.6}", self_evacuation_probability(p_im, p_v_loc, k)),
            ]
        })
        .collect();
    let quorum = majority_quorum(20);
    format!(
        "Eq. 3: Self-evacuation probability, p_im = {p_im}, p_v·p_loc = {p_v_loc}\n{}\n\
         Worked example (§IV-B4): 20 vehicles in range → quorum k = {quorum}, \
         P_e = {:.4}%\n",
        render(&["k", "P_e"], &body),
        self_evacuation_probability(p_im, p_v_loc, quorum as u32) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render_with_expected_anchors() {
        assert!(eq2_report().contains("P_d"));
        let e3 = eq3_report();
        assert!(e3.contains("quorum k = 11"));
        assert!(e3.contains("0.1"));
    }
}
