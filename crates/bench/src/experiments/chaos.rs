//! Chaos sweep: detection robustness as a function of channel fault
//! intensity. Not a paper figure — this is the repo's own robustness
//! harness. Each intensity point layers duplication, latency jitter,
//! payload corruption, and Gilbert–Elliott burst loss (via
//! [`FaultModel::at_intensity`]) under a V1 sudden-stop attack and
//! measures what survives: detection rate, detection latency, spurious
//! `ImTimeout` evacuations among the honest fleet (chaos-induced false
//! alarms), and tick-time safety-invariant violations, which must stay at
//! zero at every intensity.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade_sim::run_rounds;
use nwade_vanet::FaultModel;

/// Fault intensities swept (0 = clean channel control).
pub const INTENSITIES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Detection rate of the V1 violation.
    pub detection_rate: f64,
    /// Mean detection latency, seconds.
    pub latency_s: Option<f64>,
    /// Mean spurious (chaos-induced) `ImTimeout` self-evacuations per
    /// round — the price of lost dismissals, not of real attacks.
    pub spurious_evacuations: f64,
    /// Mean outage/evacuation recoveries per round (evacuees re-admitted
    /// by a fresh verified block).
    pub readmissions: f64,
    /// Total safety-invariant violations across all rounds (must be 0).
    pub invariant_violations: usize,
    /// Mean throughput, vehicles/minute.
    pub throughput: f64,
}

/// Runs the sweep.
pub fn points(rounds: u64, duration: f64) -> Vec<Point> {
    INTENSITIES
        .iter()
        .map(|&intensity| {
            let mut config = with_attack(base_config(duration), AttackSetting::V1);
            config.medium.faults = FaultModel::at_intensity(intensity);
            let summary = run_rounds(&config, rounds);
            let n = summary.rounds.len().max(1) as f64;
            Point {
                intensity,
                detection_rate: summary.detection_rate(),
                latency_s: summary.mean_detection_latency(),
                spurious_evacuations: summary
                    .rounds
                    .iter()
                    .map(|r| r.metrics.im_timeout_evacuations as f64)
                    .sum::<f64>()
                    / n,
                readmissions: summary
                    .rounds
                    .iter()
                    .map(|r| r.metrics.readmitted_after_outage as f64)
                    .sum::<f64>()
                    / n,
                invariant_violations: summary
                    .rounds
                    .iter()
                    .map(|r| r.metrics.invariants.total())
                    .sum(),
                throughput: summary.mean_throughput(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn report(rounds: u64, duration: f64) -> String {
    let body: Vec<Vec<String>> = points(rounds, duration)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.intensity),
                format!("{:.0}%", p.detection_rate * 100.0),
                p.latency_s.map_or("n/a".into(), |l| format!("{:.2} s", l)),
                format!("{:.1}", p.spurious_evacuations),
                format!("{:.1}", p.readmissions),
                format!("{}", p.invariant_violations),
                format!("{:.1}/min", p.throughput),
            ]
        })
        .collect();
    format!(
        "Chaos sweep: fault intensity vs detection, V1 attack ({rounds} rounds/point)\n{}",
        render(
            &[
                "Intensity",
                "Detection",
                "Mean latency",
                "Spurious evac",
                "Readmitted",
                "Invariant viol.",
                "Throughput",
            ],
            &body
        )
    )
}
