//! City-scale shard throughput: aggregate plan-scheduling rate of a
//! sharded multi-intersection grid versus one monolithic intersection.
//!
//! The sweep holds the **total** city demand *and the road geometry*
//! fixed and splits the fleet across 1 → 16 ring-linked shards, so
//! every cell schedules the same vehicles over the same road lengths —
//! what changes is how many managers carry the load, and therefore how
//! congested each one's approaches are. Scheduling cost is driven by
//! the queue pressing each intersection's box — the committed
//! `BENCH_perf.json` saturation sweep shows window latency growing far
//! faster than batch size once arrivals compress (1000 → 2000 requests
//! on the same approaches quadruples it), so dividing a saturated
//! intersection's queue across N shards cuts aggregate window cost
//! superlinearly — even on a single-core host. On multi-core hosts the shard fan-out
//! adds real parallelism on top; `host_threads` is recorded in the
//! header so the two effects are never conflated.
//!
//! Each cell prespawns `total / shards` vehicles per shard, warms up,
//! then runs measured rounds of "enqueue every plan request, tick
//! through one processing window", followed by a short untimed drain
//! through the cross-shard anchor audit. The prespawned bench fleet
//! fills the approaches from far upstream, so boundary traffic barely
//! moves inside the timed seconds; actual handoff flow is measured by a
//! separate deterministic **flow probe** — a 3-shard ring under normal
//! arrival demand run long enough for vehicles to cross between shards
//! — whose handoff counts are bit-reproducible and re-checked exactly
//! by the guard.
//!
//! `report()` writes `BENCH_city.json` at the repo root (hand-rolled
//! JSON lines — the workspace has no JSON dependency). `guard()`
//! re-measures every committed cell and fails on a >2× per-tick p99
//! regression, on an aggregate-throughput speedup that collapsed below
//! half the committed scaling, on a flow probe that stopped reproducing
//! its committed handoff counts, or on any anchor mismatch.

use std::time::Instant;

use nwade_sim::{CityConfig, CityGrid, SignatureChoice, SimConfig};

use super::perf::host_threads;

/// Shard counts swept; demand per shard is [`TOTAL_DEMAND`]` / shards`.
pub const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Total vehicles prespawned across the whole city, every cell. Sized
/// to just fit one intersection's standard 2100 m approaches: the
/// 1-shard cell is a near-saturated single manager (its queue reaches
/// almost to the box), yet stays below the pressed regime where
/// scheduler wall time turns unstable run-to-run.
pub const TOTAL_DEMAND: usize = 1800;

/// Ticks run before measurement starts.
const WARMUP_TICKS: usize = 5;

/// Measured rounds per cell; each spans one processing window.
const ROUNDS: usize = 3;

/// Ticks per round — one window interval (1 s at dt = 0.1 s).
const TICKS_PER_ROUND: usize = 10;

/// Post-measurement drain ticks: flushes the last window's blocks
/// through the cross-shard anchor audit before mismatches are read.
const DRAIN_TICKS: u64 = 50;

/// Flow-probe shape: shards, arrival density (veh/h), simulated
/// duration, and ticks run. 700 ticks is long enough for the first
/// admitted vehicles to cross a shard, ride a ring link, and re-admit
/// at the neighbour.
const PROBE_SHARDS: usize = 3;
const PROBE_DENSITY: f64 = 60.0;
const PROBE_DURATION: f64 = 40.0;
const PROBE_SEED: u64 = 11;
const PROBE_TICKS: u64 = 700;

/// One measured shard-count cell.
#[derive(Debug, Clone)]
pub struct CityPoint {
    /// Shards in the ring.
    pub shards: usize,
    /// Vehicles requested per shard (`TOTAL_DEMAND / shards`).
    pub per_shard: usize,
    /// Vehicles actually placed city-wide by `prespawn_fleet`.
    pub placed: usize,
    /// Plans sealed during the measured rounds.
    pub plans: usize,
    /// Aggregate scheduling throughput: plans per wall-clock second.
    pub plans_per_sec: f64,
    /// Median wall-clock per city tick over the measured rounds, ms.
    pub tick_p50_ms: f64,
    /// p99 wall-clock per city tick — the window-bearing ticks, ms.
    pub tick_p99_ms: f64,
    /// Boundary crossings observed by the end of the drain.
    pub handoffs: usize,
    /// Anchor-audit mismatches by the end of the drain — must be 0.
    pub anchor_mismatches: usize,
}

/// Base shard config for the city sweep: the perf fleet idiom — mock
/// signatures, arrivals disabled (the fleet is prespawned), short
/// sensing radius. The approaches are sized once, from the **total**
/// city demand, and stay identical across every shard count: the sweep
/// compares managers over the *same roads*. In the 1-shard cell the
/// whole city fleet queues up to the single intersection's box — the
/// saturated-intersection baseline the paper's city-scale argument
/// starts from — while sharding both shortens each manager's queue and
/// moves its head away from the box, which is precisely the relief a
/// multi-intersection deployment buys.
pub fn city_base_config(total: usize) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.density = 0.001;
    config.seed = 7;
    config.signature = SignatureChoice::Mock;
    config.spatial_index = true;
    config.nwade.sensing_radius = 60.0;
    // 8 m prespawn spacing over the 4-way cross's 8 approach lanes:
    // the whole city demand must fit on one shard in the 1-shard cell.
    let needed = 8.0 * total as f64 / 8.0 + 120.0;
    config.geometry.approach_len = 2100.0f64.max(needed);
    config
}

/// Measures one shard-count cell on a fresh city with `total` vehicles
/// split evenly across the shards.
pub fn measure_city(shards: usize, total: usize) -> CityPoint {
    let per_shard = (total / shards).max(1);
    let config = CityConfig::ring(shards, city_base_config(total));
    config.validate().expect("city bench config valid");
    let mut city = CityGrid::new(config);
    let mut placed = 0;
    for shard in city.shards_mut() {
        placed += shard.prespawn_fleet(per_shard);
    }
    for _ in 0..WARMUP_TICKS {
        city.tick();
    }

    let plans_before = city.report().plans_scheduled;
    let mut tick_ms: Vec<f64> = Vec::with_capacity(ROUNDS * TICKS_PER_ROUND);
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for shard in city.shards_mut() {
            let _ = shard.enqueue_plan_requests(usize::MAX);
        }
        for _ in 0..TICKS_PER_ROUND {
            let t0 = Instant::now();
            city.tick();
            tick_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let plans = city.report().plans_scheduled.saturating_sub(plans_before);

    // Untimed drain: flush the last window's blocks through the
    // cross-shard anchor audit before reading the mismatch counter.
    city.run_ticks(DRAIN_TICKS);
    city.check_conservation().expect("city conserves vehicles");
    let report = city.report();

    tick_ms.sort_by(f64::total_cmp);
    let pct = |q: f64| tick_ms[((tick_ms.len() - 1) as f64 * q).round() as usize];
    CityPoint {
        shards,
        per_shard,
        placed,
        plans,
        plans_per_sec: if wall > 0.0 { plans as f64 / wall } else { 0.0 },
        tick_p50_ms: pct(0.5),
        tick_p99_ms: pct(0.99),
        handoffs: report.handoffs,
        anchor_mismatches: report.anchor_mismatches,
    }
}

/// Runs the shard-count sweep at the fixed [`TOTAL_DEMAND`].
pub fn sweep() -> Vec<CityPoint> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| measure_city(shards, TOTAL_DEMAND))
        .collect()
}

/// Deterministic boundary-flow measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowProbe {
    /// Vehicles handed off onto ring links.
    pub handoffs: usize,
    /// Vehicles re-admitted at a neighbour.
    pub handoffs_in: usize,
    /// Mean boundary re-admission latency, simulated seconds.
    pub boundary_latency_s: Option<f64>,
    /// Anchor-audit mismatches — must be 0.
    pub anchor_mismatches: usize,
}

/// Runs the flow probe: a [`PROBE_SHARDS`]-shard ring under normal
/// arrival demand, long enough for vehicles to cross shard boundaries.
/// The city is bit-reproducible, so the counts are exact — the guard
/// compares them for equality, not within a tolerance.
pub fn measure_flow_probe() -> FlowProbe {
    let mut base = SimConfig::default();
    base.duration = PROBE_DURATION;
    base.density = PROBE_DENSITY;
    base.seed = PROBE_SEED;
    let mut city = CityGrid::new(CityConfig::ring(PROBE_SHARDS, base));
    city.run_ticks(PROBE_TICKS);
    city.check_conservation().expect("probe conserves vehicles");
    let report = city.report();
    FlowProbe {
        handoffs: report.handoffs,
        handoffs_in: report.per_shard.iter().map(|s| s.handoffs_in).sum(),
        boundary_latency_s: report.boundary_latency,
        anchor_mismatches: report.anchor_mismatches,
    }
}

/// Aggregate-throughput speedup of `point` over the 1-shard cell.
fn speedup_vs_one(points: &[CityPoint], point: &CityPoint) -> Option<f64> {
    points
        .iter()
        .find(|p| p.shards == 1)
        .filter(|base| base.plans_per_sec > 0.0)
        .map(|base| point.plans_per_sec / base.plans_per_sec)
}

/// Serialises the sweep and the flow probe: a header object, one cell
/// per line, then the probe line.
pub fn to_json(points: &[CityPoint], probe: &FlowProbe) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"nwade-city-v1\",\"host_threads\":{},\"total_demand\":{TOTAL_DEMAND},\
         \"warmup_ticks\":{WARMUP_TICKS},\"rounds\":{ROUNDS},\"ticks_per_round\":{TICKS_PER_ROUND},\
         \"drain_ticks\":{DRAIN_TICKS}}}\n",
        host_threads()
    ));
    for p in points {
        let speedup = speedup_vs_one(points, p).unwrap_or(1.0);
        out.push_str(&format!(
            "{{\"shards\":{},\"per_shard\":{},\"placed\":{},\"plans\":{},\
             \"plans_per_sec\":{:.1},\"tick_p50_ms\":{:.4},\"tick_p99_ms\":{:.4},\
             \"speedup_vs_1\":{:.3},\"efficiency\":{:.3},\"handoffs\":{},\
             \"anchor_mismatches\":{}}}\n",
            p.shards,
            p.per_shard,
            p.placed,
            p.plans,
            p.plans_per_sec,
            p.tick_p50_ms,
            p.tick_p99_ms,
            speedup,
            speedup / p.shards as f64,
            p.handoffs,
            p.anchor_mismatches,
        ));
    }
    out.push_str(&format!(
        "{{\"probe\":\"flow\",\"probe_shards\":{PROBE_SHARDS},\"probe_ticks\":{PROBE_TICKS},\
         \"handoffs\":{},\"handoffs_in\":{},\"boundary_latency_s\":{},\
         \"anchor_mismatches\":{}}}\n",
        probe.handoffs,
        probe.handoffs_in,
        probe
            .boundary_latency_s
            .map_or_else(|| "null".into(), |l| format!("{l:.3}")),
        probe.anchor_mismatches,
    ));
    out
}

/// Path of the committed baseline at the repository root.
pub fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_city.json")
}

fn render(points: &[CityPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let speedup =
                speedup_vs_one(points, p).map_or_else(|| "-".into(), |s| format!("{s:.2}x"));
            vec![
                p.shards.to_string(),
                p.placed.to_string(),
                p.plans.to_string(),
                format!("{:.1}", p.plans_per_sec),
                speedup,
                format!("{:.4}", p.tick_p50_ms),
                format!("{:.4}", p.tick_p99_ms),
                p.handoffs.to_string(),
                p.anchor_mismatches.to_string(),
            ]
        })
        .collect();
    crate::table::render(
        &[
            "shards",
            "placed",
            "plans",
            "plans/s",
            "speedup",
            "tick p50 ms",
            "tick p99 ms",
            "handoffs",
            "anchor miss",
        ],
        &rows,
    )
}

/// Runs the sweep and the flow probe, rewrites `BENCH_city.json`, and
/// renders the table.
pub fn report() -> String {
    let points = sweep();
    let probe = measure_flow_probe();
    let json = to_json(&points, &probe);
    let path = baseline_path();
    let status = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline written to {}", path.display()),
        Err(e) => format!("WARNING: could not write {}: {e}", path.display()),
    };
    format!(
        "City shard scaling ({} hardware threads, {TOTAL_DEMAND} vehicles total per cell)\n{}\n\
         Flow probe ({PROBE_SHARDS}-shard ring, {PROBE_TICKS} ticks): \
         {} handoffs out, {} re-admitted, boundary latency {}, {} anchor mismatches\n{status}",
        host_threads(),
        render(&points),
        probe.handoffs,
        probe.handoffs_in,
        probe
            .boundary_latency_s
            .map_or_else(|| "-".into(), |l| format!("{l:.1} s")),
        probe.anchor_mismatches,
    )
}

fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// One parsed baseline cell.
struct CommittedCell {
    shards: usize,
    p99_ms: f64,
    plans_per_sec: f64,
    anchor_mismatches: usize,
}

/// Regression gate: re-measures every shard count in the committed
/// baseline and fails when
///
/// * a cell's per-tick p99 regressed by more than 2×,
/// * the aggregate-throughput speedup of any multi-shard cell over the
///   1-shard cell fell below **half** its committed value (the
///   shard-scaling efficiency floor),
/// * the flow probe no longer reproduces its committed handoff counts
///   exactly (the probe is deterministic — any drift is a real
///   behaviour change, not noise), or
/// * any anchor-audit mismatch shows up — in the fresh runs or in the
///   committed baseline itself.
///
/// Timing gates get one spike-tolerance retry (best of two) before a
/// cell is declared regressed; the anchor gate is deterministic and
/// gets none.
///
/// # Errors
///
/// Returns a description of the missing/corrupt baseline or the list of
/// regressed cells.
pub fn guard() -> Result<String, String> {
    let path = baseline_path();
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (generate it with `expgen city` and commit it)",
            path.display()
        )
    })?;
    let mut cells = Vec::new();
    for line in committed.lines().filter(|l| l.contains("\"shards\"")) {
        cells.push(CommittedCell {
            shards: json_num(line, "shards")
                .ok_or_else(|| format!("baseline line missing shards: {line}"))?
                as usize,
            p99_ms: json_num(line, "tick_p99_ms")
                .ok_or_else(|| format!("baseline line missing tick_p99_ms: {line}"))?,
            plans_per_sec: json_num(line, "plans_per_sec")
                .ok_or_else(|| format!("baseline line missing plans_per_sec: {line}"))?,
            anchor_mismatches: json_num(line, "anchor_mismatches")
                .ok_or_else(|| format!("baseline line missing anchor_mismatches: {line}"))?
                as usize,
        });
    }
    if cells.is_empty() {
        return Err(format!("no result lines found in {}", path.display()));
    }

    let mut failures = Vec::new();
    for cell in &cells {
        if cell.anchor_mismatches != 0 {
            failures.push(format!(
                "committed baseline records {} anchor mismatches at {} shards — \
                 regenerate it from a clean run",
                cell.anchor_mismatches, cell.shards
            ));
        }
    }

    let mut fresh: Vec<CityPoint> = cells
        .iter()
        .map(|c| measure_city(c.shards, TOTAL_DEMAND))
        .collect();

    // p99 gate, with one spike-tolerance retry per regressed cell.
    for (cell, point) in cells.iter().zip(fresh.iter_mut()) {
        let ratio_of = |f: f64| {
            if cell.p99_ms > 0.0 {
                f / cell.p99_ms
            } else {
                1.0
            }
        };
        let mut ratio = ratio_of(point.tick_p99_ms);
        if ratio > 2.0 {
            let retry = measure_city(cell.shards, TOTAL_DEMAND);
            point.tick_p99_ms = point.tick_p99_ms.min(retry.tick_p99_ms);
            point.plans_per_sec = point.plans_per_sec.max(retry.plans_per_sec);
            ratio = ratio_of(point.tick_p99_ms);
        }
        if ratio > 2.0 {
            failures.push(format!(
                "{} shards: tick p99 {:.4} ms -> {:.4} ms ({ratio:.2}x)",
                cell.shards, cell.p99_ms, point.tick_p99_ms
            ));
        }
        if point.anchor_mismatches != 0 {
            failures.push(format!(
                "{} shards: {} anchor mismatches in the fresh run",
                cell.shards, point.anchor_mismatches
            ));
        }
    }

    // Scaling-efficiency floor: the speedup each committed multi-shard
    // cell shows over the 1-shard cell must survive at half strength.
    let committed_base = cells
        .iter()
        .find(|c| c.shards == 1)
        .map(|c| c.plans_per_sec);
    let fresh_base = fresh
        .iter()
        .find(|p| p.shards == 1)
        .map(|p| p.plans_per_sec);
    if let (Some(cb), Some(fb)) = (committed_base, fresh_base) {
        for (cell, point) in cells.iter().zip(fresh.iter_mut()) {
            if cell.shards == 1 || cb <= 0.0 || fb <= 0.0 {
                continue;
            }
            let committed_speedup = cell.plans_per_sec / cb;
            let mut fresh_speedup = point.plans_per_sec / fb;
            if fresh_speedup < committed_speedup * 0.5 {
                // Same spike-tolerance policy as the p99 gate.
                let retry = measure_city(cell.shards, TOTAL_DEMAND);
                point.plans_per_sec = point.plans_per_sec.max(retry.plans_per_sec);
                fresh_speedup = point.plans_per_sec / fb;
            }
            if fresh_speedup < committed_speedup * 0.5 {
                failures.push(format!(
                    "{} shards: speedup over 1 shard fell to {fresh_speedup:.2}x \
                     (committed {committed_speedup:.2}x, floor {:.2}x)",
                    cell.shards,
                    committed_speedup * 0.5
                ));
            }
        }
    }

    // Flow-probe gate: deterministic, so committed and fresh counts
    // must agree exactly, flow must exist, and anchors must audit clean.
    if let Some(line) = committed.lines().find(|l| l.contains("\"probe\":\"flow\"")) {
        let committed_out = json_num(line, "handoffs")
            .ok_or_else(|| format!("probe line missing handoffs: {line}"))?
            as usize;
        let committed_in = json_num(line, "handoffs_in")
            .ok_or_else(|| format!("probe line missing handoffs_in: {line}"))?
            as usize;
        let probe = measure_flow_probe();
        if committed_out == 0 || committed_in == 0 {
            failures.push(
                "committed flow probe saw no boundary traffic — regenerate the baseline".into(),
            );
        }
        if probe.handoffs != committed_out || probe.handoffs_in != committed_in {
            failures.push(format!(
                "flow probe drifted: committed {committed_out} out / {committed_in} in, \
                 fresh {} out / {} in — the city is deterministic, so this is a \
                 behaviour change",
                probe.handoffs, probe.handoffs_in
            ));
        }
        if probe.anchor_mismatches != 0 {
            failures.push(format!(
                "flow probe: {} anchor mismatches",
                probe.anchor_mismatches
            ));
        }
    } else {
        failures.push(format!(
            "no flow-probe line found in {} — regenerate it with `expgen city`",
            path.display()
        ));
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(fresh.iter())
        .map(|(cell, point)| {
            vec![
                cell.shards.to_string(),
                format!("{:.4}", cell.p99_ms),
                format!("{:.4}", point.tick_p99_ms),
                format!("{:.1}", cell.plans_per_sec),
                format!("{:.1}", point.plans_per_sec),
                point.anchor_mismatches.to_string(),
            ]
        })
        .collect();
    let table = crate::table::render(
        &[
            "shards",
            "p99 base ms",
            "p99 ms",
            "plans/s base",
            "plans/s",
            "anchor miss",
        ],
        &rows,
    );
    if failures.is_empty() {
        Ok(format!(
            "City guard: scaling holds, anchors clean, p99 within 2x of baseline\n{table}"
        ))
    } else {
        Err(format!(
            "city regression vs committed baseline:\n  {}\n{table}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_valid_and_stretches() {
        city_base_config(100).validate().expect("valid");
        let wide = city_base_config(3000);
        assert!(
            wide.geometry.approach_len >= 3000.0,
            "approaches must stretch to fit the whole city demand on one shard"
        );
        assert_eq!(city_base_config(10).geometry.approach_len, 2100.0);
        // Fixed roads: every shard count in a sweep sees the same
        // geometry — congestion, not road length, is what sharding
        // divides.
        assert_eq!(
            city_base_config(TOTAL_DEMAND).geometry.approach_len,
            CityConfig::ring(8, city_base_config(TOTAL_DEMAND))
                .shard_config(3)
                .geometry
                .approach_len
        );
    }

    #[test]
    fn json_round_trip_scans_back() {
        let points = vec![
            CityPoint {
                shards: 1,
                per_shard: 100,
                placed: 100,
                plans: 300,
                plans_per_sec: 1000.0,
                tick_p50_ms: 0.5,
                tick_p99_ms: 20.0,
                handoffs: 0,
                anchor_mismatches: 0,
            },
            CityPoint {
                shards: 4,
                per_shard: 25,
                placed: 100,
                plans: 300,
                plans_per_sec: 3500.0,
                tick_p50_ms: 0.25,
                tick_p99_ms: 6.0,
                handoffs: 17,
                anchor_mismatches: 0,
            },
        ];
        let probe = FlowProbe {
            handoffs: 21,
            handoffs_in: 19,
            boundary_latency_s: Some(4.5),
            anchor_mismatches: 0,
        };
        let json = to_json(&points, &probe);
        let header = json.lines().next().expect("header");
        assert!(header.contains("\"schema\":\"nwade-city-v1\""));
        assert!(header.contains("\"host_threads\":"));
        assert!(header.contains(&format!("\"total_demand\":{TOTAL_DEMAND}")));
        let line = json
            .lines()
            .find(|l| l.contains("\"shards\":4"))
            .expect("4-shard line");
        assert_eq!(json_num(line, "shards"), Some(4.0));
        assert_eq!(json_num(line, "plans_per_sec"), Some(3500.0));
        assert_eq!(json_num(line, "tick_p99_ms"), Some(6.0));
        assert_eq!(json_num(line, "speedup_vs_1"), Some(3.5));
        assert_eq!(json_num(line, "handoffs"), Some(17.0));
        assert_eq!(json_num(line, "anchor_mismatches"), Some(0.0));
        // Header must not parse as a result cell.
        assert!(!header.contains("\"shards\""));
        let probe_line = json
            .lines()
            .find(|l| l.contains("\"probe\":\"flow\""))
            .expect("probe line");
        assert_eq!(json_num(probe_line, "handoffs"), Some(21.0));
        assert_eq!(json_num(probe_line, "handoffs_in"), Some(19.0));
        assert_eq!(json_num(probe_line, "boundary_latency_s"), Some(4.5));
        assert!(
            !probe_line.contains("\"shards\""),
            "probe lines must not parse as sweep cells"
        );
    }

    #[test]
    fn speedup_is_relative_to_one_shard() {
        let mk = |shards: usize, pps: f64| CityPoint {
            shards,
            per_shard: 10,
            placed: 10,
            plans: 30,
            plans_per_sec: pps,
            tick_p50_ms: 1.0,
            tick_p99_ms: 2.0,
            handoffs: 0,
            anchor_mismatches: 0,
        };
        let points = vec![mk(1, 500.0), mk(8, 2000.0)];
        assert_eq!(speedup_vs_one(&points, &points[1]), Some(4.0));
        let no_base = vec![mk(8, 2000.0)];
        assert_eq!(speedup_vs_one(&no_base, &no_base[0]), None);
    }

    /// A tiny 2-shard cell end-to-end: the measurement itself must
    /// produce a sane point, conserve vehicles, and audit clean.
    #[test]
    fn measure_tiny_city_produces_sane_point() {
        let point = measure_city(2, 24);
        assert_eq!(point.shards, 2);
        assert_eq!(point.per_shard, 12);
        assert_eq!(point.placed, 24);
        assert!(point.plans > 0, "measured rounds must seal plans");
        assert!(point.plans_per_sec > 0.0);
        assert!(point.tick_p99_ms >= point.tick_p50_ms);
        assert_eq!(point.anchor_mismatches, 0);
    }
}
