//! Eq. 2 detection-probability validation: measured Monte Carlo
//! detection rates against the analytic curve, across watcher counts
//! and collusion fractions.
//!
//! Each grid point runs [`measured_detection_rate`] — a structural
//! simulation of Eq. 2's generative model where every colluder's
//! compromise is drawn individually — and records the measured rate,
//! its Wilson interval, and the analytic `P_d = exp(−ω·k·p_v^k)`.
//! `report()` writes the machine-readable curve to `BENCH_detect.json`
//! at the repo root (hand-rolled JSON, one result per line, like the
//! other baselines); `guard()` re-measures every committed point (the
//! seeds are derived from the parameters, so re-measurement is exact)
//! and fails when any point's analytic value leaves the measured
//! Wilson interval by more than the documented model slack — the CI
//! gate behind the "reproduces Eq. 2" claim.

use nwade::prob::{detection_probability, measured_detection_rate, wilson_interval};

/// Watcher counts (Eq. 2's ω) swept by the validation — six points, so
/// the curve is pinned well past the acceptance floor of five.
pub const OMEGAS: [f64; 6] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];

/// `(k, p_v)` collusion settings: attackers × per-vehicle compromise
/// probability. Chosen where `p_v^k` is small enough that Eq. 2's
/// Poisson limit is tight (see the slack accounting in `DetectPoint`).
pub const COLLUSIONS: [(u32, f64); 4] = [(2, 0.1), (2, 0.2), (3, 0.3), (4, 0.3)];

/// Monte Carlo trials per grid point.
pub const TRIALS: u32 = 4000;

/// z-score of the recorded Wilson intervals (99% two-sided).
pub const WILSON_Z: f64 = 2.576;

/// One validated grid point.
#[derive(Debug, Clone)]
pub struct DetectPoint {
    /// Watch opportunities per colluder (Eq. 2's ω).
    pub omega: f64,
    /// Number of colluding attackers.
    pub k: u32,
    /// Per-vehicle compromise probability.
    pub p_v: f64,
    /// Monte Carlo detection rate over [`TRIALS`] trials.
    pub measured: f64,
    /// Eq. 2 analytic detection probability.
    pub analytic: f64,
    /// Wilson interval of the measurement at [`WILSON_Z`].
    pub wilson_lo: f64,
    /// Upper Wilson bound.
    pub wilson_hi: f64,
    /// Absolute gap between the exact `(1 − p_v^k)^{ω·k}` process the
    /// simulation realizes and Eq. 2's exponential approximation —
    /// model error the acceptance band must tolerate on top of the
    /// statistical interval.
    pub model_slack: f64,
}

impl DetectPoint {
    /// Whether the analytic curve agrees with this measurement: inside
    /// the Wilson interval widened by the model slack.
    pub fn analytic_agrees(&self) -> bool {
        self.analytic >= self.wilson_lo - self.model_slack - 1e-9
            && self.analytic <= self.wilson_hi + self.model_slack + 1e-9
    }
}

/// Deterministic per-point seed: derived from the parameters, so a
/// guard run re-measures the committed point bit-identically.
fn seed_for(omega: f64, k: u32, p_v: f64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for byte in omega
        .to_bits()
        .to_be_bytes()
        .iter()
        .chain(u64::from(k).to_be_bytes().iter())
        .chain(p_v.to_bits().to_be_bytes().iter())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Measures one grid point.
pub fn measure(omega: f64, k: u32, p_v: f64) -> DetectPoint {
    let measured = measured_detection_rate(k, p_v, omega, TRIALS, seed_for(omega, k, p_v));
    let successes = (measured * f64::from(TRIALS)).round() as u64;
    let (wilson_lo, wilson_hi) = wilson_interval(successes, u64::from(TRIALS), WILSON_Z);
    let analytic = detection_probability(k, p_v, omega);
    let p_chain = p_v.powi(k as i32);
    let exact = (1.0 - p_chain).powf((omega * f64::from(k)).round());
    DetectPoint {
        omega,
        k,
        p_v,
        measured,
        analytic,
        wilson_lo,
        wilson_hi,
        model_slack: (exact - analytic).abs(),
    }
}

/// Runs the full ω × (k, p_v) grid.
pub fn sweep() -> Vec<DetectPoint> {
    let mut points = Vec::new();
    for &omega in &OMEGAS {
        for &(k, p_v) in &COLLUSIONS {
            points.push(measure(omega, k, p_v));
        }
    }
    points
}

/// Serialises the sweep: a header object, then one result per line.
pub fn to_json(points: &[DetectPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"nwade-detect-v1\",\"trials\":{TRIALS},\"wilson_z\":{WILSON_Z}}}\n"
    ));
    for p in points {
        out.push_str(&format!(
            "{{\"omega\":{},\"k\":{},\"p_v\":{},\"measured\":{:.6},\"analytic\":{:.6},\
             \"wilson_lo\":{:.6},\"wilson_hi\":{:.6},\"model_slack\":{:.6}}}\n",
            p.omega, p.k, p.p_v, p.measured, p.analytic, p.wilson_lo, p.wilson_hi, p.model_slack,
        ));
    }
    out
}

/// Path of the committed curve at the repository root.
pub fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detect.json")
}

fn render(points: &[DetectPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.omega),
                p.k.to_string(),
                format!("{:.2}", p.p_v),
                format!("{:.4}", p.measured),
                format!("{:.4}", p.analytic),
                format!("[{:.4}, {:.4}]", p.wilson_lo, p.wilson_hi),
                if p.analytic_agrees() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::table::render(
        &[
            "omega",
            "k",
            "p_v",
            "measured",
            "Eq. 2",
            "wilson 99%",
            "agree",
        ],
        &rows,
    )
}

/// Runs the sweep, rewrites `BENCH_detect.json`, and renders the table.
pub fn report() -> String {
    let points = sweep();
    let json = to_json(&points);
    let path = baseline_path();
    let status = match std::fs::write(&path, &json) {
        Ok(()) => format!("curve written to {}", path.display()),
        Err(e) => format!("WARNING: could not write {}: {e}", path.display()),
    };
    let disagreements = points.iter().filter(|p| !p.analytic_agrees()).count();
    format!(
        "Eq. 2 detection-probability validation ({} points, {} trials each)\n{}\n{}\n{status}",
        points.len(),
        TRIALS,
        render(&points),
        if disagreements == 0 {
            "all points agree with the analytic curve".to_string()
        } else {
            format!("WARNING: {disagreements} point(s) disagree with the analytic curve")
        },
    )
}

fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Validation gate: re-measures every point committed in
/// `BENCH_detect.json` (deterministic seeds make this exact), requires
/// at least five distinct watcher counts, and fails when any point's
/// analytic value leaves the measured Wilson interval by more than the
/// model slack, or when a committed measurement no longer reproduces.
///
/// # Errors
///
/// Returns a description of the missing/corrupt curve file or the list
/// of disagreeing points.
pub fn guard() -> Result<String, String> {
    let path = baseline_path();
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (generate it with `expgen detect` and commit it)",
            path.display()
        )
    })?;
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut omegas_seen = Vec::new();
    for line in committed.lines().filter(|l| l.contains("\"omega\"")) {
        let omega =
            json_num(line, "omega").ok_or_else(|| format!("curve line missing omega: {line}"))?;
        let k = json_num(line, "k").ok_or_else(|| format!("curve line missing k: {line}"))? as u32;
        let p_v = json_num(line, "p_v").ok_or_else(|| format!("curve line missing p_v: {line}"))?;
        let committed_measured = json_num(line, "measured")
            .ok_or_else(|| format!("curve line missing measured: {line}"))?;
        let fresh = measure(omega, k, p_v);
        if !omegas_seen.contains(&omega) {
            omegas_seen.push(omega);
        }
        if (fresh.measured - committed_measured).abs() > 1e-4 {
            failures.push(format!(
                "ω={omega} k={k} p_v={p_v}: committed measurement {committed_measured:.6} \
                 no longer reproduces (got {:.6}) — the Monte Carlo model changed; \
                 regenerate with `expgen detect`",
                fresh.measured
            ));
        }
        if !fresh.analytic_agrees() {
            failures.push(format!(
                "ω={omega} k={k} p_v={p_v}: Eq. 2 gives {:.4}, measured Wilson \
                 [{:.4}, {:.4}] ± {:.4}",
                fresh.analytic, fresh.wilson_lo, fresh.wilson_hi, fresh.model_slack
            ));
        }
        rows.push(vec![
            format!("{omega:.0}"),
            k.to_string(),
            format!("{p_v:.2}"),
            format!("{:.4}", fresh.measured),
            format!("{:.4}", fresh.analytic),
            format!("[{:.4}, {:.4}]", fresh.wilson_lo, fresh.wilson_hi),
        ]);
    }
    if rows.is_empty() {
        return Err(format!("no result lines found in {}", path.display()));
    }
    if omegas_seen.len() < 5 {
        failures.push(format!(
            "curve covers only {} watcher counts; the acceptance floor is 5",
            omegas_seen.len()
        ));
    }
    let table = crate::table::render(
        &["omega", "k", "p_v", "measured", "Eq. 2", "wilson 99%"],
        &rows,
    );
    if failures.is_empty() {
        Ok(format!(
            "Detect guard: Eq. 2 agrees with the measured curve at all {} points \
             ({} watcher counts)\n{table}",
            rows.len(),
            omegas_seen.len()
        ))
    } else {
        Err(format!(
            "Eq. 2 validation failure:\n  {}\n{table}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_acceptance_floor() {
        assert!(OMEGAS.len() >= 5, "need at least five watcher counts");
        let points = sweep();
        assert_eq!(points.len(), OMEGAS.len() * COLLUSIONS.len());
    }

    #[test]
    fn every_grid_point_agrees_with_eq2() {
        for p in sweep() {
            assert!(
                p.analytic_agrees(),
                "ω={} k={} p_v={}: analytic {:.4} vs Wilson [{:.4}, {:.4}] ± {:.4}",
                p.omega,
                p.k,
                p.p_v,
                p.analytic,
                p.wilson_lo,
                p.wilson_hi,
                p.model_slack
            );
        }
    }

    #[test]
    fn measurement_is_reproducible() {
        let a = measure(6.0, 3, 0.3);
        let b = measure(6.0, 3, 0.3);
        assert_eq!(a.measured, b.measured);
        assert!(a.wilson_lo < a.measured && a.measured < a.wilson_hi);
    }

    #[test]
    fn json_round_trip_scans_back() {
        let point = measure(4.0, 2, 0.2);
        let json = to_json(std::slice::from_ref(&point));
        assert!(json.starts_with("{\"schema\":\"nwade-detect-v1\""));
        let line = json.lines().nth(1).expect("result line");
        assert_eq!(json_num(line, "omega"), Some(4.0));
        assert_eq!(json_num(line, "k"), Some(2.0));
        assert_eq!(json_num(line, "p_v"), Some(0.2));
        let measured = json_num(line, "measured").expect("measured");
        assert!((measured - point.measured).abs() < 1e-5);
    }
}
