//! Fig. 4: detection rate of the staged plan violation under different
//! vehicle densities, per attack setting.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade_sim::run_rounds;

/// Densities the paper sweeps (vehicles per minute).
pub const DENSITIES: [f64; 6] = [20.0, 40.0, 60.0, 80.0, 100.0, 120.0];

/// One detection-rate series: a setting across all densities.
#[derive(Debug, Clone)]
pub struct Series {
    /// Setting label.
    pub setting: String,
    /// Detection rate at each density in [`DENSITIES`] order.
    pub rates: Vec<f64>,
}

/// Settings plotted in Fig. 4 (those with a plan violation to detect).
pub fn settings() -> Vec<AttackSetting> {
    AttackSetting::ALL
        .iter()
        .copied()
        .filter(|s| s.plan_violations() > 0)
        .collect()
}

/// Runs the sweep.
pub fn series(rounds: u64, duration: f64) -> Vec<Series> {
    settings()
        .into_iter()
        .map(|s| {
            let rates = DENSITIES
                .iter()
                .map(|&density| {
                    let mut config = with_attack(base_config(duration), s);
                    config.density = density;
                    run_rounds(&config, rounds).detection_rate()
                })
                .collect();
            Series {
                setting: s.label().to_string(),
                rates,
            }
        })
        .collect()
}

/// Renders Fig. 4 as a table (settings × densities).
pub fn report(rounds: u64, duration: f64) -> String {
    let mut header: Vec<String> = vec!["Setting".into()];
    header.extend(DENSITIES.iter().map(|d| format!("{d:.0}/min")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = series(rounds, duration)
        .into_iter()
        .map(|s| {
            let mut row = vec![s.setting];
            row.extend(s.rates.iter().map(|r| format!("{:.0}%", r * 100.0)));
            row
        })
        .collect();
    format!(
        "Fig. 4: Detection Rate under Different Vehicle Densities \
         ({rounds} rounds/point)\n{}",
        render(&header_refs, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plotted_settings_have_violations() {
        let s = settings();
        assert_eq!(s.len(), 10, "all but the pure-IM setting");
        assert!(!s.contains(&AttackSetting::Im));
    }
}
