//! Fig. 5: detection time at a 4-way intersection — (a) reports of
//! vehicles deviating from travel plans, (b) false claims of wrong travel
//! plans being rebutted.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade_sim::run_rounds;

/// Densities swept.
pub const DENSITIES: [f64; 4] = [20.0, 60.0, 80.0, 120.0];

/// One density's latencies.
#[derive(Debug, Clone)]
pub struct Point {
    /// Vehicles per minute.
    pub density: f64,
    /// Mean report-to-confirmation latency, seconds (series a).
    pub deviation_detect_s: Option<f64>,
    /// Mean false-claim-to-rebuttal latency, seconds (series b).
    pub wrong_plan_detect_s: Option<f64>,
}

/// Runs the sweep: V2 provides both a real deviation (series a) and a
/// false conflicting-plans broadcast (series b) in every round.
pub fn points(rounds: u64, duration: f64) -> Vec<Point> {
    DENSITIES
        .iter()
        .map(|&density| {
            let mut config = with_attack(base_config(duration), AttackSetting::V2);
            config.density = density;
            let summary = run_rounds(&config, rounds);
            let mean = |f: &dyn Fn(&nwade_sim::SimReport) -> Option<f64>| -> Option<f64> {
                let vals: Vec<f64> = summary.rounds.iter().filter_map(f).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            };
            Point {
                density,
                deviation_detect_s: mean(&|r| r.metrics.report_processing_latency()),
                wrong_plan_detect_s: mean(&|r| r.metrics.type_b_rebuttal_latency()),
            }
        })
        .collect()
}

fn ms(v: Option<f64>) -> String {
    v.map_or("n/a".into(), |s| format!("{:.0} ms", s * 1000.0))
}

/// Renders Fig. 5.
pub fn report(rounds: u64, duration: f64) -> String {
    let body: Vec<Vec<String>> = points(rounds, duration)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.0}/min", p.density),
                ms(p.deviation_detect_s),
                ms(p.wrong_plan_detect_s),
            ]
        })
        .collect();
    format!(
        "Fig. 5: Detection Time, 4-way cross ({rounds} rounds/point)\n{}",
        render(
            &[
                "Density",
                "Deviation report verified",
                "Wrong-plan claim rebutted"
            ],
            &body,
        )
    )
}
