//! Fig. 6: blockchain management (manager side) and verification
//! (vehicle side) time, across intersection types and densities, with
//! the paper's real cryptography (SHA-256 + 2048-bit RSA).

use crate::table::render;
use nwade::verify::block::verify_incoming_block;
use nwade::NwadeConfig;
use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig, TravelPlan};
use nwade_chain::{BlockPackager, ChainCache};
use nwade_crypto::{RsaKeyPair, RsaScheme};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Densities shown on the figure's axis.
pub const DENSITIES: [f64; 3] = [20.0, 80.0, 120.0];

/// One bar pair of Fig. 6.
#[derive(Debug, Clone)]
pub struct Point {
    /// Intersection label.
    pub kind: IntersectionKind,
    /// Vehicles per minute.
    pub density: f64,
    /// Plans per processing window at this density.
    pub batch: usize,
    /// Manager-side block packaging time (schedule + Merkle + sign), ms.
    pub manage_ms: f64,
    /// Vehicle-side verification time (Algorithm 1), ms.
    pub verify_ms: f64,
}

/// Builds an honestly scheduled batch of `n` plans on `topo`.
fn batch(topo: &Arc<Topology>, n: usize, seed: u64) -> Vec<TravelPlan> {
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
    let n_mv = topo.movements().len();
    (0..n)
        .flat_map(|i| {
            let id = seed * 1000 + i as u64;
            scheduler.schedule(
                &[PlanRequest {
                    id: VehicleId::new(id),
                    descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
                    movement: MovementId::new(((id as usize * 7) % n_mv) as u16),
                    position_s: 0.0,
                    speed: 15.0,
                }],
                i as f64 * 3.0,
            )
        })
        .collect()
}

/// Plans per one-second window at `density` veh/min.
fn window_batch(density: f64) -> usize {
    ((density / 60.0).ceil() as usize).max(1)
}

/// Measures one (kind, density) point with the given key.
pub fn measure(kind: IntersectionKind, density: f64, key: &RsaScheme) -> Point {
    let topo = Arc::new(build(kind, &GeometryConfig::default()));
    let n = window_batch(density);
    let plans = batch(&topo, n, density as u64);
    let reps = 10;

    // Manager side: package a window (Merkle tree + RSA signature).
    let t0 = Instant::now();
    let mut last = None;
    for i in 0..reps {
        let mut packager = BlockPackager::new(Arc::new(key.clone()));
        last = Some(packager.package(plans.clone(), i as f64));
    }
    let manage_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
    let block = last.expect("packaged at least once");

    // Vehicle side: Algorithm 1 (signature + root + conflicts). A fresh
    // cache per rep keeps this the *uncached* verification cost — the
    // digest memo would otherwise absorb every rep after the first.
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut cache = ChainCache::new(NwadeConfig::default().chain_cache_capacity);
        verify_incoming_block(&block, &mut cache, key, &topo, 0.5, &Default::default())
            .expect("honest block verifies");
    }
    let verify_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    Point {
        kind,
        density,
        batch: n,
        manage_ms,
        verify_ms,
    }
}

/// Runs the full grid with a freshly generated 2048-bit key.
pub fn points() -> Vec<Point> {
    let key = RsaScheme::new(RsaKeyPair::generate(2048, &mut StdRng::seed_from_u64(42)));
    let mut out = Vec::new();
    for kind in IntersectionKind::ALL {
        for density in DENSITIES {
            out.push(measure(kind, density, &key));
        }
    }
    out
}

/// Renders Fig. 6.
pub fn report() -> String {
    let body: Vec<Vec<String>> = points()
        .into_iter()
        .map(|p| {
            vec![
                format!("{} ({:.0})", p.kind, p.density),
                p.batch.to_string(),
                format!("{:.2}", p.manage_ms),
                format!("{:.2}", p.verify_ms),
            ]
        })
        .collect();
    format!(
        "Fig. 6: Blockchain Management and Verification (SHA-256 + RSA-2048)\n{}",
        render(
            &[
                "Intersection (veh/min)",
                "Plans/window",
                "Manage [ms]",
                "Verify [ms]"
            ],
            &body,
        )
    )
}
