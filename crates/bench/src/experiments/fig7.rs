//! Fig. 7: network load (total packets) at a 4-way intersection under
//! three event types: no attack, local reports sent, global reports sent.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade_sim::Simulation;
use nwade_vanet::NetworkStats;

/// The three scenarios on the figure's axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Plain traffic: plan requests and block broadcasts only.
    NoAttack,
    /// A violation triggers incident reports and watcher polling.
    LocalReports,
    /// A compromised manager triggers global reports.
    GlobalReports,
}

impl Scenario {
    /// All scenarios in figure order.
    pub const ALL: [Scenario; 3] = [
        Scenario::NoAttack,
        Scenario::LocalReports,
        Scenario::GlobalReports,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::NoAttack => "no attack",
            Scenario::LocalReports => "local reports",
            Scenario::GlobalReports => "global reports",
        }
    }
}

/// One scenario's packet accounting.
#[derive(Debug, Clone)]
pub struct Point {
    /// Scenario.
    pub scenario: Scenario,
    /// Full per-class statistics.
    pub stats: NetworkStats,
}

/// Runs the three scenarios.
pub fn points(duration: f64, seed: u64) -> Vec<Point> {
    Scenario::ALL
        .iter()
        .map(|&scenario| {
            let mut config = base_config(duration);
            config.seed = seed;
            match scenario {
                Scenario::NoAttack => {}
                Scenario::LocalReports => {
                    config = with_attack(config, AttackSetting::V1);
                }
                Scenario::GlobalReports => {
                    config = with_attack(config, AttackSetting::Im);
                }
            }
            let report = Simulation::new(config).run();
            Point {
                scenario,
                stats: report.metrics.network,
            }
        })
        .collect()
}

/// Renders Fig. 7.
pub fn report(duration: f64, seed: u64) -> String {
    let pts = points(duration, seed);
    // Collect the union of observed classes for stable columns.
    let mut classes: Vec<&'static str> = Vec::new();
    for p in &pts {
        for (c, _) in p.stats.iter() {
            if !classes.contains(&c) {
                classes.push(c);
            }
        }
    }
    classes.sort_unstable();
    let mut header: Vec<String> = vec!["Scenario".into()];
    header.extend(classes.iter().map(|c| c.to_string()));
    header.push("total".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            let mut row = vec![p.scenario.label().to_string()];
            row.extend(
                classes
                    .iter()
                    .map(|c| p.stats.class(c).transmissions.to_string()),
            );
            row.push(p.stats.total_transmissions().to_string());
            row
        })
        .collect();
    format!(
        "Fig. 7: Network Load, 4-way cross ({duration:.0}s, transmissions)\n{}",
        render(&header_refs, &body)
    )
}
