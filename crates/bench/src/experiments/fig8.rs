//! Fig. 8: traffic throughput with and without NWADE across the five
//! intersection types and the density sweep — the overhead experiment.

use crate::experiments::base_config;
use crate::table::render;
use nwade_intersection::IntersectionKind;
use nwade_sim::run_rounds;

/// Densities swept.
pub const DENSITIES: [f64; 3] = [20.0, 80.0, 120.0];

/// One bar pair.
#[derive(Debug, Clone)]
pub struct Point {
    /// Intersection.
    pub kind: IntersectionKind,
    /// Vehicles per minute offered.
    pub density: f64,
    /// Mean throughput with NWADE, vehicles per minute served.
    pub with_nwade: f64,
    /// Mean throughput without NWADE.
    pub without_nwade: f64,
}

impl Point {
    /// Relative throughput change introduced by NWADE (≈ 0 expected).
    pub fn overhead(&self) -> f64 {
        if self.without_nwade <= 0.0 {
            return 0.0;
        }
        (self.without_nwade - self.with_nwade) / self.without_nwade
    }
}

/// Runs the grid.
pub fn points(rounds: u64, duration: f64) -> Vec<Point> {
    let mut out = Vec::new();
    for kind in IntersectionKind::ALL {
        for density in DENSITIES {
            let mut config = base_config(duration);
            config.kind = kind;
            config.density = density;
            config.nwade_enabled = true;
            let with_nwade = run_rounds(&config, rounds).mean_throughput();
            config.nwade_enabled = false;
            let without_nwade = run_rounds(&config, rounds).mean_throughput();
            out.push(Point {
                kind,
                density,
                with_nwade,
                without_nwade,
            });
        }
    }
    out
}

/// Renders Fig. 8.
pub fn report(rounds: u64, duration: f64) -> String {
    let body: Vec<Vec<String>> = points(rounds, duration)
        .into_iter()
        .map(|p| {
            vec![
                format!("{} ({:.0})", p.kind, p.density),
                format!("{:.1}", p.with_nwade),
                format!("{:.1}", p.without_nwade),
                format!("{:+.1}%", p.overhead() * 100.0),
            ]
        })
        .collect();
    format!(
        "Fig. 8: Traffic Throughput with/without NWADE ({rounds} rounds/point)\n{}",
        render(
            &[
                "Intersection (veh/min)",
                "with NWADE",
                "without",
                "overhead"
            ],
            &body,
        )
    )
}
