//! One module per paper table / figure, plus the analytic models.

pub mod analytic;
pub mod chaos;
pub mod city;
pub mod detect;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod perf;
pub mod recovery;
pub mod sensing;
pub mod table1;
pub mod table2;
pub mod violations;

use nwade::attack::{AttackSetting, ViolationKind};
use nwade_sim::{AttackPlan, SimConfig};

/// Baseline configuration shared by the simulation experiments.
pub fn base_config(duration: f64) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = duration;
    config
}

/// Attaches a Table I attack to a config, starting mid-run.
pub fn with_attack(mut config: SimConfig, setting: AttackSetting) -> SimConfig {
    config.attack = Some(AttackPlan {
        setting,
        violation: ViolationKind::SuddenStop,
        start: (config.duration * 0.4).max(30.0),
    });
    config
}
