//! Perf baseline: tick throughput, sense-pass latency, and window
//! processing latency across engine variants and fleet densities.
//!
//! Four execution variants run the *same* simulation (differentially
//! tested to produce identical reports):
//!
//! * **baseline** — serial engine, all-pairs neighbourhood scans (the
//!   seed behaviour),
//! * **serial** — serial engine over the uniform-grid spatial index,
//! * **parallel** — threaded engine over the grid index,
//! * **auto** — threaded above the fleet-size threshold, serial below.
//!
//! `report()` sweeps density × variant over a prespawned fleet, then
//! runs the **saturation study**: window throughput from 50 to 10 000
//! vehicles under three admission modes — the historical 256-capped
//! batch, the unbounded sequential engine, and the unbounded pipelined
//! engine (scheduling overlapped with signing). Both sweeps land in
//! `BENCH_perf.json` at the repo root (one result object per line,
//! hand-rolled — the workspace has no JSON dependency) and render as
//! human tables. `guard()` re-measures every point recorded in the
//! committed baseline and fails on a >2× per-tick, per-window, or
//! p99-window-latency slowdown — and on any window that admitted fewer
//! requests than were offered without the shed counters saying so.

use std::time::Instant;

use nwade_aim::AdmissionPolicy;
use nwade_sim::{EngineChoice, SignatureChoice, SimConfig, Simulation};

/// Fleet sizes swept by the baseline (vehicles prespawned on approach).
pub const DENSITIES: [usize; 5] = [50, 200, 500, 1000, 2000];

/// `(label, engine, spatial_index)` execution variants.
pub const VARIANTS: [(&str, EngineChoice, bool); 4] = [
    ("baseline", EngineChoice::Serial, false),
    ("serial", EngineChoice::Serial, true),
    ("parallel", EngineChoice::Parallel, true),
    ("auto", EngineChoice::Auto, true),
];

const WARMUP_TICKS: usize = 5;
const MEASURED_TICKS: usize = 20;
const SENSE_ITERS: usize = 5;
const WINDOW_ITERS: usize = 3;
/// Timed blocks per metric; the *minimum* block time is reported, which
/// discards co-tenant / frequency-scaling spikes on shared CI hosts.
const REPEAT_BLOCKS: usize = 3;

/// The bench-only request truncation this module used to hard-code.
/// It survives only as the saturation study's "capped" mode — expressed
/// as a real [`AdmissionPolicy`] so deferrals are counted, not silent —
/// to quantify what the cap cost.
pub const LEGACY_WINDOW_CAP: usize = 256;

/// Fleet sizes swept by the saturation study.
pub const SATURATION_DENSITIES: [usize; 6] = [50, 200, 1000, 2000, 5000, 10_000];

/// Measured windows per saturation cell (after one warmup window).
pub const SATURATION_WINDOWS: usize = 6;

/// Admission/engine modes measured per saturation density.
pub const SATURATION_MODES: [&str; 3] = ["capped256", "seq", "pipe"];

/// Saturation cells the guard re-measures; denser cells are reported in
/// the baseline but cost too much wall clock to re-run every CI pass.
pub const SATURATION_GUARD_MAX_DENSITY: usize = 2000;

/// One measured (density, variant) cell.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Requested fleet size.
    pub density: usize,
    /// Variant label from [`VARIANTS`].
    pub variant: &'static str,
    /// Vehicles actually placed by `prespawn_fleet`.
    pub placed: usize,
    /// Mean wall-clock per `tick_once`, milliseconds.
    pub tick_ms: f64,
    /// `1000 / tick_ms`.
    pub ticks_per_sec: f64,
    /// Mean wall-clock per forced sensing pass, milliseconds.
    pub sense_ms: f64,
    /// Minimum wall-clock per processing window, milliseconds.
    pub window_ms: f64,
    /// Active vehicles that wanted a plan when the window was filled.
    pub window_requests_offered: usize,
    /// Requests actually admitted; smaller than
    /// `window_requests_offered` exactly when an admission cap bound
    /// (never, under the default unbounded policy).
    pub window_requests_scheduled: usize,
}

/// One measured (density, mode) cell of the saturation study.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Requested fleet size.
    pub density: usize,
    /// Mode label from [`SATURATION_MODES`].
    pub mode: &'static str,
    /// Vehicles actually placed by `prespawn_fleet`.
    pub placed: usize,
    /// Requests waiting at the last measured window (admitted +
    /// deferred) — under the capped mode the deferral backlog shows up
    /// here.
    pub offered: usize,
    /// Requests admitted into the last measured window.
    pub admitted: usize,
    /// Total requests deferred across the measured windows.
    pub deferred: usize,
    /// Plans sealed into blocks across the measured windows.
    pub sealed_plans: usize,
    /// Plans sealed per window — the throughput the cap was strangling.
    pub plans_per_window: f64,
    /// Median window latency, milliseconds.
    pub p50_ms: f64,
    /// p99 (max over ≤ 100 windows) window latency, milliseconds.
    pub p99_ms: f64,
}

/// Simulation config for the prespawned perf fleet.
///
/// Arrivals are effectively disabled (the fleet is prespawned), the
/// approaches are stretched so 2000 vehicles fit single-file, and the
/// sensing radius is shrunk to 60 m: the paper's 1000 ft radius covers
/// the entire modeled area, which turns observation building into
/// O(V²) under *every* variant and would hide the index.
pub fn fleet_config(engine: EngineChoice, spatial_index: bool) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 60.0;
    config.density = 0.001;
    config.seed = 7;
    config.signature = SignatureChoice::Mock;
    config.engine = engine;
    config.spatial_index = spatial_index;
    config.nwade.sensing_radius = 60.0;
    config.geometry.approach_len = 2100.0;
    config
}

/// Measures one (density, variant) cell on a fresh simulation.
pub fn measure(
    density: usize,
    variant: &'static str,
    engine: EngineChoice,
    spatial_index: bool,
) -> PerfPoint {
    let config = fleet_config(engine, spatial_index);
    config.validate().expect("perf config valid");
    let mut sim = Simulation::new(config);
    let placed = sim.prespawn_fleet(density);
    for _ in 0..WARMUP_TICKS {
        sim.tick_once();
    }

    let mut tick_s = f64::INFINITY;
    for _ in 0..REPEAT_BLOCKS {
        let start = Instant::now();
        for _ in 0..MEASURED_TICKS {
            sim.tick_once();
        }
        tick_s = tick_s.min(start.elapsed().as_secs_f64() / MEASURED_TICKS as f64);
    }

    let mut sense_s = f64::INFINITY;
    for _ in 0..REPEAT_BLOCKS {
        let start = Instant::now();
        for _ in 0..SENSE_ITERS {
            sim.force_sense_pass();
        }
        sense_s = sense_s.min(start.elapsed().as_secs_f64() / SENSE_ITERS as f64);
    }

    // Minimum over iterations, like the other metrics — window latency
    // gates CI, so spike-robustness matters more than averaging. The
    // whole offered batch is enqueued; the configured admission policy
    // (unbounded by default) decides what the window takes.
    let mut window_s = f64::INFINITY;
    let mut window_requests_offered = 0;
    let mut window_requests_scheduled = 0;
    for _ in 0..WINDOW_ITERS {
        let (offered, scheduled) = sim.enqueue_plan_requests(usize::MAX);
        window_requests_offered = offered;
        window_requests_scheduled = scheduled;
        let start = Instant::now();
        sim.force_process_window();
        window_s = window_s.min(start.elapsed().as_secs_f64());
    }

    PerfPoint {
        density,
        variant,
        placed,
        tick_ms: tick_s * 1e3,
        ticks_per_sec: if tick_s > 0.0 {
            1.0 / tick_s
        } else {
            f64::INFINITY
        },
        sense_ms: sense_s * 1e3,
        window_ms: window_s * 1e3,
        window_requests_offered,
        window_requests_scheduled,
    }
}

/// Runs the full density × variant sweep.
pub fn sweep() -> Vec<PerfPoint> {
    let mut points = Vec::new();
    for &density in &DENSITIES {
        for &(variant, engine, spatial_index) in &VARIANTS {
            points.push(measure(density, variant, engine, spatial_index));
        }
    }
    points
}

/// Simulation config for one saturation cell: the perf fleet with the
/// approaches stretched so `density` vehicles fit single-file (8 m
/// spacing spread over the approach lanes).
pub fn saturation_config(density: usize, mode: &str) -> SimConfig {
    let mut config = fleet_config(EngineChoice::Auto, true);
    let needed = 8.0 * density as f64 / 12.0 + 120.0;
    config.geometry.approach_len = config.geometry.approach_len.max(needed);
    if mode == "capped256" {
        config.admission = AdmissionPolicy::bounded(LEGACY_WINDOW_CAP);
    }
    config
}

/// Measures one (density, mode) saturation cell on a fresh simulation.
pub fn measure_saturation(density: usize, mode: &'static str) -> SaturationPoint {
    let config = saturation_config(density, mode);
    config.validate().expect("saturation config valid");
    let pipelined = mode == "pipe";
    let mut sim = Simulation::new(config);
    let placed = sim.prespawn_fleet(density);
    let _ = sim.bench_window_throughput(1, pipelined); // warmup
    let (windows, sealed_plans) = sim.bench_window_throughput(SATURATION_WINDOWS, pipelined);
    let mut latencies: Vec<f64> = windows.iter().map(|w| w.latency_s * 1e3).collect();
    latencies.sort_by(f64::total_cmp);
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
    let last = windows.last().expect("at least one window");
    SaturationPoint {
        density,
        mode,
        placed,
        offered: last.offered,
        admitted: last.admitted,
        deferred: windows.iter().map(|w| w.deferred).sum(),
        sealed_plans,
        plans_per_window: sealed_plans as f64 / windows.len() as f64,
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
    }
}

/// Runs the density × mode saturation sweep.
pub fn saturation_sweep() -> Vec<SaturationPoint> {
    let mut points = Vec::new();
    for &density in &SATURATION_DENSITIES {
        for &mode in &SATURATION_MODES {
            points.push(measure_saturation(density, mode));
        }
    }
    points
}

/// Hardware threads on the measuring host (recorded in the baseline so
/// single-core CI numbers are not read as parallel speedups).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Serialises both sweeps: a header object, then one result per line —
/// variant cells carry a `"variant"` key, saturation cells a `"mode"`
/// key.
pub fn to_json(points: &[PerfPoint], saturation: &[SaturationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"nwade-perf-v1\",\"host_threads\":{},\"warmup_ticks\":{WARMUP_TICKS},\
         \"measured_ticks\":{MEASURED_TICKS},\"repeat_blocks\":{REPEAT_BLOCKS},\"sense_iters\":{SENSE_ITERS},\
         \"window_iters\":{WINDOW_ITERS},\"legacy_window_cap\":{LEGACY_WINDOW_CAP},\
         \"saturation_windows\":{SATURATION_WINDOWS}}}\n",
        host_threads()
    ));
    for p in points {
        out.push_str(&format!(
            "{{\"density\":{},\"variant\":\"{}\",\"placed\":{},\"tick_ms\":{:.4},\
             \"ticks_per_sec\":{:.2},\"sense_ms\":{:.4},\"window_ms\":{:.4},\
             \"window_requests_offered\":{},\"window_requests_scheduled\":{}}}\n",
            p.density,
            p.variant,
            p.placed,
            p.tick_ms,
            p.ticks_per_sec,
            p.sense_ms,
            p.window_ms,
            p.window_requests_offered,
            p.window_requests_scheduled,
        ));
    }
    for s in saturation {
        out.push_str(&format!(
            "{{\"density\":{},\"mode\":\"{}\",\"placed\":{},\"offered\":{},\"admitted\":{},\
             \"deferred\":{},\"sealed_plans\":{},\"plans_per_window\":{:.1},\
             \"p50_ms\":{:.4},\"p99_ms\":{:.4}}}\n",
            s.density,
            s.mode,
            s.placed,
            s.offered,
            s.admitted,
            s.deferred,
            s.sealed_plans,
            s.plans_per_window,
            s.p50_ms,
            s.p99_ms,
        ));
    }
    out
}

/// Path of the committed baseline at the repository root.
pub fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json")
}

fn render(points: &[PerfPoint]) -> String {
    let baseline_tick = |density: usize| {
        points
            .iter()
            .find(|p| p.density == density && p.variant == "baseline")
            .map(|p| p.tick_ms)
    };
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let speedup = baseline_tick(p.density)
                .filter(|&b| p.tick_ms > 0.0 && b > 0.0)
                .map_or_else(|| "-".into(), |b| format!("{:.2}x", b / p.tick_ms));
            vec![
                p.density.to_string(),
                p.variant.to_string(),
                p.placed.to_string(),
                format!("{:.4}", p.tick_ms),
                format!("{:.1}", p.ticks_per_sec),
                speedup,
                format!("{:.4}", p.sense_ms),
                format!("{:.4}", p.window_ms),
                format!(
                    "{}/{}",
                    p.window_requests_scheduled, p.window_requests_offered
                ),
            ]
        })
        .collect();
    crate::table::render(
        &[
            "density",
            "variant",
            "placed",
            "tick ms",
            "ticks/s",
            "speedup",
            "sense ms",
            "window ms",
            "win req",
        ],
        &rows,
    )
}

/// Lines naming every cell where admission took fewer requests than
/// were offered — caps must never bind silently.
fn cap_notes(points: &[PerfPoint]) -> Vec<String> {
    points
        .iter()
        .filter(|p| p.window_requests_offered > p.window_requests_scheduled)
        .map(|p| {
            format!(
                "note: admission bound at {}@{}: \
                 {} vehicles offered, {} scheduled",
                p.variant, p.density, p.window_requests_offered, p.window_requests_scheduled
            )
        })
        .collect()
}

fn render_saturation(points: &[SaturationPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|s| {
            vec![
                s.density.to_string(),
                s.mode.to_string(),
                s.placed.to_string(),
                format!("{}/{}", s.admitted, s.offered),
                s.deferred.to_string(),
                format!("{:.1}", s.plans_per_window),
                format!("{:.4}", s.p50_ms),
                format!("{:.4}", s.p99_ms),
            ]
        })
        .collect();
    crate::table::render(
        &[
            "density",
            "mode",
            "placed",
            "adm/off",
            "deferred",
            "plans/win",
            "p50 ms",
            "p99 ms",
        ],
        &rows,
    )
}

/// Runs both sweeps, rewrites `BENCH_perf.json`, and renders the
/// tables.
pub fn report() -> String {
    let points = sweep();
    let saturation = saturation_sweep();
    let json = to_json(&points, &saturation);
    let path = baseline_path();
    let status = match std::fs::write(&path, &json) {
        Ok(()) => format!("baseline written to {}", path.display()),
        Err(e) => format!("WARNING: could not write {}: {e}", path.display()),
    };
    let mut notes = cap_notes(&points);
    notes.push(status);
    format!(
        "Perf baseline ({} hardware threads)\n{}\n\
         Window saturation (modes: capped256 = legacy {LEGACY_WINDOW_CAP}-request cap, \
         seq = unbounded sequential, pipe = unbounded pipelined)\n{}\n{}",
        host_threads(),
        render(&points),
        render_saturation(&saturation),
        notes.join("\n")
    )
}

fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Regression gate: re-measures every point in the committed baseline
/// and fails if any cell's per-tick **or** per-window time regressed by
/// more than 2×. Window gating is skipped for baseline lines that
/// predate the `window_ms` field. Saturation cells up to
/// [`SATURATION_GUARD_MAX_DENSITY`] are re-measured too: their p99
/// window latency is gated at 2×, and any window that admitted fewer
/// requests than were offered **must** show a non-zero shed/deferral
/// counter — a silently binding cap fails the guard.
///
/// # Errors
///
/// Returns a description of the missing/corrupt baseline or the list of
/// regressed cells.
pub fn guard() -> Result<String, String> {
    let path = baseline_path();
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (generate it with `expgen perf` and commit it)",
            path.display()
        )
    })?;
    let ratio_of = |fresh: f64, committed: f64| {
        if committed > 0.0 {
            fresh / committed
        } else {
            1.0
        }
    };
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut fresh_ticks: Vec<(usize, &'static str, f64)> = Vec::new();
    for line in committed.lines().filter(|l| l.contains("\"variant\"")) {
        let density = json_num(line, "density")
            .ok_or_else(|| format!("baseline line missing density: {line}"))?
            as usize;
        let variant = json_str(line, "variant")
            .ok_or_else(|| format!("baseline line missing variant: {line}"))?;
        let committed_tick = json_num(line, "tick_ms")
            .ok_or_else(|| format!("baseline line missing tick_ms: {line}"))?;
        let committed_window = json_num(line, "window_ms");
        let &(label, engine, spatial_index) = VARIANTS
            .iter()
            .find(|v| v.0 == variant)
            .ok_or_else(|| format!("baseline names unknown variant '{variant}'"))?;
        let mut fresh = measure(density, label, engine, spatial_index);
        let mut tick_ratio = ratio_of(fresh.tick_ms, committed_tick);
        let mut window_ratio = committed_window.map(|cw| ratio_of(fresh.window_ms, cw));
        if tick_ratio > 2.0 || window_ratio.is_some_and(|r| r > 2.0) {
            // Shared CI hosts spike; only flag a cell regressed if it
            // exceeds the threshold on two consecutive measurements.
            // Metrics spike independently, so take each metric's best.
            let retry = measure(density, label, engine, spatial_index);
            fresh.tick_ms = fresh.tick_ms.min(retry.tick_ms);
            fresh.window_ms = fresh.window_ms.min(retry.window_ms);
            tick_ratio = ratio_of(fresh.tick_ms, committed_tick);
            window_ratio = committed_window.map(|cw| ratio_of(fresh.window_ms, cw));
        }
        if tick_ratio > 2.0 {
            failures.push(format!(
                "{label}@{density}: tick {committed_tick:.4} ms -> {:.4} ms ({tick_ratio:.2}x)",
                fresh.tick_ms
            ));
        }
        if let (Some(r), Some(cw)) = (window_ratio, committed_window) {
            if r > 2.0 {
                failures.push(format!(
                    "{label}@{density}: window {cw:.4} ms -> {:.4} ms ({r:.2}x)",
                    fresh.window_ms
                ));
            }
        }
        fresh_ticks.push((density, label, fresh.tick_ms));
        rows.push(vec![
            density.to_string(),
            label.to_string(),
            format!("{committed_tick:.4}"),
            format!("{:.4}", fresh.tick_ms),
            format!("{tick_ratio:.2}x"),
            committed_window.map_or_else(|| "-".into(), |cw| format!("{cw:.4}")),
            format!("{:.4}", fresh.window_ms),
            window_ratio.map_or_else(|| "-".into(), |r| format!("{r:.2}x")),
        ]);
    }
    if rows.is_empty() {
        return Err(format!("no result lines found in {}", path.display()));
    }
    // Small-fleet cutoff assertion: below the measured crossover floor
    // `Auto` resolves to the serial path, so its per-tick time must
    // track serial's — a large gap means the cutoff regressed and Auto
    // is spawning threads for fleets where they measurably lose.
    let tick_of = |density: usize, variant: &str| {
        fresh_ticks
            .iter()
            .find(|(d, v, _)| *d == density && *v == variant)
            .map(|(_, _, t)| *t)
    };
    for &(density, _, _) in fresh_ticks
        .iter()
        .filter(|(d, v, _)| *d < nwade_sim::engine::AUTO_SERIAL_FLOOR && *v == "auto")
    {
        let (Some(serial), Some(auto)) = (tick_of(density, "serial"), tick_of(density, "auto"))
        else {
            continue;
        };
        let mut ratio = if serial > 0.0 { auto / serial } else { 1.0 };
        if ratio > 2.0 {
            // Same spike-tolerance policy as the per-cell gates: one
            // re-measurement before declaring a regression.
            let retry = measure(density, "auto", EngineChoice::Auto, true);
            ratio = if serial > 0.0 {
                auto.min(retry.tick_ms) / serial
            } else {
                1.0
            };
        }
        if ratio > 2.0 {
            failures.push(format!(
                "auto@{density}: {auto:.4} ms vs serial {serial:.4} ms ({ratio:.2}x) — \
                 auto must stay on the serial path below {} vehicles",
                nwade_sim::engine::AUTO_SERIAL_FLOOR
            ));
        }
    }
    // Saturation cells: shed counters must account for every admission
    // gap, and p99 window latency gates at the same 2× threshold.
    let mut sat_rows = Vec::new();
    for line in committed.lines().filter(|l| l.contains("\"mode\"")) {
        let density = json_num(line, "density")
            .ok_or_else(|| format!("saturation line missing density: {line}"))?
            as usize;
        let mode = json_str(line, "mode")
            .ok_or_else(|| format!("saturation line missing mode: {line}"))?;
        let committed_p99 = json_num(line, "p99_ms")
            .ok_or_else(|| format!("saturation line missing p99_ms: {line}"))?;
        let &mode = SATURATION_MODES
            .iter()
            .find(|m| **m == mode)
            .ok_or_else(|| format!("baseline names unknown saturation mode '{mode}'"))?;
        if density > SATURATION_GUARD_MAX_DENSITY {
            sat_rows.push(vec![
                density.to_string(),
                mode.to_string(),
                "-".into(),
                format!("{committed_p99:.4}"),
                "-".into(),
                "skipped".into(),
            ]);
            continue;
        }
        let mut fresh = measure_saturation(density, mode);
        if fresh.admitted < fresh.offered && fresh.deferred == 0 {
            failures.push(format!(
                "{mode}@{density}: admitted {} of {} offered requests with no \
                 shed/deferral counter increment — a cap is binding silently",
                fresh.admitted, fresh.offered
            ));
        }
        let mut p99_ratio = ratio_of(fresh.p99_ms, committed_p99);
        if p99_ratio > 2.0 {
            // Same spike-tolerance policy as the per-cell gates above.
            let retry = measure_saturation(density, mode);
            fresh.p99_ms = fresh.p99_ms.min(retry.p99_ms);
            p99_ratio = ratio_of(fresh.p99_ms, committed_p99);
        }
        if p99_ratio > 2.0 {
            failures.push(format!(
                "{mode}@{density}: p99 window {committed_p99:.4} ms -> {:.4} ms ({p99_ratio:.2}x)",
                fresh.p99_ms
            ));
        }
        sat_rows.push(vec![
            density.to_string(),
            mode.to_string(),
            format!("{}/{}", fresh.admitted, fresh.offered),
            format!("{committed_p99:.4}"),
            format!("{:.4}", fresh.p99_ms),
            format!("{p99_ratio:.2}x"),
        ]);
    }
    let table = crate::table::render(
        &[
            "density",
            "variant",
            "tick base ms",
            "tick ms",
            "tick ratio",
            "win base ms",
            "win ms",
            "win ratio",
        ],
        &rows,
    );
    let sat_table = if sat_rows.is_empty() {
        String::new()
    } else {
        format!(
            "\n{}",
            crate::table::render(
                &[
                    "density",
                    "mode",
                    "adm/off",
                    "p99 base ms",
                    "p99 ms",
                    "p99 ratio",
                ],
                &sat_rows,
            )
        )
    };
    if failures.is_empty() {
        Ok(format!(
            "Perf guard: all cells within 2x of baseline\n{table}{sat_table}"
        ))
    } else {
        Err(format!(
            "perf regression (>2x slowdown vs committed baseline):\n  {}\n{table}{sat_table}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_config_is_valid() {
        for &(_, engine, grid) in &VARIANTS {
            fleet_config(engine, grid).validate().expect("valid");
        }
    }

    #[test]
    fn json_round_trip_scans_back() {
        let point = PerfPoint {
            density: 50,
            variant: "serial",
            placed: 50,
            tick_ms: 1.25,
            ticks_per_sec: 800.0,
            sense_ms: 0.5,
            window_ms: 0.75,
            window_requests_offered: 60,
            window_requests_scheduled: 50,
        };
        let sat = SaturationPoint {
            density: 1000,
            mode: "capped256",
            placed: 1000,
            offered: 1000,
            admitted: 256,
            deferred: 744,
            sealed_plans: 1536,
            plans_per_window: 256.0,
            p50_ms: 3.5,
            p99_ms: 4.25,
        };
        let json = to_json(std::slice::from_ref(&point), std::slice::from_ref(&sat));
        let line = json
            .lines()
            .find(|l| l.contains("\"variant\""))
            .expect("result line");
        assert_eq!(json_num(line, "density"), Some(50.0));
        assert_eq!(json_str(line, "variant").as_deref(), Some("serial"));
        assert_eq!(json_num(line, "tick_ms"), Some(1.25));
        assert_eq!(json_num(line, "window_ms"), Some(0.75));
        assert_eq!(json_num(line, "window_requests_offered"), Some(60.0));
        assert_eq!(json_num(line, "window_requests_scheduled"), Some(50.0));
        let sat_line = json
            .lines()
            .find(|l| l.contains("\"mode\""))
            .expect("saturation line");
        assert_eq!(json_num(sat_line, "density"), Some(1000.0));
        assert_eq!(json_str(sat_line, "mode").as_deref(), Some("capped256"));
        assert_eq!(json_num(sat_line, "admitted"), Some(256.0));
        assert_eq!(json_num(sat_line, "deferred"), Some(744.0));
        assert_eq!(json_num(sat_line, "p99_ms"), Some(4.25));
        assert!(
            !sat_line.contains("\"variant\""),
            "saturation lines must not parse as variant cells"
        );
        // Truncated batches are called out, never silent.
        let notes = cap_notes(&[point]);
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("60 vehicles offered, 50 scheduled"));
    }

    #[test]
    fn header_records_host_and_caps() {
        let json = to_json(&[], &[]);
        let header = json.lines().next().expect("header");
        assert!(header.contains("\"schema\":\"nwade-perf-v1\""));
        assert!(header.contains("\"host_threads\":"));
        assert!(header.contains(&format!("\"legacy_window_cap\":{LEGACY_WINDOW_CAP}")));
        assert!(header.contains(&format!("\"saturation_windows\":{SATURATION_WINDOWS}")));
    }

    #[test]
    fn measure_small_fleet_produces_sane_point() {
        let point = measure(8, "serial", EngineChoice::Serial, true);
        assert_eq!(point.density, 8);
        assert_eq!(point.placed, 8);
        assert!(point.tick_ms > 0.0);
        assert!(point.sense_ms >= 0.0);
        assert!(point.window_requests_scheduled > 0);
        // Unbounded admission: the whole offered batch is scheduled.
        assert_eq!(
            point.window_requests_offered,
            point.window_requests_scheduled
        );
    }

    #[test]
    fn saturation_config_scales_and_caps() {
        let capped = saturation_config(10_000, "capped256");
        assert_eq!(capped.admission.max_batch, Some(LEGACY_WINDOW_CAP));
        assert!(
            capped.geometry.approach_len > 6000.0,
            "approaches must stretch to fit 10k vehicles single-file"
        );
        let seq = saturation_config(50, "seq");
        assert_eq!(seq.admission.max_batch, None);
        capped.validate().expect("capped config valid");
        seq.validate().expect("seq config valid");
    }

    /// A tiny saturation cell under each mode: the capped mode must
    /// defer (and say so), and both unbounded modes must seal every
    /// offered plan.
    #[test]
    fn saturation_measures_small_fleet() {
        let mut config = saturation_config(12, "seq");
        config.admission = AdmissionPolicy::bounded(5);
        config.validate().expect("valid");
        let mut sim = Simulation::new(config);
        let placed = sim.prespawn_fleet(12);
        assert_eq!(placed, 12);
        let (windows, _sealed) = sim.bench_window_throughput(2, false);
        assert!(windows.iter().all(|w| w.admitted <= 5));
        assert!(
            windows.iter().any(|w| w.deferred > 0),
            "a binding cap must surface in the deferral counter"
        );

        let point = measure_saturation(12, "pipe");
        assert_eq!(point.placed, 12);
        assert_eq!(point.deferred, 0);
        assert_eq!(point.offered, point.admitted);
        assert!(point.sealed_plans > 0);
        assert!(point.p99_ms >= point.p50_ms);
    }
}
