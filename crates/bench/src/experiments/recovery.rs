//! Recovery sweep: warm (WAL + snapshot) vs cold restart at every
//! labelled crash point. Not a paper figure — this is the repo's own
//! durability harness. Each cell kills the manager mid-window while a
//! V1 attack has incident reporters waiting on it, then measures what
//! the fleet experiences: recovery latency (crash → next block
//! broadcast), timeout self-evacuations, readmissions, and tick-time
//! safety-invariant violations (which must stay zero on both paths).
//! The warm rows must show zero evacuations where the cold rows
//! evacuate the fleet — that contrast is the point of the store.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade::CrashPoint;
use nwade_sim::{run_rounds, CrashPlan, SimConfig};

/// Every labelled crash point is swept.
pub const CRASH_POINTS: [CrashPoint; 3] = [
    CrashPoint::AfterStage,
    CrashPoint::BeforeCommit,
    CrashPoint::AfterCommit,
];

/// Downtime a cold restart imposes before the manager answers again.
pub const COLD_DOWNTIME: f64 = 20.0;

/// One (crash point, recovery mode) cell, averaged over rounds.
#[derive(Debug, Clone)]
pub struct Point {
    /// Crash point label.
    pub point: CrashPoint,
    /// `"warm"` (store enabled) or `"cold"` (store disabled).
    pub mode: &'static str,
    /// Rounds in which the injected crash actually fired.
    pub crashes: usize,
    /// Warm recoveries summed over rounds.
    pub warm_recoveries: usize,
    /// Cold recoveries summed over rounds.
    pub cold_recoveries: usize,
    /// Mean crash → next-block-broadcast latency, seconds, over rounds
    /// that observed one.
    pub recovery_latency_s: Option<f64>,
    /// Mean `ImTimeout` self-evacuations per round.
    pub timeout_evacuations: f64,
    /// Mean outage readmissions per round.
    pub readmissions: f64,
    /// Total safety-invariant violations across rounds (must be 0).
    pub invariant_violations: usize,
    /// Mean throughput, vehicles/minute.
    pub throughput: f64,
}

fn crash_config(duration: f64, point: CrashPoint, store: bool) -> SimConfig {
    let mut config = with_attack(base_config(duration), AttackSetting::V1);
    // Crash on the window the attack starts, so the incident reports
    // fall into the dark window on the cold path.
    let at = config.attack.as_ref().map_or(30.0, |a| a.start);
    config.im_crash = Some(CrashPlan {
        at,
        point,
        cold_downtime: COLD_DOWNTIME,
    });
    config.store.enabled = store;
    config
}

fn measure(rounds: u64, duration: f64, point: CrashPoint, store: bool) -> Point {
    let summary = run_rounds(&crash_config(duration, point, store), rounds);
    let n = summary.rounds.len().max(1) as f64;
    let latencies: Vec<f64> = summary
        .rounds
        .iter()
        .filter_map(|r| r.metrics.im_recovery_latency)
        .collect();
    Point {
        point,
        mode: if store { "warm" } else { "cold" },
        crashes: summary.rounds.iter().map(|r| r.metrics.im_crashes).sum(),
        warm_recoveries: summary
            .rounds
            .iter()
            .map(|r| r.metrics.warm_recoveries)
            .sum(),
        cold_recoveries: summary
            .rounds
            .iter()
            .map(|r| r.metrics.cold_recoveries)
            .sum(),
        recovery_latency_s: if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        },
        timeout_evacuations: summary
            .rounds
            .iter()
            .map(|r| r.metrics.im_timeout_evacuations as f64)
            .sum::<f64>()
            / n,
        readmissions: summary
            .rounds
            .iter()
            .map(|r| r.metrics.readmitted_after_outage as f64)
            .sum::<f64>()
            / n,
        invariant_violations: summary
            .rounds
            .iter()
            .map(|r| r.metrics.invariants.total())
            .sum(),
        throughput: summary.mean_throughput(),
    }
}

/// Runs the full crash-point × mode sweep.
pub fn sweep(rounds: u64, duration: f64) -> Vec<Point> {
    let mut points = Vec::new();
    for &point in &CRASH_POINTS {
        for &store in &[true, false] {
            points.push(measure(rounds, duration, point, store));
        }
    }
    points
}

/// Serialises the sweep: a header object, then one result per line.
pub fn to_json(rounds: u64, duration: f64, points: &[Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"nwade-recovery-v1\",\"rounds\":{rounds},\"duration\":{duration},\
         \"cold_downtime\":{COLD_DOWNTIME}}}\n"
    ));
    for p in points {
        out.push_str(&format!(
            "{{\"crash_point\":\"{}\",\"mode\":\"{}\",\"crashes\":{},\"warm_recoveries\":{},\
             \"cold_recoveries\":{},\"recovery_latency_s\":{},\"timeout_evacuations\":{:.2},\
             \"readmissions\":{:.2},\"invariant_violations\":{},\"throughput\":{:.2}}}\n",
            p.point,
            p.mode,
            p.crashes,
            p.warm_recoveries,
            p.cold_recoveries,
            p.recovery_latency_s
                .map_or("null".into(), |l| format!("{l:.3}")),
            p.timeout_evacuations,
            p.readmissions,
            p.invariant_violations,
            p.throughput,
        ));
    }
    out
}

/// Path of the committed sweep results at the repository root.
pub fn results_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json")
}

/// Runs the sweep, rewrites `BENCH_recovery.json`, and renders the
/// table.
pub fn report(rounds: u64, duration: f64) -> String {
    let points = sweep(rounds, duration);
    let json = to_json(rounds, duration, &points);
    let path = results_path();
    let status = match std::fs::write(&path, &json) {
        Ok(()) => format!("results written to {}", path.display()),
        Err(e) => format!("WARNING: could not write {}: {e}", path.display()),
    };
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.point.to_string(),
                p.mode.to_string(),
                p.crashes.to_string(),
                format!("{}/{}", p.warm_recoveries, p.cold_recoveries),
                p.recovery_latency_s
                    .map_or("n/a".into(), |l| format!("{l:.2} s")),
                format!("{:.1}", p.timeout_evacuations),
                format!("{:.1}", p.readmissions),
                p.invariant_violations.to_string(),
                format!("{:.1}/min", p.throughput),
            ]
        })
        .collect();
    format!(
        "Recovery sweep: warm (WAL) vs cold restart per crash point ({rounds} rounds/cell)\n{}\n{status}",
        render(
            &[
                "Crash point",
                "Mode",
                "Crashes",
                "Warm/cold rec",
                "Recovery latency",
                "Timeout evac",
                "Readmitted",
                "Invariant viol.",
                "Throughput",
            ],
            &body
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_configs_are_valid() {
        for &point in &CRASH_POINTS {
            for &store in &[true, false] {
                crash_config(150.0, point, store)
                    .validate()
                    .expect("valid recovery config");
            }
        }
    }

    #[test]
    fn json_has_header_and_rows() {
        let point = Point {
            point: CrashPoint::BeforeCommit,
            mode: "warm",
            crashes: 3,
            warm_recoveries: 3,
            cold_recoveries: 0,
            recovery_latency_s: Some(0.0),
            timeout_evacuations: 0.0,
            readmissions: 0.0,
            invariant_violations: 0,
            throughput: 30.0,
        };
        let json = to_json(3, 150.0, std::slice::from_ref(&point));
        let mut lines = json.lines();
        assert!(lines
            .next()
            .expect("header")
            .contains("\"schema\":\"nwade-recovery-v1\""));
        let row = lines.next().expect("row");
        assert!(row.contains("\"crash_point\":\"before-commit\""));
        assert!(row.contains("\"mode\":\"warm\""));
        assert!(row.contains("\"recovery_latency_s\":0.000"));
    }
}
