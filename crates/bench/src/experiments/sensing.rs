//! §VI-A's sensing-radius sweep: the paper varies the vehicles'
//! perception range from 300 ft to 1000 ft. Detection must hold at every
//! range; latency may grow as watchers see less.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade_geometry::feet_to_meters;
use nwade_sim::run_rounds;

/// Sensing radii swept, in feet (as quoted by the paper).
pub const RADII_FT: [f64; 4] = [300.0, 500.0, 750.0, 1000.0];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sensing radius in feet.
    pub radius_ft: f64,
    /// Detection rate of the V1 violation.
    pub detection_rate: f64,
    /// Mean detection latency, seconds.
    pub latency_s: Option<f64>,
}

/// Runs the sweep.
pub fn points(rounds: u64, duration: f64) -> Vec<Point> {
    RADII_FT
        .iter()
        .map(|&radius_ft| {
            let mut config = with_attack(base_config(duration), AttackSetting::V1);
            config.nwade.sensing_radius = feet_to_meters(radius_ft);
            let summary = run_rounds(&config, rounds);
            Point {
                radius_ft,
                detection_rate: summary.detection_rate(),
                latency_s: summary.mean_detection_latency(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn report(rounds: u64, duration: f64) -> String {
    let body: Vec<Vec<String>> = points(rounds, duration)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.0} ft", p.radius_ft),
                format!("{:.0}%", p.detection_rate * 100.0),
                p.latency_s.map_or("n/a".into(), |l| format!("{:.2} s", l)),
            ]
        })
        .collect();
    format!(
        "Sensing-radius sweep (§VI-A), V1 attack ({rounds} rounds/point)\n{}",
        render(&["Sensing radius", "Detection rate", "Mean latency"], &body)
    )
}
