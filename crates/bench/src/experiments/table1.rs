//! Table I: the attack settings (a configuration table — regenerated
//! from the implementation so the code and the paper stay in sync).

use crate::table::render;
use nwade::attack::AttackSetting;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Setting label.
    pub setting: String,
    /// Number of malicious vehicles.
    pub malicious_vehicles: usize,
    /// Manager state.
    pub intersection_manager: &'static str,
    /// Staged plan violations.
    pub plan_violations: usize,
    /// Staged false reports.
    pub false_reports: usize,
}

/// Generates the table rows.
pub fn rows() -> Vec<Row> {
    AttackSetting::ALL
        .iter()
        .map(|s| Row {
            setting: s.label().to_string(),
            malicious_vehicles: s.malicious_vehicles(),
            intersection_manager: if s.im_malicious() {
                "Malicious"
            } else {
                "Benign"
            },
            plan_violations: s.plan_violations(),
            false_reports: s.false_reports(),
        })
        .collect()
}

/// Renders Table I.
pub fn report() -> String {
    let body: Vec<Vec<String>> = rows()
        .into_iter()
        .map(|r| {
            vec![
                r.setting,
                r.malicious_vehicles.to_string(),
                r.intersection_manager.to_string(),
                r.plan_violations.to_string(),
                r.false_reports.to_string(),
            ]
        })
        .collect();
    format!(
        "Table I: Attack Settings\n{}",
        render(
            &[
                "Setting",
                "Malicious vehicles",
                "Intersection manager",
                "Plan violations",
                "False reports",
            ],
            &body,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_rows_matching_paper() {
        let rows = rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].setting, "V1");
        assert_eq!(rows[5].setting, "IM");
        assert_eq!(rows[5].malicious_vehicles, 0);
        assert_eq!(rows[5].intersection_manager, "Malicious");
        assert_eq!(rows[10].false_reports, 9);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("IM_V10"));
        assert!(r.contains("Benign"));
    }
}
