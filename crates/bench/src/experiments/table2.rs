//! Table II: false-alarm trigger and detection rates per attack setting.

use crate::experiments::{base_config, with_attack};
use crate::table::render;
use nwade::attack::AttackSetting;
use nwade_sim::run_rounds;

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Row {
    /// Setting label.
    pub setting: String,
    /// Type A (false vehicle accusation) trigger rate.
    pub a_trigger: f64,
    /// Type A detection rate.
    pub a_detect: f64,
    /// Type B (false conflicting-plans claim) trigger rate, `None` for
    /// the IM settings where the paper reports N/A.
    pub b_trigger: Option<f64>,
    /// Type B detection rate.
    pub b_detect: Option<f64>,
}

/// Runs the Table II measurement.
pub fn rows(rounds: u64, duration: f64) -> Vec<Row> {
    AttackSetting::ALL
        .iter()
        .filter(|s| s.false_reports() > 0 || s.im_malicious())
        .map(|s| {
            let config = with_attack(base_config(duration), *s);
            let summary = run_rounds(&config, rounds);
            let has_type_a = s.false_reports() > 0;
            let has_type_b = has_type_a && !s.im_malicious();
            Row {
                setting: s.label().to_string(),
                a_trigger: summary.false_alarm_a_trigger_rate(),
                // With no false report staged, detection is vacuous —
                // the paper's IM / IM_V1 rows likewise read 0% / 100%.
                a_detect: if has_type_a {
                    summary.false_alarm_a_detection_rate()
                } else {
                    1.0
                },
                b_trigger: has_type_b.then(|| summary.false_alarm_b_trigger_rate()),
                b_detect: has_type_b.then(|| summary.false_alarm_b_detection_rate()),
            }
        })
        .collect()
}

fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// Renders Table II.
pub fn report(rounds: u64, duration: f64) -> String {
    let body: Vec<Vec<String>> = rows(rounds, duration)
        .into_iter()
        .map(|r| {
            vec![
                r.setting,
                pct(r.a_trigger),
                pct(r.a_detect),
                r.b_trigger.map_or("N/A".into(), pct),
                r.b_detect.map_or("N/A".into(), pct),
            ]
        })
        .collect();
    format!(
        "Table II: False Alarm Rate ({rounds} rounds, {duration:.0}s each)\n{}",
        render(
            &["Setting", "A trigger", "A detect", "B trigger", "B detect"],
            &body,
        )
    )
}
