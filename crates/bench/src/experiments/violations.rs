//! Violation-kind sweep: the paper's threat (i) covers "moving faster or
//! pressing the brake" and the Fig. 1a lane change; detection must hold
//! for every modeled misbehaviour.

use crate::experiments::base_config;
use crate::table::render;
use nwade::attack::{AttackSetting, ViolationKind};
use nwade_sim::{run_rounds, AttackPlan};

/// One violation kind's results.
#[derive(Debug, Clone)]
pub struct Row {
    /// The misbehaviour.
    pub kind: ViolationKind,
    /// Detection rate over the rounds.
    pub detection_rate: f64,
    /// Mean detection latency, seconds.
    pub latency_s: Option<f64>,
}

/// Runs the sweep (V1, default density).
pub fn rows(rounds: u64, duration: f64) -> Vec<Row> {
    ViolationKind::ALL
        .iter()
        .map(|&kind| {
            let mut config = base_config(duration);
            config.attack = Some(AttackPlan {
                setting: AttackSetting::V1,
                violation: kind,
                start: (duration * 0.4).max(30.0),
            });
            let summary = run_rounds(&config, rounds);
            Row {
                kind,
                detection_rate: summary.detection_rate(),
                latency_s: summary.mean_detection_latency(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn report(rounds: u64, duration: f64) -> String {
    let body: Vec<Vec<String>> = rows(rounds, duration)
        .into_iter()
        .map(|r| {
            vec![
                format!("{:?}", r.kind),
                format!("{:.0}%", r.detection_rate * 100.0),
                r.latency_s.map_or("n/a".into(), |l| format!("{l:.2} s")),
            ]
        })
        .collect();
    format!(
        "Violation-kind sweep, V1 attack ({rounds} rounds/kind)\n{}",
        render(&["Violation", "Detection rate", "Mean latency"], &body)
    )
}
