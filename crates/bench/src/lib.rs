//! Experiment harness regenerating every table and figure of the NWADE
//! paper (§VI).
//!
//! Each experiment lives in its own module and returns a plain data
//! structure plus a text rendering, so the same code drives:
//!
//! * the `expgen` binary (`cargo run --release -p nwade-bench --bin
//!   expgen -- <experiment>`),
//! * the Criterion benches in `benches/`,
//! * the workspace integration tests that assert the reproduced *shape*
//!   (who wins, what is detected, what stays flat).
//!
//! Runtime knobs: experiments honour `NWADE_ROUNDS` (rounds per setting,
//! default 10 like the paper) and `NWADE_DURATION` (seconds per round)
//! so CI can run quick passes while the full regeneration matches the
//! paper's protocol.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use experiments::{
    analytic, chaos, city, detect, fig4, fig5, fig6, fig7, fig8, perf, recovery, sensing, table1,
    table2, violations,
};

/// Rounds per configuration (paper: 10). Override with `NWADE_ROUNDS`.
pub fn rounds() -> u64 {
    std::env::var("NWADE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Simulated seconds per round. Override with `NWADE_DURATION`.
pub fn duration() -> f64 {
    std::env::var("NWADE_DURATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150.0)
}
