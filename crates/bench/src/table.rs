//! Minimal fixed-width text table rendering for experiment output.

/// Renders rows of cells as a fixed-width table with a header rule.
///
/// ```
/// let t = nwade_bench::table::render(
///     &["name", "value"],
///     &[vec!["x".into(), "1".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.contains("----"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::render;

    #[test]
    fn columns_are_aligned() {
        let t = render(
            &["name", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width in the first column.
        assert!(lines[2].starts_with("x     "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn handles_empty_rows() {
        let t = render(&["only"], &[]);
        assert_eq!(t.lines().count(), 2);
    }
}
