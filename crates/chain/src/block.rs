//! The block structure `B_i = ⟨s_i, h_{i−1}, τ_i, R_i⟩`.

use bytes::{Buf, BufMut, BytesMut};
use nwade_aim::TravelPlan;
use nwade_crypto::merkle::leaf_hash;
use nwade_crypto::{sha256, Digest, MerkleTree};
use nwade_traffic::VehicleId;

/// A neighbour intersection's chain tip, embedded into a block for
/// cross-shard anchoring: once block `B_i` of shard A carries shard B's
/// tip, rewriting B's history up to that tip also requires forging A's
/// chain (and transitively the whole city's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardAnchor {
    /// The neighbour shard's identifier.
    pub shard: u32,
    /// That shard's chain-tip hash at observation time.
    pub tip: Digest,
}

/// One block of the travel-plan blockchain.
///
/// The block carries the plans themselves alongside the Merkle root so
/// that receivers can recompute `R_i` and serve individual plans (with
/// inclusion proofs) to neighbours. Multi-intersection deployments add
/// an `anchors` section — neighbour chain tips covered by the signature
/// and the block hash; single-intersection blocks carry none.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    index: u64,
    signature: Vec<u8>,
    prev_hash: Digest,
    timestamp: f64,
    merkle_root: Digest,
    plans: Vec<TravelPlan>,
    anchors: Vec<ShardAnchor>,
}

impl Block {
    /// Assembles an anchor-free block from parts (used by the packager
    /// and by tamper helpers; verification treats every field as
    /// untrusted).
    pub fn from_parts(
        index: u64,
        signature: Vec<u8>,
        prev_hash: Digest,
        timestamp: f64,
        merkle_root: Digest,
        plans: Vec<TravelPlan>,
    ) -> Self {
        Block::from_parts_anchored(
            index,
            signature,
            prev_hash,
            timestamp,
            merkle_root,
            plans,
            Vec::new(),
        )
    }

    /// Assembles a block carrying cross-shard anchors.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_anchored(
        index: u64,
        signature: Vec<u8>,
        prev_hash: Digest,
        timestamp: f64,
        merkle_root: Digest,
        plans: Vec<TravelPlan>,
        anchors: Vec<ShardAnchor>,
    ) -> Self {
        Block {
            index,
            signature,
            prev_hash,
            timestamp,
            merkle_root,
            plans,
            anchors,
        }
    }

    /// Position of the block in the chain (0 = genesis window).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The manager's signature `s_i`.
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// Hash of the previous block `h_{i−1}` ([`Digest::ZERO`] for the
    /// first block).
    pub fn prev_hash(&self) -> Digest {
        self.prev_hash
    }

    /// Block timestamp `τ_i` in simulation seconds.
    pub fn timestamp(&self) -> f64 {
        self.timestamp
    }

    /// Merkle root `R_i` over the plans.
    pub fn merkle_root(&self) -> Digest {
        self.merkle_root
    }

    /// The travel plans packaged in this window.
    pub fn plans(&self) -> &[TravelPlan] {
        &self.plans
    }

    /// The plan for `vehicle`, if present in this block.
    pub fn plan_for(&self, vehicle: VehicleId) -> Option<&TravelPlan> {
        self.plans.iter().find(|p| p.id() == vehicle)
    }

    /// Neighbour chain tips anchored into this block (empty for
    /// single-intersection chains).
    pub fn anchors(&self) -> &[ShardAnchor] {
        &self.anchors
    }

    /// Appends the anchor section in its canonical layout:
    /// `[u16 count][(u32 shard)(32B tip)]…`.
    fn put_anchors(buf: &mut BytesMut, anchors: &[ShardAnchor]) {
        buf.put_u16(anchors.len() as u16);
        for a in anchors {
            buf.put_u32(a.shard);
            buf.put_slice(a.tip.as_bytes());
        }
    }

    /// The digest the manager signs for an anchor-free block:
    /// `SHA-256(index ‖ h_{i−1} ‖ τ_i ‖ R_i ‖ anchors)`.
    pub fn signing_digest(index: u64, prev_hash: &Digest, timestamp: f64, root: &Digest) -> Digest {
        Block::signing_digest_anchored(index, prev_hash, timestamp, root, &[])
    }

    /// The digest the manager signs, covering the anchored neighbour
    /// tips alongside the header fields.
    pub fn signing_digest_anchored(
        index: u64,
        prev_hash: &Digest,
        timestamp: f64,
        root: &Digest,
        anchors: &[ShardAnchor],
    ) -> Digest {
        let mut buf = BytesMut::with_capacity(82 + anchors.len() * 36);
        buf.put_u64(index);
        buf.put_slice(prev_hash.as_bytes());
        buf.put_f64(timestamp);
        buf.put_slice(root.as_bytes());
        Block::put_anchors(&mut buf, anchors);
        sha256(&buf)
    }

    /// This block's signing digest (over its own header fields).
    pub fn own_signing_digest(&self) -> Digest {
        Block::signing_digest_anchored(
            self.index,
            &self.prev_hash,
            self.timestamp,
            &self.merkle_root,
            &self.anchors,
        )
    }

    /// The block hash `hash(B_i)` that the next block's `h_i` must match:
    /// `SHA-256(s_i ‖ index ‖ h_{i−1} ‖ τ_i ‖ R_i ‖ anchors)`.
    pub fn hash(&self) -> Digest {
        let mut buf = BytesMut::with_capacity(self.signature.len() + 82 + self.anchors.len() * 36);
        buf.put_slice(&self.signature);
        buf.put_u64(self.index);
        buf.put_slice(self.prev_hash.as_bytes());
        buf.put_f64(self.timestamp);
        buf.put_slice(self.merkle_root.as_bytes());
        Block::put_anchors(&mut buf, &self.anchors);
        sha256(&buf)
    }

    /// Recomputes the Merkle root from the carried plans.
    pub fn computed_root(&self) -> Digest {
        Block::root_of(&self.plans)
    }

    /// The Merkle root of a plan batch (Fig. 3 leaf ordering).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch — the manager never emits empty blocks.
    pub fn root_of(plans: &[TravelPlan]) -> Digest {
        MerkleTree::from_leaf_hashes(plans.iter().map(|p| leaf_hash(&p.encode())).collect()).root()
    }

    /// Builds the Merkle tree over the carried plans, for proof
    /// extraction.
    pub fn merkle_tree(&self) -> MerkleTree {
        MerkleTree::from_leaf_hashes(self.plans.iter().map(|p| leaf_hash(&p.encode())).collect())
    }

    /// Canonical byte encoding of the whole block (header + carried
    /// plans + anchors), used by the WAL and shareable with future
    /// networking:
    /// `[u64 index][u16 sig len][sig][32B prev][f64 τ][32B root]
    /// [u16 plan count][plan…][u16 anchor count][(u32 shard)(32B tip)…]`
    /// with each plan in its [`TravelPlan::encode`] layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128 + self.plans.len() * 160);
        buf.put_u64(self.index);
        buf.put_u16(self.signature.len() as u16);
        buf.put_slice(&self.signature);
        buf.put_slice(self.prev_hash.as_bytes());
        buf.put_f64(self.timestamp);
        buf.put_slice(self.merkle_root.as_bytes());
        buf.put_u16(self.plans.len() as u16);
        for plan in &self.plans {
            buf.put_slice(&plan.encode());
        }
        Block::put_anchors(&mut buf, &self.anchors);
        buf.to_vec()
    }

    /// Decodes one block from the front of `cursor`, advancing it past
    /// the consumed bytes. Returns `None` on truncated or malformed
    /// input; never panics. The decoded block's fields are carried
    /// verbatim — like [`Block::from_parts`], nothing is trusted until
    /// verification checks the signature, root and chain link.
    pub fn decode_from(cursor: &mut &[u8]) -> Option<Self> {
        let index = cursor.try_get_u64().ok()?;
        let sig_len = cursor.try_get_u16().ok()? as usize;
        if cursor.remaining() < sig_len {
            return None;
        }
        let signature = cursor[..sig_len].to_vec();
        *cursor = &cursor[sig_len..];
        let mut prev = [0u8; 32];
        cursor.try_copy_to_slice(&mut prev).ok()?;
        let timestamp = cursor.try_get_f64().ok()?;
        let mut root = [0u8; 32];
        cursor.try_copy_to_slice(&mut root).ok()?;
        let n_plans = cursor.try_get_u16().ok()? as usize;
        let mut plans = Vec::with_capacity(n_plans.min(256));
        for _ in 0..n_plans {
            plans.push(TravelPlan::decode_from(cursor)?);
        }
        let n_anchors = cursor.try_get_u16().ok()? as usize;
        let mut anchors = Vec::with_capacity(n_anchors.min(256));
        for _ in 0..n_anchors {
            let shard = cursor.try_get_u32().ok()?;
            let mut tip = [0u8; 32];
            cursor.try_copy_to_slice(&mut tip).ok()?;
            anchors.push(ShardAnchor {
                shard,
                tip: Digest(tip),
            });
        }
        Some(Block {
            index,
            signature,
            prev_hash: Digest(prev),
            timestamp,
            merkle_root: Digest(root),
            plans,
            anchors,
        })
    }

    /// Decodes an encoding produced by [`Block::encode`], rejecting
    /// trailing bytes: `decode(encode(b)) == Some(b)` for any block,
    /// and any strict prefix decodes to `None`.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = bytes;
        let block = Block::decode_from(&mut cursor)?;
        cursor.is_empty().then_some(block)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    pub(crate) fn plans(n: u64) -> Vec<TravelPlan> {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let mut s = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
        (0..n)
            .flat_map(|i| {
                s.schedule(
                    &[PlanRequest {
                        id: VehicleId::new(i),
                        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(i)),
                        movement: MovementId::new((i % 16) as u16),
                        position_s: 0.0,
                        speed: 15.0,
                    }],
                    i as f64 * 4.0,
                )
            })
            .collect()
    }

    fn block() -> Block {
        let ps = plans(4);
        let root = Block::root_of(&ps);
        Block::from_parts(3, vec![1, 2, 3], Digest::ZERO, 12.5, root, ps)
    }

    #[test]
    fn accessors() {
        let b = block();
        assert_eq!(b.index(), 3);
        assert_eq!(b.signature(), &[1, 2, 3]);
        assert_eq!(b.prev_hash(), Digest::ZERO);
        assert_eq!(b.timestamp(), 12.5);
        assert_eq!(b.plans().len(), 4);
        assert!(b.plan_for(VehicleId::new(2)).is_some());
        assert!(b.plan_for(VehicleId::new(99)).is_none());
    }

    #[test]
    fn root_matches_computed() {
        let b = block();
        assert_eq!(b.merkle_root(), b.computed_root());
        assert_eq!(b.merkle_tree().root(), b.merkle_root());
    }

    #[test]
    fn hash_depends_on_every_header_field() {
        let b = block();
        let base = b.hash();
        let mut c = b.clone();
        c.index = 4;
        assert_ne!(c.hash(), base);
        let mut c = b.clone();
        c.timestamp = 12.6;
        assert_ne!(c.hash(), base);
        let mut c = b.clone();
        c.signature = vec![9];
        assert_ne!(c.hash(), base);
        let mut c = b.clone();
        c.prev_hash = sha256(b"x");
        assert_ne!(c.hash(), base);
    }

    #[test]
    fn signing_digest_excludes_signature() {
        let b = block();
        let mut c = b.clone();
        c.signature = vec![9, 9, 9];
        assert_eq!(b.own_signing_digest(), c.own_signing_digest());
        assert_ne!(b.hash(), c.hash());
    }

    #[test]
    fn root_changes_with_any_plan() {
        let ps = plans(4);
        let base = Block::root_of(&ps);
        let mut fewer = ps.clone();
        fewer.pop();
        assert_ne!(Block::root_of(&fewer), base);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_root_panics() {
        let _ = Block::root_of(&[]);
    }

    #[test]
    fn block_decode_round_trips_and_rejects_prefixes() {
        let b = block();
        let bytes = b.encode();
        assert_eq!(Block::decode(&bytes), Some(b));
        for cut in 0..bytes.len() {
            assert_eq!(Block::decode(&bytes[..cut]), None, "prefix {cut}");
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(Block::decode(&trailing), None);
    }

    #[test]
    fn decoded_block_preserves_hash_and_root() {
        let b = block();
        let d = Block::decode(&b.encode()).expect("decodes");
        assert_eq!(d.hash(), b.hash());
        assert_eq!(d.computed_root(), b.merkle_root());
        assert_eq!(d.own_signing_digest(), b.own_signing_digest());
    }

    fn anchors() -> Vec<ShardAnchor> {
        vec![
            ShardAnchor {
                shard: 1,
                tip: sha256(b"east"),
            },
            ShardAnchor {
                shard: 7,
                tip: sha256(b"west"),
            },
        ]
    }

    fn anchored_block() -> Block {
        let ps = plans(3);
        let root = Block::root_of(&ps);
        Block::from_parts_anchored(5, vec![4, 5, 6], Digest::ZERO, 20.0, root, ps, anchors())
    }

    #[test]
    fn anchors_cover_hash_and_signing_digest() {
        let b = anchored_block();
        let bare = Block::from_parts(
            b.index(),
            b.signature().to_vec(),
            b.prev_hash(),
            b.timestamp(),
            b.merkle_root(),
            b.plans().to_vec(),
        );
        assert_eq!(b.anchors().len(), 2);
        assert!(bare.anchors().is_empty());
        assert_ne!(b.hash(), bare.hash());
        assert_ne!(b.own_signing_digest(), bare.own_signing_digest());

        // Tampering with any anchor field changes both digests.
        let mut swapped = anchors();
        swapped[0].shard = 2;
        let tampered = Block::from_parts_anchored(
            b.index(),
            b.signature().to_vec(),
            b.prev_hash(),
            b.timestamp(),
            b.merkle_root(),
            b.plans().to_vec(),
            swapped,
        );
        assert_ne!(tampered.hash(), b.hash());
        assert_ne!(tampered.own_signing_digest(), b.own_signing_digest());
    }

    #[test]
    fn anchored_block_round_trips_and_rejects_prefixes() {
        let b = anchored_block();
        let bytes = b.encode();
        assert_eq!(Block::decode(&bytes), Some(b.clone()));
        for cut in 0..bytes.len() {
            assert_eq!(Block::decode(&bytes[..cut]), None, "prefix {cut}");
        }
        let d = Block::decode(&bytes).expect("decodes");
        assert_eq!(d.anchors(), b.anchors());
        assert_eq!(d.hash(), b.hash());
        assert_eq!(d.own_signing_digest(), b.own_signing_digest());
    }

    #[test]
    fn empty_anchor_digest_matches_plain_helpers() {
        // The 4-arg helpers and the anchored ones with an empty slice
        // are the same function — the packager and the pipelined sealer
        // must agree on this.
        let b = block();
        assert_eq!(
            Block::signing_digest(b.index(), &b.prev_hash(), b.timestamp(), &b.merkle_root()),
            Block::signing_digest_anchored(
                b.index(),
                &b.prev_hash(),
                b.timestamp(),
                &b.merkle_root(),
                &[]
            )
        );
    }
}
