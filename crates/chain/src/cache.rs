//! The bounded per-vehicle chain cache.
//!
//! "The maximum length of the chain that a vehicle needs to cache and
//! verify equals τ/δ — the time a vehicle needs to cross the intersection
//! divided by the processing-window length" (§IV-B1). A vehicle keeps
//! only that many recent blocks and deletes everything once it has passed
//! the intersection.

use crate::block::Block;
use crate::verify::{verify_link, BlockError};
use nwade_aim::TravelPlan;
use nwade_traffic::VehicleId;
use std::collections::VecDeque;

/// A bounded, linkage-checked window of recent blocks.
#[derive(Debug, Clone, Default)]
pub struct ChainCache {
    blocks: VecDeque<Block>,
    capacity: usize,
}

impl ChainCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ChainCache {
            blocks: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The capacity τ/δ.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The most recent block.
    pub fn tip(&self) -> Option<&Block> {
        self.blocks.back()
    }

    /// Iterates cached blocks oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Appends a block after checking its linkage against the current tip
    /// (Algorithm 1, lines 6–8). The first accepted block needs no
    /// predecessor: a vehicle that just arrived starts its window
    /// mid-chain. Evicts the oldest block beyond capacity.
    ///
    /// # Errors
    ///
    /// Returns the linkage error; the cache is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), BlockError> {
        if let Some(tip) = self.blocks.back() {
            verify_link(tip, &block)?;
        }
        self.blocks.push_back(block);
        if self.blocks.len() > self.capacity {
            self.blocks.pop_front();
        }
        Ok(())
    }

    /// Prepends a predecessor block (history back-fill): it must be the
    /// immediate predecessor of the current earliest block, hash-linked
    /// to it. No-op when the cache is at capacity (old history is not
    /// worth evicting fresh blocks for).
    ///
    /// # Errors
    ///
    /// Returns the linkage error; the cache is unchanged on error.
    pub fn prepend(&mut self, block: Block) -> Result<(), BlockError> {
        let Some(earliest) = self.blocks.front() else {
            self.blocks.push_front(block);
            return Ok(());
        };
        verify_link(&block, earliest)?;
        if self.blocks.len() < self.capacity {
            self.blocks.push_front(block);
        }
        Ok(())
    }

    /// The block with the given index, if cached.
    pub fn block_at(&self, index: u64) -> Option<&Block> {
        self.blocks.iter().find(|b| b.index() == index)
    }

    /// The most recent plan for `vehicle` across cached blocks (a vehicle
    /// may be re-planned; later blocks win).
    pub fn plan_for(&self, vehicle: VehicleId) -> Option<&TravelPlan> {
        self.blocks.iter().rev().find_map(|b| b.plan_for(vehicle))
    }

    /// All plans visible in the cache, most recent block first, first
    /// plan per vehicle only (i.e. each vehicle's current plan).
    pub fn current_plans(&self) -> Vec<&TravelPlan> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for block in self.blocks.iter().rev() {
            for plan in block.plans() {
                if seen.insert(plan.id()) {
                    out.push(plan);
                }
            }
        }
        out
    }

    /// Clears the cache (vehicle has left the intersection).
    pub fn clear(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::BlockPackager;
    use nwade_crypto::MockScheme;
    use std::sync::Arc;

    fn blocks(n: usize) -> Vec<Block> {
        let mut p = BlockPackager::new(Arc::new(MockScheme::from_seed(5)));
        (0..n)
            .map(|i| p.package(crate::block::tests::plans(3), i as f64))
            .collect()
    }

    #[test]
    fn append_and_evict() {
        let bs = blocks(5);
        let mut cache = ChainCache::new(3);
        for b in bs {
            cache.append(b).expect("chained block accepted");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.tip().expect("non-empty").index(), 4);
        assert!(cache.block_at(0).is_none(), "oldest evicted");
        assert!(cache.block_at(2).is_some());
    }

    #[test]
    fn broken_link_rejected_and_cache_unchanged() {
        let bs = blocks(3);
        let mut cache = ChainCache::new(10);
        cache.append(bs[0].clone()).expect("first block");
        let err = cache.append(bs[2].clone()).expect_err("skipped block");
        assert_eq!(err, BlockError::BadIndex);
        assert_eq!(cache.len(), 1);
        cache.append(bs[1].clone()).expect("correct successor");
        cache.append(bs[2].clone()).expect("now chains");
    }

    #[test]
    fn mid_chain_start_is_allowed() {
        let bs = blocks(4);
        let mut cache = ChainCache::new(10);
        // A vehicle arriving late starts at block 2.
        cache.append(bs[2].clone()).expect("mid-chain start");
        cache.append(bs[3].clone()).expect("continues");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_lookup_prefers_recent_blocks() {
        let bs = blocks(3);
        let mut cache = ChainCache::new(10);
        for b in &bs {
            cache.append(b.clone()).expect("chained");
        }
        // Vehicle 0 appears in multiple blocks (test plan generator reuses
        // ids per block); the lookup must return the latest.
        let vid = bs[2].plans()[0].id();
        let found = cache.plan_for(vid).expect("plan present");
        assert_eq!(
            found.encode(),
            bs[2].plan_for(vid).expect("in tip").encode()
        );
    }

    #[test]
    fn current_plans_dedupes_vehicles() {
        let bs = blocks(3);
        let mut cache = ChainCache::new(10);
        for b in &bs {
            cache.append(b.clone()).expect("chained");
        }
        let plans = cache.current_plans();
        let ids: std::collections::HashSet<_> = plans.iter().map(|p| p.id()).collect();
        assert_eq!(ids.len(), plans.len(), "one plan per vehicle");
    }

    #[test]
    fn clear_empties() {
        let bs = blocks(2);
        let mut cache = ChainCache::new(10);
        for b in bs {
            cache.append(b).expect("chained");
        }
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.tip().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ChainCache::new(0);
    }

    #[test]
    fn prepend_backfills_history() {
        let bs = blocks(4);
        let mut cache = ChainCache::new(10);
        cache.append(bs[2].clone()).expect("mid-chain start");
        cache.append(bs[3].clone()).expect("tip");
        cache.prepend(bs[1].clone()).expect("immediate predecessor");
        cache.prepend(bs[0].clone()).expect("further back");
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.iter().next().expect("earliest").index(), 0);
        // Non-adjacent prepend is rejected.
        let mut cache2 = ChainCache::new(10);
        cache2.append(bs[3].clone()).expect("start");
        assert!(cache2.prepend(bs[0].clone()).is_err());
    }

    #[test]
    fn prepend_respects_capacity() {
        let bs = blocks(4);
        let mut cache = ChainCache::new(2);
        cache.append(bs[2].clone()).expect("start");
        cache.append(bs[3].clone()).expect("tip");
        // At capacity: prepend is a linkage-checked no-op.
        cache.prepend(bs[1].clone()).expect("link ok");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.iter().next().expect("earliest").index(), 2);
    }
}
