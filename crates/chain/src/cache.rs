//! The bounded per-vehicle chain cache.
//!
//! "The maximum length of the chain that a vehicle needs to cache and
//! verify equals τ/δ — the time a vehicle needs to cross the intersection
//! divided by the processing-window length" (§IV-B1). A vehicle keeps
//! only that many recent blocks and deletes everything once it has passed
//! the intersection.

use crate::block::Block;
use crate::verify::{verify_block, verify_link, BlockError};
use nwade_aim::TravelPlan;
use nwade_crypto::{Digest, SignatureScheme};
use nwade_traffic::VehicleId;
use std::collections::{HashMap, VecDeque};

/// Upper bound on remembered signature verdicts; cleared wholesale when
/// reached. Re-broadcasts cluster around recent blocks, so a periodic
/// cold restart costs a handful of re-verifications at most.
const VERIFIED_SIGNATURES_BOUND: usize = 256;

/// A bounded, linkage-checked window of recent blocks.
#[derive(Debug, Clone, Default)]
pub struct ChainCache {
    blocks: VecDeque<Block>,
    capacity: usize,
    /// Signing digests whose signatures this cache has already accepted,
    /// keyed by digest with the accepted signature bytes as value.
    verified: HashMap<Digest, Vec<u8>>,
}

impl ChainCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ChainCache {
            blocks: VecDeque::with_capacity(capacity),
            capacity,
            verified: HashMap::new(),
        }
    }

    /// Cryptographically verifies `block` (the first half of Algorithm 1)
    /// with a digest-keyed memo of previously accepted signatures: when a
    /// block is re-delivered — rebroadcasts, retries, history back-fill —
    /// the public-key operation is skipped. The Merkle-root and
    /// non-emptiness checks still run on every call, because the signing
    /// digest covers only the root, not the carried plans: a replayed
    /// header with swapped plans must still be rejected. Verdicts are
    /// identical to [`verify_block`] in all cases.
    ///
    /// # Errors
    ///
    /// Returns the first failed check, exactly as [`verify_block`] would.
    pub fn verify_block_cached(
        &mut self,
        block: &Block,
        verifier: &dyn SignatureScheme,
    ) -> Result<(), BlockError> {
        let digest = block.own_signing_digest();
        if self
            .verified
            .get(&digest)
            .is_some_and(|sig| sig == block.signature())
        {
            if block.plans().is_empty() {
                return Err(BlockError::Empty);
            }
            if block.computed_root() != block.merkle_root() {
                return Err(BlockError::BadMerkleRoot);
            }
            return Ok(());
        }
        verify_block(block, verifier)?;
        if self.verified.len() >= VERIFIED_SIGNATURES_BOUND {
            self.verified.clear();
        }
        self.verified.insert(digest, block.signature().to_vec());
        Ok(())
    }

    /// Batch-verifies the signatures of `blocks` in one
    /// [`SignatureScheme::verify_batch`] call and memoizes the accepted
    /// ones, so a subsequent per-block
    /// [`ChainCache::verify_block_cached`] walk (history back-fill, §IV-B1)
    /// spends no further public-key operations on them. Already-memoized
    /// and failing signatures are left alone — failures surface
    /// block-by-block with their precise [`BlockError`] during the walk.
    pub fn prime_signatures_batch(&mut self, blocks: &[Block], verifier: &dyn SignatureScheme) {
        let fresh: Vec<(Digest, &[u8])> = blocks
            .iter()
            .map(|b| (b.own_signing_digest(), b.signature()))
            .filter(|(digest, sig)| self.verified.get(digest).is_none_or(|known| known != sig))
            .collect();
        if fresh.is_empty() {
            return;
        }
        let verdicts = verifier.verify_batch(&fresh);
        for ((digest, sig), ok) in fresh.into_iter().zip(verdicts) {
            if ok {
                if self.verified.len() >= VERIFIED_SIGNATURES_BOUND {
                    self.verified.clear();
                }
                self.verified.insert(digest, sig.to_vec());
            }
        }
    }

    /// The capacity τ/δ.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The most recent block.
    pub fn tip(&self) -> Option<&Block> {
        self.blocks.back()
    }

    /// Iterates cached blocks oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Appends a block after checking its linkage against the current tip
    /// (Algorithm 1, lines 6–8). The first accepted block needs no
    /// predecessor: a vehicle that just arrived starts its window
    /// mid-chain. Evicts the oldest block beyond capacity.
    ///
    /// # Errors
    ///
    /// Returns the linkage error; the cache is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), BlockError> {
        if let Some(tip) = self.blocks.back() {
            verify_link(tip, &block)?;
        }
        self.blocks.push_back(block);
        if self.blocks.len() > self.capacity {
            self.blocks.pop_front();
        }
        Ok(())
    }

    /// Prepends a predecessor block (history back-fill): it must be the
    /// immediate predecessor of the current earliest block, hash-linked
    /// to it. No-op when the cache is at capacity (old history is not
    /// worth evicting fresh blocks for).
    ///
    /// # Errors
    ///
    /// Returns the linkage error; the cache is unchanged on error.
    pub fn prepend(&mut self, block: Block) -> Result<(), BlockError> {
        let Some(earliest) = self.blocks.front() else {
            self.blocks.push_front(block);
            return Ok(());
        };
        verify_link(&block, earliest)?;
        if self.blocks.len() < self.capacity {
            self.blocks.push_front(block);
        }
        Ok(())
    }

    /// The block with the given index, if cached.
    pub fn block_at(&self, index: u64) -> Option<&Block> {
        self.blocks.iter().find(|b| b.index() == index)
    }

    /// The most recent plan for `vehicle` across cached blocks (a vehicle
    /// may be re-planned; later blocks win).
    pub fn plan_for(&self, vehicle: VehicleId) -> Option<&TravelPlan> {
        self.blocks.iter().rev().find_map(|b| b.plan_for(vehicle))
    }

    /// All plans visible in the cache, most recent block first, first
    /// plan per vehicle only (i.e. each vehicle's current plan).
    pub fn current_plans(&self) -> Vec<&TravelPlan> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for block in self.blocks.iter().rev() {
            for plan in block.plans() {
                if seen.insert(plan.id()) {
                    out.push(plan);
                }
            }
        }
        out
    }

    /// Clears the cache (vehicle has left the intersection), including
    /// remembered signature verdicts.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.verified.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::BlockPackager;
    use crate::tamper;
    use nwade_crypto::MockScheme;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn blocks(n: usize) -> Vec<Block> {
        let mut p = BlockPackager::new(Arc::new(MockScheme::from_seed(5)));
        (0..n)
            .map(|i| p.package(crate::block::tests::plans(3), i as f64))
            .collect()
    }

    /// Wraps the mock scheme counting `verify` invocations, so tests can
    /// assert how many public-key operations the cache actually spent.
    struct CountingScheme {
        inner: MockScheme,
        verifies: AtomicU64,
        batches: AtomicU64,
    }

    impl CountingScheme {
        fn new(seed: u64) -> Self {
            CountingScheme {
                inner: MockScheme::from_seed(seed),
                verifies: AtomicU64::new(0),
                batches: AtomicU64::new(0),
            }
        }

        fn verify_count(&self) -> u64 {
            self.verifies.load(Ordering::SeqCst)
        }

        fn batch_count(&self) -> u64 {
            self.batches.load(Ordering::SeqCst)
        }
    }

    impl SignatureScheme for CountingScheme {
        fn sign(&self, digest: &Digest) -> Vec<u8> {
            self.inner.sign(digest)
        }

        fn verify(&self, digest: &Digest, signature: &[u8]) -> bool {
            self.verifies.fetch_add(1, Ordering::SeqCst);
            self.inner.verify(digest, signature)
        }

        fn verify_batch(&self, items: &[(Digest, &[u8])]) -> Vec<bool> {
            self.batches.fetch_add(1, Ordering::SeqCst);
            items.iter().map(|(d, s)| self.inner.verify(d, s)).collect()
        }

        fn name(&self) -> &'static str {
            "counting-mock"
        }
    }

    #[test]
    fn append_and_evict() {
        let bs = blocks(5);
        let mut cache = ChainCache::new(3);
        for b in bs {
            cache.append(b).expect("chained block accepted");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.tip().expect("non-empty").index(), 4);
        assert!(cache.block_at(0).is_none(), "oldest evicted");
        assert!(cache.block_at(2).is_some());
    }

    #[test]
    fn broken_link_rejected_and_cache_unchanged() {
        let bs = blocks(3);
        let mut cache = ChainCache::new(10);
        cache.append(bs[0].clone()).expect("first block");
        let err = cache.append(bs[2].clone()).expect_err("skipped block");
        assert_eq!(err, BlockError::BadIndex);
        assert_eq!(cache.len(), 1);
        cache.append(bs[1].clone()).expect("correct successor");
        cache.append(bs[2].clone()).expect("now chains");
    }

    #[test]
    fn mid_chain_start_is_allowed() {
        let bs = blocks(4);
        let mut cache = ChainCache::new(10);
        // A vehicle arriving late starts at block 2.
        cache.append(bs[2].clone()).expect("mid-chain start");
        cache.append(bs[3].clone()).expect("continues");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_lookup_prefers_recent_blocks() {
        let bs = blocks(3);
        let mut cache = ChainCache::new(10);
        for b in &bs {
            cache.append(b.clone()).expect("chained");
        }
        // Vehicle 0 appears in multiple blocks (test plan generator reuses
        // ids per block); the lookup must return the latest.
        let vid = bs[2].plans()[0].id();
        let found = cache.plan_for(vid).expect("plan present");
        assert_eq!(
            found.encode(),
            bs[2].plan_for(vid).expect("in tip").encode()
        );
    }

    #[test]
    fn current_plans_dedupes_vehicles() {
        let bs = blocks(3);
        let mut cache = ChainCache::new(10);
        for b in &bs {
            cache.append(b.clone()).expect("chained");
        }
        let plans = cache.current_plans();
        let ids: std::collections::HashSet<_> = plans.iter().map(|p| p.id()).collect();
        assert_eq!(ids.len(), plans.len(), "one plan per vehicle");
    }

    #[test]
    fn clear_empties() {
        let bs = blocks(2);
        let mut cache = ChainCache::new(10);
        for b in bs {
            cache.append(b).expect("chained");
        }
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.tip().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ChainCache::new(0);
    }

    #[test]
    fn prepend_backfills_history() {
        let bs = blocks(4);
        let mut cache = ChainCache::new(10);
        cache.append(bs[2].clone()).expect("mid-chain start");
        cache.append(bs[3].clone()).expect("tip");
        cache.prepend(bs[1].clone()).expect("immediate predecessor");
        cache.prepend(bs[0].clone()).expect("further back");
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.iter().next().expect("earliest").index(), 0);
        // Non-adjacent prepend is rejected.
        let mut cache2 = ChainCache::new(10);
        cache2.append(bs[3].clone()).expect("start");
        assert!(cache2.prepend(bs[0].clone()).is_err());
    }

    #[test]
    fn cached_verification_skips_repeat_signature_checks() {
        let scheme = Arc::new(CountingScheme::new(6));
        let mut p = BlockPackager::new(scheme.clone());
        let b = p.package(crate::block::tests::plans(3), 0.0);
        let mut cache = ChainCache::new(4);
        for _ in 0..5 {
            cache
                .verify_block_cached(&b, scheme.as_ref())
                .expect("honest block verifies");
        }
        assert_eq!(
            scheme.verify_count(),
            1,
            "one signature check per distinct block"
        );
    }

    #[test]
    fn cached_path_still_rejects_swapped_plans() {
        let scheme = Arc::new(CountingScheme::new(7));
        let mut p = BlockPackager::new(scheme.clone());
        let b0 = p.package(crate::block::tests::plans(2), 0.0);
        let b1 = p.package(crate::block::tests::plans(3), 1.0);
        let mut cache = ChainCache::new(4);
        cache
            .verify_block_cached(&b0, scheme.as_ref())
            .expect("honest block verifies");
        // Replay b0's verified header with b1's plans: the signature memo
        // hits, but the Merkle-root recheck must still fire.
        let tampered = tamper::swap_plans(&b0, &b1);
        assert_eq!(
            cache.verify_block_cached(&tampered, scheme.as_ref()),
            Err(BlockError::BadMerkleRoot)
        );
        assert_eq!(scheme.verify_count(), 1, "no second signature check");
    }

    #[test]
    fn forged_signature_never_enters_the_memo() {
        let scheme = Arc::new(CountingScheme::new(8));
        let mut p = BlockPackager::new(scheme.clone());
        let b = p.package(crate::block::tests::plans(2), 0.0);
        let forged = tamper::forge_signature(&b);
        let mut cache = ChainCache::new(4);
        for _ in 0..2 {
            assert_eq!(
                cache.verify_block_cached(&forged, scheme.as_ref()),
                Err(BlockError::BadSignature)
            );
        }
        assert_eq!(scheme.verify_count(), 2, "rejections are not memoised");
        // The honest block still verifies afterwards.
        cache
            .verify_block_cached(&b, scheme.as_ref())
            .expect("honest block verifies");
    }

    #[test]
    fn clear_forgets_verified_signatures() {
        let scheme = Arc::new(CountingScheme::new(9));
        let mut p = BlockPackager::new(scheme.clone());
        let b = p.package(crate::block::tests::plans(2), 0.0);
        let mut cache = ChainCache::new(4);
        cache
            .verify_block_cached(&b, scheme.as_ref())
            .expect("verifies");
        cache.clear();
        cache
            .verify_block_cached(&b, scheme.as_ref())
            .expect("verifies again");
        assert_eq!(scheme.verify_count(), 2, "clear drops the memo");
    }

    #[test]
    fn primed_backfill_spends_no_single_verifies() {
        let scheme = Arc::new(CountingScheme::new(10));
        let mut p = BlockPackager::new(scheme.clone());
        let bs: Vec<Block> = (0..4)
            .map(|i| p.package(crate::block::tests::plans(2), i as f64))
            .collect();
        let mut cache = ChainCache::new(8);
        cache.prime_signatures_batch(&bs, scheme.as_ref());
        assert_eq!(scheme.batch_count(), 1, "one batch call for the range");
        assert_eq!(scheme.verify_count(), 0);
        for b in &bs {
            cache
                .verify_block_cached(b, scheme.as_ref())
                .expect("primed block verifies");
        }
        assert_eq!(
            scheme.verify_count(),
            0,
            "the walk runs entirely off the primed memo"
        );
        // Re-priming the same range is a no-op: nothing fresh to verify.
        cache.prime_signatures_batch(&bs, scheme.as_ref());
        assert_eq!(scheme.batch_count(), 1);
    }

    #[test]
    fn priming_never_memoizes_a_forged_signature() {
        let scheme = Arc::new(CountingScheme::new(11));
        let mut p = BlockPackager::new(scheme.clone());
        let good = p.package(crate::block::tests::plans(2), 0.0);
        let forged = tamper::forge_signature(&p.package(crate::block::tests::plans(2), 1.0));
        let mut cache = ChainCache::new(8);
        cache.prime_signatures_batch(&[good.clone(), forged.clone()], scheme.as_ref());
        cache
            .verify_block_cached(&good, scheme.as_ref())
            .expect("good block primed");
        assert_eq!(
            cache.verify_block_cached(&forged, scheme.as_ref()),
            Err(BlockError::BadSignature),
            "forged block still rejected after priming"
        );
        assert_eq!(scheme.verify_count(), 1, "only the forgery re-verified");
    }

    #[test]
    fn prepend_respects_capacity() {
        let bs = blocks(4);
        let mut cache = ChainCache::new(2);
        cache.append(bs[2].clone()).expect("start");
        cache.append(bs[3].clone()).expect("tip");
        // At capacity: prepend is a linkage-checked no-op.
        cache.prepend(bs[1].clone()).expect("link ok");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.iter().next().expect("earliest").index(), 2);
    }
}
