//! The travel-plan blockchain (§IV-B1 of the paper).
//!
//! Every processing window δ the intersection manager packages the batch
//! of newly generated travel plans into a block
//!
//! ```text
//! B_i = ⟨ s_i, h_{i−1}, τ_i, R_i ⟩          (Eq. 1)
//! ```
//!
//! where `s_i` is the manager's signature over the rest of the block,
//! `h_{i−1}` the SHA-256 hash of the previous block, `τ_i` the timestamp
//! and `R_i` the Merkle root of the window's travel plans (Fig. 3).
//!
//! * [`Block`] — the block structure with its hashing rules,
//! * [`BlockPackager`] — the manager-side packaging state machine,
//! * [`verify`] — the cryptographic checks of Algorithm 1 (signature,
//!   root, linkage); the *semantic* conflict check lives in the NWADE
//!   core crate,
//! * [`ChainCache`] — the bounded per-vehicle chain cache (a vehicle
//!   stores at most τ/δ blocks: crossing time over window length),
//! * [`tamper`] — block corruptions used by attack injection.

#![forbid(unsafe_code)]

pub mod block;
pub mod cache;
pub mod package;
pub mod tamper;
pub mod verify;

pub use block::{Block, ShardAnchor};
pub use cache::ChainCache;
pub use package::BlockPackager;
pub use verify::{verify_block, verify_link, BlockError};
