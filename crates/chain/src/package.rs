//! Manager-side block packaging.

use crate::block::{Block, ShardAnchor};
use nwade_aim::TravelPlan;
use nwade_crypto::merkle::leaf_hash;
use nwade_crypto::{Digest, MerkleTree, SignatureScheme};
use std::sync::Arc;

/// Packages travel-plan batches into a growing blockchain.
///
/// One packager instance lives inside the intersection manager; its state
/// is the previous block hash and the next index. Plans can be handed
/// over all at once ([`BlockPackager::package`]) or staged one at a time
/// as they are scheduled during a processing window
/// ([`BlockPackager::stage`] / [`BlockPackager::package_staged`]), which
/// keeps the Merkle tree incremental — O(log n) hashing per plan instead
/// of an O(n) rebuild at window close.
#[derive(Clone)]
pub struct BlockPackager {
    signer: Arc<dyn SignatureScheme>,
    prev_hash: Digest,
    next_index: u64,
    staged: Vec<TravelPlan>,
    staged_tree: Option<MerkleTree>,
}

impl std::fmt::Debug for BlockPackager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockPackager")
            .field("scheme", &self.signer.name())
            .field("next_index", &self.next_index)
            .field("staged", &self.staged.len())
            .finish()
    }
}

impl BlockPackager {
    /// Creates a packager; the first block will carry
    /// `prev_hash = Digest::ZERO`.
    pub fn new(signer: Arc<dyn SignatureScheme>) -> Self {
        BlockPackager {
            signer,
            prev_hash: Digest::ZERO,
            next_index: 0,
            staged: Vec::new(),
            staged_tree: None,
        }
    }

    /// Index the next packaged block will carry.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Hash the next block will point at.
    pub fn prev_hash(&self) -> Digest {
        self.prev_hash
    }

    /// Restores the chain tip from durable state (warm recovery): the
    /// next packaged block carries `prev_hash` and `next_index` exactly
    /// as the pre-crash packager would have produced. Any half-staged
    /// window is discarded — staged plans that never reached a WAL
    /// commit are re-scheduled by replay, not resumed.
    pub fn restore_tip(&mut self, prev_hash: Digest, next_index: u64) {
        self.prev_hash = prev_hash;
        self.next_index = next_index;
        self.staged.clear();
        self.staged_tree = None;
    }

    /// Packages one processing window's plans into a signed block and
    /// advances the chain state.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch; the caller skips windows with no new
    /// plans (the chain only grows when there is something to publish).
    pub fn package(&mut self, plans: Vec<TravelPlan>, timestamp: f64) -> Block {
        assert!(!plans.is_empty(), "cannot package an empty window");
        let root = Block::root_of(&plans);
        self.package_rooted(plans, root, timestamp)
    }

    /// Like [`BlockPackager::package`] but with the Merkle root already
    /// computed by the caller (the pipelined window engine computes roots
    /// off the signing path). `root` **must** equal
    /// `Block::root_of(&plans)` or the block will fail verification.
    pub fn package_rooted(
        &mut self,
        plans: Vec<TravelPlan>,
        root: Digest,
        timestamp: f64,
    ) -> Block {
        self.package_rooted_anchored(plans, root, timestamp, Vec::new())
    }

    /// Like [`BlockPackager::package_rooted`] but embedding cross-shard
    /// anchors — neighbour chain tips the signature and hash will cover.
    pub fn package_rooted_anchored(
        &mut self,
        plans: Vec<TravelPlan>,
        root: Digest,
        timestamp: f64,
        anchors: Vec<ShardAnchor>,
    ) -> Block {
        assert!(!plans.is_empty(), "cannot package an empty window");
        debug_assert_eq!(root, Block::root_of(&plans), "root must match plans");
        let digest = Block::signing_digest_anchored(
            self.next_index,
            &self.prev_hash,
            timestamp,
            &root,
            &anchors,
        );
        let signature = self.signer.sign(&digest);
        let block = Block::from_parts_anchored(
            self.next_index,
            signature,
            self.prev_hash,
            timestamp,
            root,
            plans,
            anchors,
        );
        self.prev_hash = block.hash();
        self.next_index += 1;
        block
    }

    /// The signing scheme, shared with the pipelined window engine's
    /// sealing worker.
    pub fn signer(&self) -> &Arc<dyn SignatureScheme> {
        &self.signer
    }

    /// Stages one plan for the block under construction, extending the
    /// incremental Merkle tree by its leaf.
    pub fn stage(&mut self, plan: TravelPlan) {
        let leaf = leaf_hash(&plan.encode());
        match &mut self.staged_tree {
            Some(tree) => tree.push_leaf(leaf),
            None => self.staged_tree = Some(MerkleTree::from_leaf_hashes(vec![leaf])),
        }
        self.staged.push(plan);
    }

    /// Number of plans staged so far.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Running Merkle root over the staged plans, `None` when nothing is
    /// staged.
    pub fn staged_root(&self) -> Option<Digest> {
        self.staged_tree.as_ref().map(MerkleTree::root)
    }

    /// Packages the staged plans into a signed block — identical to
    /// calling [`BlockPackager::package`] with the same plans in staging
    /// order, but reusing the incrementally built Merkle tree.
    ///
    /// # Panics
    ///
    /// Panics when nothing is staged.
    pub fn package_staged(&mut self, timestamp: f64) -> Block {
        assert!(!self.staged.is_empty(), "cannot package an empty window");
        let tree = self.staged_tree.take().expect("tree tracks staged plans");
        let plans = std::mem::take(&mut self.staged);
        let root = tree.root();
        let digest = Block::signing_digest(self.next_index, &self.prev_hash, timestamp, &root);
        let signature = self.signer.sign(&digest);
        let block = Block::from_parts(
            self.next_index,
            signature,
            self.prev_hash,
            timestamp,
            root,
            plans,
        );
        self.prev_hash = block.hash();
        self.next_index += 1;
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_block, verify_link};
    use nwade_crypto::MockScheme;

    fn packager() -> BlockPackager {
        BlockPackager::new(Arc::new(MockScheme::from_seed(1)))
    }

    #[test]
    fn first_block_is_genesis() {
        let mut p = packager();
        let b = p.package(crate::block::tests::plans(3), 1.0);
        assert_eq!(b.index(), 0);
        assert_eq!(b.prev_hash(), Digest::ZERO);
        assert_eq!(p.next_index(), 1);
        assert_eq!(p.prev_hash(), b.hash());
    }

    #[test]
    fn chain_links_forward() {
        let mut p = packager();
        let b0 = p.package(crate::block::tests::plans(2), 1.0);
        let b1 = p.package(crate::block::tests::plans(3), 2.0);
        let b2 = p.package(crate::block::tests::plans(1), 3.0);
        assert_eq!(b1.prev_hash(), b0.hash());
        assert_eq!(b2.prev_hash(), b1.hash());
        assert!(verify_link(&b0, &b1).is_ok());
        assert!(verify_link(&b1, &b2).is_ok());
        assert!(verify_link(&b0, &b2).is_err());
    }

    #[test]
    fn packaged_blocks_verify() {
        let scheme = Arc::new(MockScheme::from_seed(2));
        let mut p = BlockPackager::new(scheme.clone());
        for i in 0..4 {
            let b = p.package(crate::block::tests::plans(2 + i), i as f64);
            verify_block(&b, scheme.as_ref()).expect("honest block verifies");
        }
    }

    #[test]
    fn package_rooted_matches_package() {
        let mut a = packager();
        let mut b = packager();
        for (i, n) in [3u64, 1, 4].iter().enumerate() {
            let plans = crate::block::tests::plans(*n);
            let expect = a.package(plans.clone(), i as f64);
            let root = Block::root_of(&plans);
            let got = b.package_rooted(plans, root, i as f64);
            assert_eq!(got.hash(), expect.hash(), "block {i} diverged");
        }
    }

    #[test]
    fn anchored_blocks_verify_and_chain() {
        let scheme = Arc::new(MockScheme::from_seed(6));
        let mut p = BlockPackager::new(scheme.clone());
        let anchors = vec![ShardAnchor {
            shard: 3,
            tip: nwade_crypto::sha256(b"neighbour-tip"),
        }];
        let plans = crate::block::tests::plans(2);
        let root = Block::root_of(&plans);
        let b0 = p.package_rooted_anchored(plans, root, 1.0, anchors.clone());
        assert_eq!(b0.anchors(), anchors.as_slice());
        verify_block(&b0, scheme.as_ref()).expect("anchored block verifies");
        let b1 = p.package(crate::block::tests::plans(1), 2.0);
        assert!(b1.anchors().is_empty());
        assert!(verify_link(&b0, &b1).is_ok());
        // Stripping the anchors after signing breaks verification.
        let stripped = Block::from_parts(
            b0.index(),
            b0.signature().to_vec(),
            b0.prev_hash(),
            b0.timestamp(),
            b0.merkle_root(),
            b0.plans().to_vec(),
        );
        assert!(verify_block(&stripped, scheme.as_ref()).is_err());
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        let mut p = packager();
        let _ = p.package(Vec::new(), 0.0);
    }

    #[test]
    fn debug_shows_scheme() {
        let p = packager();
        assert!(format!("{p:?}").contains("mock-keyed-hash"));
    }

    #[test]
    fn staged_packaging_matches_batch_packaging() {
        let mut batch = packager();
        let mut staged = packager();
        for (i, n) in [3u64, 1, 5].iter().enumerate() {
            let plans = crate::block::tests::plans(*n);
            let expected = batch.package(plans.clone(), i as f64);
            for plan in plans {
                staged.stage(plan);
            }
            assert_eq!(staged.staged_root(), Some(expected.merkle_root()));
            let got = staged.package_staged(i as f64);
            assert_eq!(got.hash(), expected.hash(), "block {i} diverged");
            assert_eq!(got.signature(), expected.signature());
            assert_eq!(staged.staged_len(), 0, "staging area drained");
        }
        let scheme = MockScheme::from_seed(1);
        verify_block(&batch.package(crate::block::tests::plans(2), 9.0), &scheme)
            .expect("chain state stays consistent");
    }

    #[test]
    fn staged_blocks_verify_and_chain() {
        let scheme = Arc::new(MockScheme::from_seed(4));
        let mut p = BlockPackager::new(scheme.clone());
        let mut prev: Option<Block> = None;
        for i in 0..3 {
            for plan in crate::block::tests::plans(2 + i) {
                p.stage(plan);
            }
            let b = p.package_staged(i as f64);
            verify_block(&b, scheme.as_ref()).expect("staged block verifies");
            if let Some(prev) = &prev {
                verify_link(prev, &b).expect("staged block chains");
            }
            prev = Some(b);
        }
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_staged_window_panics() {
        let mut p = packager();
        let _ = p.package_staged(0.0);
    }

    #[test]
    fn restored_tip_continues_the_chain() {
        let mut live = packager();
        let b0 = live.package(crate::block::tests::plans(2), 1.0);
        let b1 = live.package(crate::block::tests::plans(3), 2.0);

        // A fresh packager restored to the tip signs the same next block.
        let mut recovered = packager();
        recovered.stage(crate::block::tests::plans(1).remove(0)); // stale staging
        recovered.restore_tip(live.prev_hash(), live.next_index());
        assert_eq!(recovered.staged_len(), 0, "stale staging discarded");
        let plans = crate::block::tests::plans(2);
        let expect = live.package(plans.clone(), 3.0);
        let got = recovered.package(plans, 3.0);
        assert_eq!(got.hash(), expect.hash());
        assert!(verify_link(&b1, &got).is_ok());
        assert_eq!(got.prev_hash(), b1.hash());
        let _ = b0;
    }
}
