//! Block corruptions used by attack injection and verification tests.
//!
//! A compromised intersection manager (threat iii) or a malicious vehicle
//! relaying blocks can tamper in a handful of structurally distinct ways;
//! each helper below produces one of them from an honest block.

use crate::block::Block;
use nwade_aim::TravelPlan;
use nwade_crypto::{Digest, SignatureScheme};

/// Flips a byte of the signature: the block no longer verifies under the
/// manager's key (an impersonator without the key ends up here).
pub fn forge_signature(block: &Block) -> Block {
    let mut sig = block.signature().to_vec();
    if sig.is_empty() {
        sig.push(0xAA);
    } else {
        let mid = sig.len() / 2;
        sig[mid] ^= 0xFF;
    }
    Block::from_parts_anchored(
        block.index(),
        sig,
        block.prev_hash(),
        block.timestamp(),
        block.merkle_root(),
        block.plans().to_vec(),
        block.anchors().to_vec(),
    )
}

/// Replaces the carried plans with another block's plans while keeping
/// the original header — caught by the Merkle-root check.
pub fn swap_plans(block: &Block, other: &Block) -> Block {
    Block::from_parts_anchored(
        block.index(),
        block.signature().to_vec(),
        block.prev_hash(),
        block.timestamp(),
        block.merkle_root(),
        other.plans().to_vec(),
        block.anchors().to_vec(),
    )
}

/// Re-points the previous-hash link — caught by the linkage check.
pub fn relink(block: &Block, new_prev: Digest) -> Block {
    Block::from_parts_anchored(
        block.index(),
        block.signature().to_vec(),
        new_prev,
        block.timestamp(),
        block.merkle_root(),
        block.plans().to_vec(),
        block.anchors().to_vec(),
    )
}

/// Produces a *validly signed* block with substituted plans — the
/// equivocation a compromised manager (which still holds the signing key)
/// performs. The result passes signature and root checks; only the
/// semantic conflict check or a cross-vehicle chain comparison catches
/// it.
pub fn resign_with_plans(
    block: &Block,
    plans: Vec<TravelPlan>,
    signer: &dyn SignatureScheme,
) -> Block {
    let root = Block::root_of(&plans);
    let digest = Block::signing_digest_anchored(
        block.index(),
        &block.prev_hash(),
        block.timestamp(),
        &root,
        block.anchors(),
    );
    Block::from_parts_anchored(
        block.index(),
        signer.sign(&digest),
        block.prev_hash(),
        block.timestamp(),
        root,
        plans,
        block.anchors().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::BlockPackager;
    use crate::verify::{verify_block, BlockError};
    use nwade_crypto::MockScheme;
    use std::sync::Arc;

    fn setup() -> (Arc<MockScheme>, Block, Block) {
        let scheme = Arc::new(MockScheme::from_seed(4));
        let mut p = BlockPackager::new(scheme.clone());
        let b0 = p.package(crate::block::tests::plans(3), 0.0);
        let b1 = p.package(crate::block::tests::plans(2), 1.0);
        (scheme, b0, b1)
    }

    #[test]
    fn each_tamper_fails_the_right_check() {
        let (scheme, b0, b1) = setup();
        assert_eq!(
            verify_block(&forge_signature(&b0), scheme.as_ref()),
            Err(BlockError::BadSignature)
        );
        assert_eq!(
            verify_block(&swap_plans(&b0, &b1), scheme.as_ref()),
            Err(BlockError::BadMerkleRoot)
        );
        // relink keeps the block internally valid; only the link breaks.
        let relinked = relink(&b1, Digest::ZERO);
        assert_eq!(
            crate::verify::verify_link(&b0, &relinked),
            Err(BlockError::BrokenLink)
        );
    }

    #[test]
    fn equivocation_passes_crypto_checks() {
        let (scheme, b0, b1) = setup();
        let equivocated = resign_with_plans(&b0, b1.plans().to_vec(), scheme.as_ref());
        // Crypto-valid...
        verify_block(&equivocated, scheme.as_ref()).expect("signed by the real key");
        // ...but observably different from the original at the same index.
        assert_eq!(equivocated.index(), b0.index());
        assert_ne!(equivocated.hash(), b0.hash());
    }

    #[test]
    fn tampering_preserves_anchors() {
        let (scheme, b0, b1) = setup();
        let anchors = vec![crate::block::ShardAnchor {
            shard: 9,
            tip: nwade_crypto::sha256(b"tip"),
        }];
        let anchored = Block::from_parts_anchored(
            b0.index(),
            b0.signature().to_vec(),
            b0.prev_hash(),
            b0.timestamp(),
            b0.merkle_root(),
            b0.plans().to_vec(),
            anchors.clone(),
        );
        assert_eq!(forge_signature(&anchored).anchors(), anchors.as_slice());
        assert_eq!(swap_plans(&anchored, &b1).anchors(), anchors.as_slice());
        assert_eq!(
            relink(&anchored, Digest::ZERO).anchors(),
            anchors.as_slice()
        );
        let resigned = resign_with_plans(&anchored, b1.plans().to_vec(), scheme.as_ref());
        assert_eq!(resigned.anchors(), anchors.as_slice());
        verify_block(&resigned, scheme.as_ref()).expect("resigned anchors covered by signature");
    }

    #[test]
    fn forge_handles_empty_signature() {
        let (_, b0, _) = setup();
        let empty_sig = Block::from_parts(
            b0.index(),
            Vec::new(),
            b0.prev_hash(),
            b0.timestamp(),
            b0.merkle_root(),
            b0.plans().to_vec(),
        );
        assert!(!forge_signature(&empty_sig).signature().is_empty());
    }
}
