//! Cryptographic block verification (the first half of Algorithm 1).
//!
//! The semantic half — "do the plans in this block conflict with each
//! other or with previously received plans?" — is AIM-level logic and
//! lives in the NWADE core crate, built on [`nwade_aim::find_conflicts`].

use crate::block::Block;
use nwade_crypto::SignatureScheme;
use std::error::Error;
use std::fmt;

/// Why a block failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The signature does not verify under the manager's public key
    /// (Algorithm 1, line 2).
    BadSignature,
    /// The carried plans do not hash to the block's Merkle root.
    BadMerkleRoot,
    /// `h_{i−1}` does not equal the hash of the predecessor block
    /// (Algorithm 1, line 7).
    BrokenLink,
    /// Block indices are not consecutive.
    BadIndex,
    /// The timestamp regressed relative to the predecessor.
    TimestampRegression,
    /// The block carries no plans.
    Empty,
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockError::BadSignature => "block signature does not verify",
            BlockError::BadMerkleRoot => "plans do not match the Merkle root",
            BlockError::BrokenLink => "previous-hash link is broken",
            BlockError::BadIndex => "block index is not consecutive",
            BlockError::TimestampRegression => "block timestamp regressed",
            BlockError::Empty => "block carries no plans",
        })
    }
}

impl Error for BlockError {}

/// Verifies a block in isolation: non-empty, signature valid, Merkle root
/// consistent with the carried plans.
///
/// # Errors
///
/// Returns the first failed check.
pub fn verify_block(block: &Block, verifier: &dyn SignatureScheme) -> Result<(), BlockError> {
    if block.plans().is_empty() {
        return Err(BlockError::Empty);
    }
    if !verifier.verify(&block.own_signing_digest(), block.signature()) {
        return Err(BlockError::BadSignature);
    }
    if block.computed_root() != block.merkle_root() {
        return Err(BlockError::BadMerkleRoot);
    }
    Ok(())
}

/// Verifies that `next` chains correctly onto `prev`: consecutive index,
/// matching hash link, non-decreasing timestamp.
///
/// # Errors
///
/// Returns the first failed check.
pub fn verify_link(prev: &Block, next: &Block) -> Result<(), BlockError> {
    if next.index() != prev.index() + 1 {
        return Err(BlockError::BadIndex);
    }
    if next.prev_hash() != prev.hash() {
        return Err(BlockError::BrokenLink);
    }
    if next.timestamp() < prev.timestamp() {
        return Err(BlockError::TimestampRegression);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::BlockPackager;
    use crate::tamper;
    use nwade_crypto::{Digest, MockScheme};
    use std::sync::Arc;

    fn chain(n: usize) -> (Arc<MockScheme>, Vec<Block>) {
        let scheme = Arc::new(MockScheme::from_seed(3));
        let mut p = BlockPackager::new(scheme.clone());
        // Vary the batch size so no two blocks carry identical plan sets.
        let blocks = (0..n)
            .map(|i| p.package(crate::block::tests::plans(2 + i as u64), i as f64))
            .collect();
        (scheme, blocks)
    }

    #[test]
    fn honest_chain_verifies() {
        let (scheme, blocks) = chain(4);
        for b in &blocks {
            verify_block(b, scheme.as_ref()).expect("block valid");
        }
        for w in blocks.windows(2) {
            verify_link(&w[0], &w[1]).expect("link valid");
        }
    }

    #[test]
    fn forged_signature_detected() {
        let (scheme, blocks) = chain(1);
        let forged = tamper::forge_signature(&blocks[0]);
        assert_eq!(
            verify_block(&forged, scheme.as_ref()),
            Err(BlockError::BadSignature)
        );
    }

    #[test]
    fn swapped_plan_detected_via_root() {
        let (scheme, blocks) = chain(2);
        let tampered = tamper::swap_plans(&blocks[0], &blocks[1]);
        assert_eq!(
            verify_block(&tampered, scheme.as_ref()),
            Err(BlockError::BadMerkleRoot)
        );
    }

    #[test]
    fn broken_link_detected() {
        let (_, blocks) = chain(3);
        assert_eq!(
            verify_link(&blocks[0], &blocks[2]),
            Err(BlockError::BadIndex)
        );
        let rehung = tamper::relink(&blocks[1], Digest::ZERO);
        assert_eq!(
            verify_link(&blocks[0], &rehung),
            Err(BlockError::BrokenLink)
        );
    }

    #[test]
    fn timestamp_regression_detected() {
        let (scheme, _) = chain(0);
        let mut p = BlockPackager::new(scheme);
        let b0 = p.package(crate::block::tests::plans(2), 10.0);
        let b1 = p.package(crate::block::tests::plans(2), 5.0);
        assert_eq!(verify_link(&b0, &b1), Err(BlockError::TimestampRegression));
    }

    #[test]
    fn empty_block_rejected() {
        let (scheme, blocks) = chain(1);
        let empty = Block::from_parts(
            blocks[0].index(),
            blocks[0].signature().to_vec(),
            blocks[0].prev_hash(),
            blocks[0].timestamp(),
            blocks[0].merkle_root(),
            Vec::new(),
        );
        assert_eq!(
            verify_block(&empty, scheme.as_ref()),
            Err(BlockError::Empty)
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msgs: Vec<String> = [
            BlockError::BadSignature,
            BlockError::BadMerkleRoot,
            BlockError::BrokenLink,
            BlockError::BadIndex,
            BlockError::TimestampRegression,
            BlockError::Empty,
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        let unique: std::collections::HashSet<_> = msgs.iter().collect();
        assert_eq!(unique.len(), msgs.len());
        assert!(msgs.iter().all(|m| !m.is_empty()));
    }
}
