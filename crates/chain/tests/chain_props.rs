//! Property tests for the chaos-hardening guarantees: no corrupted block
//! is ever accepted by Algorithm 1's cryptographic checks, and the chain
//! cache never desyncs — it stays hash-linked and bounded under arbitrary
//! interleavings of appends, back-fills, and foreign-chain injections.

use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_chain::{verify_block, verify_link, Block, BlockPackager, ChainCache};
use nwade_crypto::{Digest, MockScheme};
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Factory {
    scheduler: ReservationScheduler,
    packager: BlockPackager,
    scheme: Arc<MockScheme>,
    clock: f64,
    next: u64,
}

impl Factory {
    fn new(seed: u64) -> Self {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let scheme = Arc::new(MockScheme::from_seed(seed));
        Factory {
            scheduler: ReservationScheduler::new(topo, SchedulerConfig::default()),
            packager: BlockPackager::new(scheme.clone()),
            scheme,
            clock: 0.0,
            next: 0,
        }
    }

    fn block(&mut self, n: usize) -> Block {
        let plans: Vec<_> = (0..n)
            .flat_map(|_| {
                let id = self.next;
                self.next += 1;
                self.clock += 3.0;
                self.scheduler.schedule(
                    &[PlanRequest {
                        id: VehicleId::new(id),
                        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
                        movement: MovementId::new(((id * 3) % 16) as u16),
                        position_s: 0.0,
                        speed: 15.0,
                    }],
                    self.clock,
                )
            })
            .collect();
        self.packager.package(plans, self.clock)
    }

    fn chain(seed: u64, n: usize) -> (Arc<MockScheme>, Vec<Block>) {
        let mut f = Factory::new(seed);
        let blocks = (0..n).map(|i| f.block(1 + i % 3)).collect();
        (f.scheme.clone(), blocks)
    }
}

fn flip_bit(d: &Digest, byte: usize, bit: u8) -> Digest {
    let mut out = *d;
    out.0[byte % 32] ^= 1 << (bit % 8);
    out
}

/// Applies one of the corruption modes a hostile channel or peer could
/// produce and returns the mutated block.
fn corrupt(block: &Block, mode: usize, byte: usize, bit: u8) -> Block {
    let mut signature = block.signature().to_vec();
    let mut prev_hash = block.prev_hash();
    let mut timestamp = block.timestamp();
    let mut index = block.index();
    let mut root = block.merkle_root();
    let mut plans = block.plans().to_vec();
    match mode {
        0 => {
            let i = byte % signature.len();
            signature[i] ^= 1 << (bit % 8);
        }
        1 => prev_hash = flip_bit(&prev_hash, byte, bit),
        2 => root = flip_bit(&root, byte, bit),
        3 => timestamp += 0.125 + byte as f64,
        4 => index = index.wrapping_add(1 + byte as u64),
        _ => {
            // Plan-set tampering: drop a plan, or duplicate one.
            if plans.len() > 1 && bit.is_multiple_of(2) {
                plans.remove(byte % plans.len());
            } else {
                let p = plans[byte % plans.len()].clone();
                plans.push(p);
            }
        }
    }
    Block::from_parts(index, signature, prev_hash, timestamp, root, plans)
}

proptest! {
    /// Algorithm 1 rejects every single-field corruption of an honestly
    /// packaged block: the signature covers index, prev-hash, timestamp
    /// and Merkle root, and the root covers the plan set, so any bit flip
    /// or plan tampering fails `verify_block`.
    #[test]
    fn corrupted_block_is_never_accepted(
        block_idx in 0usize..4,
        mode in 0usize..6,
        byte in 0usize..32,
        bit in 0u8..8,
    ) {
        let (scheme, blocks) = Factory::chain(7, 4);
        let target = &blocks[block_idx];
        let mutated = corrupt(target, mode, byte, bit);
        prop_assert!(
            verify_block(&mutated, scheme.as_ref()).is_err(),
            "mode {} corruption of block {} must not verify",
            mode,
            block_idx
        );
        // The honest original still verifies (the factory is sound).
        prop_assert!(verify_block(target, scheme.as_ref()).is_ok());
        // Link-level checks also catch the mutations they cover.
        if block_idx > 0 && matches!(mode, 1 | 4) {
            prop_assert!(verify_link(&blocks[block_idx - 1], &mutated).is_err());
        }
    }

    /// The cache never desyncs: under any interleaving of in-order and
    /// out-of-order appends, history back-fills, and blocks from a
    /// foreign chain, the cached blocks always form a hash-linked run of
    /// consecutive indices within capacity.
    #[test]
    fn cache_stays_hash_linked_under_arbitrary_ops(
        capacity in 1usize..8,
        ops in proptest::collection::vec((0usize..3, 0usize..10), 1..50),
    ) {
        let (_, blocks) = Factory::chain(11, 10);
        let (_, foreign) = Factory::chain(13, 10);
        let mut cache = ChainCache::new(capacity);
        for (op, idx) in ops {
            // Results are allowed to be errors — rejection IS the
            // mechanism. What must never happen is a desync.
            let _ = match op {
                0 => cache.append(blocks[idx].clone()),
                1 => cache.prepend(blocks[idx].clone()),
                _ => cache.append(foreign[idx].clone()),
            };
            prop_assert!(cache.len() <= capacity, "capacity bound holds");
            let cached: Vec<&Block> = cache.iter().collect();
            for w in cached.windows(2) {
                prop_assert!(
                    verify_link(w[0], w[1]).is_ok(),
                    "cache desynced: block {} does not chain onto block {}",
                    w[1].index(),
                    w[0].index()
                );
            }
        }
    }

    /// The canonical block codec round-trips every honestly packaged
    /// block bit-for-bit — including hash, signature and Merkle root —
    /// and rejects every strict prefix of the encoding (a torn WAL tail
    /// can cut a record anywhere).
    #[test]
    fn block_codec_round_trips_and_rejects_truncation(
        seed in 1u64..64,
        n_blocks in 1usize..4,
        cut_frac in 0.0f64..1.0,
    ) {
        let (scheme, blocks) = Factory::chain(seed, n_blocks);
        for block in &blocks {
            let bytes = block.encode();
            let decoded = Block::decode(&bytes);
            prop_assert_eq!(decoded.as_ref(), Some(block));
            let decoded = decoded.unwrap();
            prop_assert_eq!(decoded.hash(), block.hash());
            prop_assert!(verify_block(&decoded, scheme.as_ref()).is_ok());

            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            if cut < bytes.len() {
                prop_assert_eq!(Block::decode(&bytes[..cut]), None);
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            prop_assert_eq!(Block::decode(&trailing), None);
        }
    }

    /// Plan encodings embedded back-to-back (the block and WAL layout)
    /// decode in order via the cursor API, and the plan codec rejects
    /// every strict prefix.
    #[test]
    fn plan_codec_round_trips_through_cursor(
        seed in 1u64..64,
        n_plans in 1usize..6,
        cut_frac in 0.0f64..1.0,
    ) {
        let (_, blocks) = Factory::chain(seed, 1);
        let plans: Vec<_> = blocks[0].plans().iter().cloned().cycle().take(n_plans).collect();
        let mut stream = Vec::new();
        for p in &plans {
            stream.extend_from_slice(&p.encode());
        }
        let mut cursor: &[u8] = &stream;
        for expect in &plans {
            let got = nwade_aim::TravelPlan::decode_from(&mut cursor);
            prop_assert_eq!(got.as_ref(), Some(expect));
        }
        prop_assert!(cursor.is_empty());

        let one = plans[0].encode();
        let cut = ((one.len() as f64) * cut_frac) as usize;
        if cut < one.len() {
            prop_assert_eq!(nwade_aim::TravelPlan::decode(&one[..cut]), None);
        }
    }
}
