//! Chain-level integration scenarios beyond the unit tests: long chains
//! with eviction, Merkle proofs served out of blocks, and packet-loss
//! style gaps.

use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_chain::{Block, BlockPackager, ChainCache};
use nwade_crypto::merkle::leaf_hash;
use nwade_crypto::MockScheme;
use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Factory {
    scheduler: ReservationScheduler,
    packager: BlockPackager,
    clock: f64,
    next: u64,
}

impl Factory {
    fn new(seed: u64) -> Self {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        Factory {
            scheduler: ReservationScheduler::new(topo, SchedulerConfig::default()),
            packager: BlockPackager::new(Arc::new(MockScheme::from_seed(seed))),
            clock: 0.0,
            next: 0,
        }
    }

    fn block(&mut self, n: usize) -> Block {
        let plans: Vec<_> = (0..n)
            .flat_map(|_| {
                let id = self.next;
                self.next += 1;
                self.clock += 3.0;
                self.scheduler.schedule(
                    &[PlanRequest {
                        id: VehicleId::new(id),
                        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
                        movement: MovementId::new(((id * 3) % 16) as u16),
                        position_s: 0.0,
                        speed: 15.0,
                    }],
                    self.clock,
                )
            })
            .collect();
        self.packager.package(plans, self.clock)
    }
}

#[test]
fn long_chain_respects_capacity_and_lookup() {
    let mut f = Factory::new(1);
    let capacity = 7;
    let mut cache = ChainCache::new(capacity);
    let mut blocks = Vec::new();
    for _ in 0..20 {
        let b = f.block(2);
        cache.append(b.clone()).expect("chains");
        blocks.push(b);
    }
    assert_eq!(cache.len(), capacity);
    // Only the newest `capacity` blocks remain addressable.
    assert!(cache.block_at(12).is_none());
    assert!(cache.block_at(13).is_some());
    assert_eq!(cache.tip().expect("tip").index(), 19);
    // Plans from evicted blocks are gone; recent ones resolve.
    let recent_vehicle = blocks[19].plans()[0].id();
    assert!(cache.plan_for(recent_vehicle).is_some());
    let old_vehicle = blocks[0].plans()[0].id();
    assert!(cache.plan_for(old_vehicle).is_none());
}

#[test]
fn merkle_proofs_from_cached_blocks_serve_single_plans() {
    // The Fig. 3 use case: a watcher needs one neighbour's plan from a
    // peer without trusting the peer — the proof ties it to the signed
    // root.
    let mut f = Factory::new(2);
    let block = f.block(6);
    let tree = block.merkle_tree();
    for (i, plan) in block.plans().iter().enumerate() {
        let proof = tree.prove(i);
        assert!(proof.verify(&leaf_hash(&plan.encode()), &block.merkle_root()));
    }
    // A plan from a different block never proves against this root.
    let other = f.block(3);
    let foreign = &other.plans()[0];
    let proof = tree.prove(0);
    assert!(!proof.verify(&leaf_hash(&foreign.encode()), &block.merkle_root()));
}

#[test]
fn gap_then_refill_recovers_the_chain() {
    let mut f = Factory::new(3);
    let blocks: Vec<Block> = (0..5).map(|_| f.block(1)).collect();
    let mut cache = ChainCache::new(10);
    cache.append(blocks[0].clone()).expect("b0");
    // Blocks 1-2 lost; 3 rejected for the gap.
    assert!(cache.append(blocks[3].clone()).is_err());
    // Refill in order (as a BlockResponse would).
    for b in &blocks[1..] {
        cache.append(b.clone()).expect("refill chains");
    }
    assert_eq!(cache.len(), 5);
    assert_eq!(cache.tip().expect("tip").index(), 4);
}

#[test]
fn block_hash_chain_is_tamper_evident_end_to_end() {
    let mut f = Factory::new(4);
    let blocks: Vec<Block> = (0..6).map(|_| f.block(2)).collect();
    // Every consecutive pair is linked by hash.
    for w in blocks.windows(2) {
        assert_eq!(w[1].prev_hash(), w[0].hash());
    }
    // Rewriting any block invalidates the link to its successor.
    for i in 0..blocks.len() - 1 {
        let tampered = nwade_chain::tamper::forge_signature(&blocks[i]);
        assert_ne!(
            tampered.hash(),
            blocks[i + 1].prev_hash(),
            "tampering block {i} must break the chain"
        );
    }
}
