//! Table I: the eleven attack settings and the behaviours they inject.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a compromised vehicle violates its travel plan (threat i/ii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Slams the brakes and stops in traffic.
    SuddenStop,
    /// Accelerates beyond the plan (and the speed limit).
    SpeedUp,
    /// Drifts off its lane center line (the Fig. 1a lane change).
    LaneDeviation,
}

impl ViolationKind {
    /// All modeled violations.
    pub const ALL: [ViolationKind; 3] = [
        ViolationKind::SuddenStop,
        ViolationKind::SpeedUp,
        ViolationKind::LaneDeviation,
    ];
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackSetting {
    /// One malicious vehicle, benign manager.
    V1,
    /// Two malicious vehicles (1 violates, 1 sends false reports).
    V2,
    /// Three malicious vehicles (1 violates, 2 send false reports).
    V3,
    /// Five malicious vehicles (1 violates, 4 send false reports).
    V5,
    /// Ten malicious vehicles (1 violates, 9 send false reports).
    V10,
    /// Malicious manager alone.
    Im,
    /// Malicious manager + 1 vehicle.
    ImV1,
    /// Malicious manager + 2 vehicles.
    ImV2,
    /// Malicious manager + 3 vehicles.
    ImV3,
    /// Malicious manager + 5 vehicles.
    ImV5,
    /// Malicious manager + 10 vehicles.
    ImV10,
}

impl AttackSetting {
    /// All settings, in Table I order.
    pub const ALL: [AttackSetting; 11] = [
        AttackSetting::V1,
        AttackSetting::V2,
        AttackSetting::V3,
        AttackSetting::V5,
        AttackSetting::V10,
        AttackSetting::Im,
        AttackSetting::ImV1,
        AttackSetting::ImV2,
        AttackSetting::ImV3,
        AttackSetting::ImV5,
        AttackSetting::ImV10,
    ];

    /// Number of malicious vehicles (Table I column 2).
    pub fn malicious_vehicles(&self) -> usize {
        match self {
            AttackSetting::V1 | AttackSetting::ImV1 => 1,
            AttackSetting::V2 | AttackSetting::ImV2 => 2,
            AttackSetting::V3 | AttackSetting::ImV3 => 3,
            AttackSetting::V5 | AttackSetting::ImV5 => 5,
            AttackSetting::V10 | AttackSetting::ImV10 => 10,
            AttackSetting::Im => 0,
        }
    }

    /// Whether the intersection manager is malicious (column 3).
    pub fn im_malicious(&self) -> bool {
        matches!(
            self,
            AttackSetting::Im
                | AttackSetting::ImV1
                | AttackSetting::ImV2
                | AttackSetting::ImV3
                | AttackSetting::ImV5
                | AttackSetting::ImV10
        )
    }

    /// Number of travel-plan violations staged (column 4).
    pub fn plan_violations(&self) -> usize {
        if *self == AttackSetting::Im {
            0
        } else {
            1
        }
    }

    /// Number of vehicles sending false reports (column 5).
    pub fn false_reports(&self) -> usize {
        self.malicious_vehicles()
            .saturating_sub(self.plan_violations())
    }

    /// Table I label.
    pub fn label(&self) -> &'static str {
        match self {
            AttackSetting::V1 => "V1",
            AttackSetting::V2 => "V2",
            AttackSetting::V3 => "V3",
            AttackSetting::V5 => "V5",
            AttackSetting::V10 => "V10",
            AttackSetting::Im => "IM",
            AttackSetting::ImV1 => "IM_V1",
            AttackSetting::ImV2 => "IM_V2",
            AttackSetting::ImV3 => "IM_V3",
            AttackSetting::ImV5 => "IM_V5",
            AttackSetting::ImV10 => "IM_V10",
        }
    }
}

impl fmt::Display for AttackSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_rows_match_paper() {
        // (label, #malicious, im?, violations, false reports)
        let expected: [(&str, usize, bool, usize, usize); 11] = [
            ("V1", 1, false, 1, 0),
            ("V2", 2, false, 1, 1),
            ("V3", 3, false, 1, 2),
            ("V5", 5, false, 1, 4),
            ("V10", 10, false, 1, 9),
            ("IM", 0, true, 0, 0),
            ("IM_V1", 1, true, 1, 0),
            ("IM_V2", 2, true, 1, 1),
            ("IM_V3", 3, true, 1, 2),
            ("IM_V5", 5, true, 1, 4),
            ("IM_V10", 10, true, 1, 9),
        ];
        for (setting, (label, n, im, viol, fr)) in AttackSetting::ALL.iter().zip(expected) {
            assert_eq!(setting.label(), label);
            assert_eq!(setting.malicious_vehicles(), n, "{label}");
            assert_eq!(setting.im_malicious(), im, "{label}");
            assert_eq!(setting.plan_violations(), viol, "{label}");
            assert_eq!(setting.false_reports(), fr, "{label}");
        }
    }

    #[test]
    fn labels_distinct_and_display_matches() {
        let mut labels: Vec<&str> = AttackSetting::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 11);
        assert_eq!(AttackSetting::ImV5.to_string(), "IM_V5");
    }

    #[test]
    fn violation_kinds_enumerated() {
        assert_eq!(ViolationKind::ALL.len(), 3);
    }
}
