//! NWADE protocol parameters.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the NWADE mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NwadeConfig {
    /// Processing window δ: how often the manager packages a block,
    /// seconds.
    pub processing_window: f64,
    /// Position deviation beyond which a watcher reports a neighbour,
    /// meters (Algorithm 2's tolerance threshold).
    pub position_tolerance: f64,
    /// Speed deviation tolerance, m/s.
    pub speed_tolerance: f64,
    /// Vehicle sensing radius, meters (paper default 1000 ft ≈ 305 m).
    pub sensing_radius: f64,
    /// How long a reporting vehicle waits for the manager's response
    /// before assuming the manager is compromised, seconds.
    pub report_timeout: f64,
    /// Number of distinct global reports about one claim that push a far
    /// vehicle into self-evacuation — §IV-B3's safety threshold, "set
    /// accordingly" from Eq. 3: the majority quorum of the ~20 vehicles
    /// in sensing range at medium density is 11 (§IV-B4's worked
    /// example).
    pub global_report_threshold: usize,
    /// Temporal gap used by the plan conflict check, seconds.
    pub conflict_gap: f64,
    /// Number of watchers the manager polls per verification group.
    pub verification_group_size: usize,
    /// Chain cache capacity τ/δ: crossing time over window length.
    pub chain_cache_capacity: usize,
    /// Most blocks the manager returns for one vehicle block request
    /// (bounds the response to a catch-up query; the vehicle re-asks
    /// from its new tip for more).
    pub block_backfill_limit: usize,
    /// How many recent blocks the manager retains for serving block
    /// requests. Should cover `block_backfill_limit` plus the deepest
    /// realistic catch-up gap (a vehicle crossing takes τ/δ windows).
    pub recent_block_retention: usize,
    /// Age beyond which scheduler reservations are garbage-collected,
    /// seconds before the current window. Must exceed the longest plan
    /// horizon (`SchedulerConfig::max_delay` plus crossing time) or live
    /// reservations would be dropped mid-plan.
    pub reservation_gc_horizon: f64,
}

impl Default for NwadeConfig {
    fn default() -> Self {
        NwadeConfig {
            processing_window: 1.0,
            position_tolerance: 5.0,
            speed_tolerance: 3.0,
            sensing_radius: nwade_geometry::units::paper::sensing_radius_m(),
            report_timeout: 1.0,
            global_report_threshold: 11,
            conflict_gap: 0.5,
            verification_group_size: 5,
            chain_cache_capacity: 60,
            block_backfill_limit: 16,
            recent_block_retention: 64,
            reservation_gc_horizon: 120.0,
        }
    }
}

impl NwadeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.processing_window > 0.0) {
            return Err("processing window must be positive".into());
        }
        if !(self.position_tolerance > 0.0 && self.speed_tolerance > 0.0) {
            return Err("tolerances must be positive".into());
        }
        if !(self.sensing_radius > 0.0) {
            return Err("sensing radius must be positive".into());
        }
        if !(self.report_timeout > 0.0) {
            return Err("report timeout must be positive".into());
        }
        if self.global_report_threshold == 0 {
            return Err("global report threshold must be at least 1".into());
        }
        if self.verification_group_size == 0 {
            return Err("verification group size must be at least 1".into());
        }
        if self.chain_cache_capacity == 0 {
            return Err("chain cache capacity must be at least 1".into());
        }
        if self.block_backfill_limit == 0 {
            return Err("block backfill limit must be at least 1".into());
        }
        if self.recent_block_retention < self.block_backfill_limit {
            return Err("recent block retention must cover the backfill limit".into());
        }
        if !(self.reservation_gc_horizon > 0.0) {
            return Err("reservation GC horizon must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NwadeConfig::default().validate().expect("default valid");
    }

    #[test]
    fn default_sensing_radius_is_1000_ft() {
        let c = NwadeConfig::default();
        assert!((c.sensing_radius - 304.8).abs() < 0.1);
    }

    #[test]
    fn invalid_fields_rejected() {
        let base = NwadeConfig::default();
        let mut c = base;
        c.processing_window = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.global_report_threshold = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.verification_group_size = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.position_tolerance = -1.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.chain_cache_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.block_backfill_limit = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.recent_block_retention = c.block_backfill_limit - 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.reservation_gc_horizon = 0.0;
        assert!(c.validate().is_err());
    }
}
