//! NWADE protocol parameters.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the NWADE mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NwadeConfig {
    /// Processing window δ: how often the manager packages a block,
    /// seconds.
    pub processing_window: f64,
    /// Position deviation beyond which a watcher reports a neighbour,
    /// meters (Algorithm 2's tolerance threshold).
    pub position_tolerance: f64,
    /// Speed deviation tolerance, m/s.
    pub speed_tolerance: f64,
    /// Vehicle sensing radius, meters (paper default 1000 ft ≈ 305 m).
    pub sensing_radius: f64,
    /// How long a reporting vehicle waits for the manager's response
    /// before assuming the manager is compromised, seconds.
    pub report_timeout: f64,
    /// Number of distinct global reports about one claim that push a far
    /// vehicle into self-evacuation — §IV-B3's safety threshold, "set
    /// accordingly" from Eq. 3: the majority quorum of the ~20 vehicles
    /// in sensing range at medium density is 11 (§IV-B4's worked
    /// example).
    pub global_report_threshold: usize,
    /// Temporal gap used by the plan conflict check, seconds.
    pub conflict_gap: f64,
    /// Number of watchers the manager polls per verification group.
    pub verification_group_size: usize,
    /// Chain cache capacity τ/δ: crossing time over window length.
    pub chain_cache_capacity: usize,
}

impl Default for NwadeConfig {
    fn default() -> Self {
        NwadeConfig {
            processing_window: 1.0,
            position_tolerance: 5.0,
            speed_tolerance: 3.0,
            sensing_radius: nwade_geometry::units::paper::sensing_radius_m(),
            report_timeout: 1.0,
            global_report_threshold: 11,
            conflict_gap: 0.5,
            verification_group_size: 5,
            chain_cache_capacity: 60,
        }
    }
}

impl NwadeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.processing_window > 0.0) {
            return Err("processing window must be positive".into());
        }
        if !(self.position_tolerance > 0.0 && self.speed_tolerance > 0.0) {
            return Err("tolerances must be positive".into());
        }
        if !(self.sensing_radius > 0.0) {
            return Err("sensing radius must be positive".into());
        }
        if !(self.report_timeout > 0.0) {
            return Err("report timeout must be positive".into());
        }
        if self.global_report_threshold == 0 {
            return Err("global report threshold must be at least 1".into());
        }
        if self.verification_group_size == 0 {
            return Err("verification group size must be at least 1".into());
        }
        if self.chain_cache_capacity == 0 {
            return Err("chain cache capacity must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NwadeConfig::default().validate().expect("default valid");
    }

    #[test]
    fn default_sensing_radius_is_1000_ft() {
        let c = NwadeConfig::default();
        assert!((c.sensing_radius - 304.8).abs() < 0.1);
    }

    #[test]
    fn invalid_fields_rejected() {
        let base = NwadeConfig::default();
        let mut c = base;
        c.processing_window = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.global_report_threshold = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.verification_group_size = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.position_tolerance = -1.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.chain_cache_capacity = 0;
        assert!(c.validate().is_err());
    }
}
