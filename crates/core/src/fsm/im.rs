//! The intersection manager's seven-state automaton (Fig. 2, top).

use crate::fsm::InvalidTransition;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The manager's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImState {
    /// Waiting for requests or reports.
    Standby,
    /// Computing travel plans for a batch of requests.
    TravelScheduling,
    /// Packaging the new plans into a block.
    BlockPackaging,
    /// Broadcasting the block to vehicles.
    BlockDissemination,
    /// Verifying an incident report via watcher groups.
    ReportVerification,
    /// Generating and broadcasting evacuation plans.
    Evacuation,
    /// Bringing traffic back to normal speed after a cleared threat.
    PostEvacuationRecovery,
}

/// Events driving the manager automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImEvent {
    /// Plan requests arrived from incoming vehicles.
    RequestsReceived,
    /// The scheduler finished a batch.
    PlansGenerated,
    /// The block is signed and chained.
    BlockPackaged,
    /// The block broadcast completed.
    BlockDisseminated,
    /// An incident report arrived from a watcher.
    IncidentReportReceived,
    /// Verification concluded the report was false.
    ReportDismissed,
    /// Verification confirmed the threat.
    ThreatConfirmed,
    /// The threat cleared (malicious vehicle left or stopped).
    ThreatCleared,
    /// Traffic is back to normal speed.
    RecoveryComplete,
}

impl fmt::Display for ImState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl ImState {
    /// Applies `event`, returning the next state.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTransition`] when the event is not accepted in
    /// the current state (the table is deterministic and total over the
    /// valid protocol flow only).
    pub fn step(self, event: ImEvent) -> Result<ImState, InvalidTransition> {
        use ImEvent::*;
        use ImState::*;
        let next = match (self, event) {
            (Standby, RequestsReceived) => TravelScheduling,
            (Standby, IncidentReportReceived) => ReportVerification,
            (TravelScheduling, PlansGenerated) => BlockPackaging,
            (BlockPackaging, BlockPackaged) => BlockDissemination,
            (BlockDissemination, BlockDisseminated) => Standby,
            (ReportVerification, ReportDismissed) => Standby,
            (ReportVerification, ThreatConfirmed) => Evacuation,
            // New reports during verification stay in verification.
            (ReportVerification, IncidentReportReceived) => ReportVerification,
            (Evacuation, ThreatCleared) => PostEvacuationRecovery,
            // Newly identified threats keep the manager evacuating.
            (Evacuation, IncidentReportReceived) => Evacuation,
            (Evacuation, ThreatConfirmed) => Evacuation,
            (PostEvacuationRecovery, RecoveryComplete) => Standby,
            (PostEvacuationRecovery, IncidentReportReceived) => ReportVerification,
            (state, event) => {
                return Err(InvalidTransition {
                    state: state.to_string(),
                    event: format!("{event:?}"),
                })
            }
        };
        Ok(next)
    }

    /// `true` when the manager is in a state where it schedules normal
    /// traffic.
    pub fn is_operational(self) -> bool {
        !matches!(self, ImState::Evacuation | ImState::PostEvacuationRecovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_round_trip() {
        let mut s = ImState::Standby;
        for e in [
            ImEvent::RequestsReceived,
            ImEvent::PlansGenerated,
            ImEvent::BlockPackaged,
            ImEvent::BlockDisseminated,
        ] {
            s = s.step(e).expect("valid scheduling flow");
        }
        assert_eq!(s, ImState::Standby);
    }

    #[test]
    fn incident_flow_dismissal() {
        let s = ImState::Standby
            .step(ImEvent::IncidentReportReceived)
            .and_then(|s| s.step(ImEvent::ReportDismissed))
            .expect("dismissal flow");
        assert_eq!(s, ImState::Standby);
    }

    #[test]
    fn incident_flow_evacuation_and_recovery() {
        let mut s = ImState::Standby;
        for e in [
            ImEvent::IncidentReportReceived,
            ImEvent::ThreatConfirmed,
            ImEvent::ThreatCleared,
            ImEvent::RecoveryComplete,
        ] {
            s = s.step(e).expect("evacuation flow");
        }
        assert_eq!(s, ImState::Standby);
    }

    #[test]
    fn reports_during_verification_are_absorbed() {
        let s = ImState::ReportVerification
            .step(ImEvent::IncidentReportReceived)
            .expect("absorbed");
        assert_eq!(s, ImState::ReportVerification);
    }

    #[test]
    fn new_threats_during_evacuation_stay_in_evacuation() {
        assert_eq!(
            ImState::Evacuation.step(ImEvent::ThreatConfirmed),
            Ok(ImState::Evacuation)
        );
        assert_eq!(
            ImState::Evacuation.step(ImEvent::IncidentReportReceived),
            Ok(ImState::Evacuation)
        );
    }

    #[test]
    fn recovery_interrupted_by_new_report() {
        assert_eq!(
            ImState::PostEvacuationRecovery.step(ImEvent::IncidentReportReceived),
            Ok(ImState::ReportVerification)
        );
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let err = ImState::Standby
            .step(ImEvent::PlansGenerated)
            .expect_err("no plans without requests");
        assert!(err.to_string().contains("Standby"));
        assert!(ImState::BlockPackaging
            .step(ImEvent::ThreatCleared)
            .is_err());
        assert!(ImState::Evacuation.step(ImEvent::RecoveryComplete).is_err());
    }

    #[test]
    fn operational_states() {
        assert!(ImState::Standby.is_operational());
        assert!(ImState::TravelScheduling.is_operational());
        assert!(!ImState::Evacuation.is_operational());
        assert!(!ImState::PostEvacuationRecovery.is_operational());
    }

    #[test]
    fn exactly_seven_states_are_reachable() {
        // Walk the event alphabet from every discovered state.
        use std::collections::HashSet;
        let events = [
            ImEvent::RequestsReceived,
            ImEvent::PlansGenerated,
            ImEvent::BlockPackaged,
            ImEvent::BlockDisseminated,
            ImEvent::IncidentReportReceived,
            ImEvent::ReportDismissed,
            ImEvent::ThreatConfirmed,
            ImEvent::ThreatCleared,
            ImEvent::RecoveryComplete,
        ];
        let mut seen: HashSet<ImState> = HashSet::new();
        let mut frontier = vec![ImState::Standby];
        while let Some(s) = frontier.pop() {
            if !seen.insert(s) {
                continue;
            }
            for e in events {
                if let Ok(next) = s.step(e) {
                    frontier.push(next);
                }
            }
        }
        assert_eq!(seen.len(), 7, "Fig. 2 has seven manager states");
    }
}
