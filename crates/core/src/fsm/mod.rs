//! The event-driven deterministic finite automata of Fig. 2.

pub mod im;
pub mod vehicle;

pub use im::{ImEvent, ImState};
pub use vehicle::{VehicleEvent, VehicleState};

use std::error::Error;
use std::fmt;

/// An event arrived that the current state does not accept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTransition {
    /// The state the automaton was in.
    pub state: String,
    /// The offending event.
    pub event: String,
}

impl fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} not accepted in state {}",
            self.event, self.state
        )
    }
}

impl Error for InvalidTransition {}
