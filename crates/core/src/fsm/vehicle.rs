//! The vehicle's eight-state automaton (Fig. 2, bottom).

use crate::fsm::InvalidTransition;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The vehicle's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VehicleState {
    /// Entered the communication zone; sending status to the manager.
    Preparation,
    /// Verifying a received block (Algorithm 1).
    BlockVerification,
    /// Following the assigned plan; continuously watching neighbours.
    Following,
    /// Detected a deviating neighbour; reporting it (Algorithm 2).
    LocalVerification,
    /// Waiting for the manager to dismiss or confirm the report.
    ReportWaiting,
    /// Weighing peer global reports (Algorithm 3).
    GlobalVerification,
    /// Manager no longer trusted: finding a safe route out.
    SelfEvacuation,
    /// Out of the intersection area.
    Left,
}

/// Events driving the vehicle automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VehicleEvent {
    /// A block containing this vehicle's plan arrived.
    BlockReceived,
    /// Block verification succeeded.
    BlockValid,
    /// Block verification failed (bad signature, root, link or plans).
    BlockInvalid,
    /// A sensed neighbour deviates beyond tolerance.
    AnomalyDetected,
    /// The report was sent; awaiting the manager.
    ReportSent,
    /// The manager dismissed the alarm.
    AlarmDismissed,
    /// The manager confirmed and broadcast evacuation plans.
    EvacuationOrdered,
    /// The manager failed to answer within the timeout.
    ImTimeout,
    /// The manager came back after an outage with a verifiably intact
    /// chain: a vehicle that self-evacuated purely because the manager
    /// went silent re-enters the admission flow.
    ImRecovered,
    /// Enough peer global reports arrived to warrant checking.
    GlobalReportsReceived,
    /// Global verification found the manager trustworthy after all.
    GlobalCheckPassed,
    /// Global verification confirmed the manager is compromised.
    GlobalCheckFailed,
    /// The vehicle exited the modeled area.
    Exited,
}

impl fmt::Display for VehicleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl VehicleState {
    /// Applies `event`, returning the next state.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTransition`] for events the state does not
    /// accept.
    pub fn step(self, event: VehicleEvent) -> Result<VehicleState, InvalidTransition> {
        use VehicleEvent::*;
        use VehicleState::*;
        let next = match (self, event) {
            (Preparation, BlockReceived) => BlockVerification,
            (BlockVerification, BlockValid) => Following,
            (BlockVerification, BlockInvalid) => SelfEvacuation,
            // Re-verification of each subsequent block.
            (Following, BlockReceived) => BlockVerification,
            (Following, AnomalyDetected) => LocalVerification,
            (Following, GlobalReportsReceived) => GlobalVerification,
            (Following, Exited) => Left,
            (LocalVerification, ReportSent) => ReportWaiting,
            // The anomaly may resolve itself (sensing glitch).
            (LocalVerification, AlarmDismissed) => Following,
            (ReportWaiting, AlarmDismissed) => Following,
            (ReportWaiting, EvacuationOrdered) => Following,
            (ReportWaiting, ImTimeout) => SelfEvacuation,
            (ReportWaiting, GlobalReportsReceived) => GlobalVerification,
            (GlobalVerification, GlobalCheckPassed) => Following,
            (GlobalVerification, GlobalCheckFailed) => SelfEvacuation,
            (SelfEvacuation, Exited) => Left,
            // Outage recovery: the silence that caused the evacuation is
            // over and the chain still verifies; rejoin like a newcomer.
            // Evacuations caused by *distrust* (invalid blocks, global
            // check failures) never take this edge — the guard only
            // raises ImRecovered for timeout-caused evacuations.
            (SelfEvacuation, ImRecovered) => Preparation,
            (state, event) => {
                return Err(InvalidTransition {
                    state: state.to_string(),
                    event: format!("{event:?}"),
                })
            }
        };
        Ok(next)
    }

    /// `true` in states where the vehicle still trusts the manager.
    pub fn trusts_manager(self) -> bool {
        !matches!(self, VehicleState::SelfEvacuation)
    }

    /// `true` when the vehicle is still inside the modeled area.
    pub fn is_active(self) -> bool {
        self != VehicleState::Left
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_traveling_flow() {
        let mut s = VehicleState::Preparation;
        for e in [
            VehicleEvent::BlockReceived,
            VehicleEvent::BlockValid,
            VehicleEvent::Exited,
        ] {
            s = s.step(e).expect("normal flow");
        }
        assert_eq!(s, VehicleState::Left);
    }

    #[test]
    fn invalid_block_forces_self_evacuation() {
        let s = VehicleState::Preparation
            .step(VehicleEvent::BlockReceived)
            .and_then(|s| s.step(VehicleEvent::BlockInvalid))
            .expect("flow");
        assert_eq!(s, VehicleState::SelfEvacuation);
        assert!(!s.trusts_manager());
    }

    #[test]
    fn local_verification_report_and_dismissal() {
        let mut s = VehicleState::Following;
        s = s.step(VehicleEvent::AnomalyDetected).expect("watch");
        assert_eq!(s, VehicleState::LocalVerification);
        s = s.step(VehicleEvent::ReportSent).expect("sent");
        assert_eq!(s, VehicleState::ReportWaiting);
        s = s.step(VehicleEvent::AlarmDismissed).expect("dismissed");
        assert_eq!(s, VehicleState::Following);
    }

    #[test]
    fn im_timeout_triggers_self_evacuation() {
        let s = VehicleState::ReportWaiting
            .step(VehicleEvent::ImTimeout)
            .expect("timeout");
        assert_eq!(s, VehicleState::SelfEvacuation);
    }

    #[test]
    fn global_verification_paths() {
        let s = VehicleState::Following
            .step(VehicleEvent::GlobalReportsReceived)
            .expect("to global");
        assert_eq!(s, VehicleState::GlobalVerification);
        assert_eq!(
            s.step(VehicleEvent::GlobalCheckPassed),
            Ok(VehicleState::Following)
        );
        assert_eq!(
            s.step(VehicleEvent::GlobalCheckFailed),
            Ok(VehicleState::SelfEvacuation)
        );
    }

    #[test]
    fn evacuation_order_returns_to_following() {
        // The manager confirmed the threat and sent evacuation plans; the
        // vehicle follows them (they are verified like normal blocks).
        assert_eq!(
            VehicleState::ReportWaiting.step(VehicleEvent::EvacuationOrdered),
            Ok(VehicleState::Following)
        );
    }

    #[test]
    fn rechecks_every_new_block() {
        assert_eq!(
            VehicleState::Following.step(VehicleEvent::BlockReceived),
            Ok(VehicleState::BlockVerification)
        );
    }

    #[test]
    fn self_evacuation_only_exits_or_readmits() {
        assert!(VehicleState::SelfEvacuation
            .step(VehicleEvent::BlockReceived)
            .is_err());
        assert_eq!(
            VehicleState::SelfEvacuation.step(VehicleEvent::Exited),
            Ok(VehicleState::Left)
        );
        // Recovery from a manager outage re-enters the admission flow.
        assert_eq!(
            VehicleState::SelfEvacuation.step(VehicleEvent::ImRecovered),
            Ok(VehicleState::Preparation)
        );
        // No other state accepts the recovery event.
        for s in [
            VehicleState::Preparation,
            VehicleState::Following,
            VehicleState::ReportWaiting,
            VehicleState::Left,
        ] {
            assert!(s.step(VehicleEvent::ImRecovered).is_err());
        }
    }

    #[test]
    fn left_is_terminal() {
        for e in [
            VehicleEvent::BlockReceived,
            VehicleEvent::AnomalyDetected,
            VehicleEvent::Exited,
        ] {
            assert!(VehicleState::Left.step(e).is_err());
        }
        assert!(!VehicleState::Left.is_active());
    }

    #[test]
    fn exactly_eight_states_are_reachable() {
        use std::collections::HashSet;
        let events = [
            VehicleEvent::BlockReceived,
            VehicleEvent::BlockValid,
            VehicleEvent::BlockInvalid,
            VehicleEvent::AnomalyDetected,
            VehicleEvent::ReportSent,
            VehicleEvent::AlarmDismissed,
            VehicleEvent::EvacuationOrdered,
            VehicleEvent::ImTimeout,
            VehicleEvent::GlobalReportsReceived,
            VehicleEvent::GlobalCheckPassed,
            VehicleEvent::GlobalCheckFailed,
            VehicleEvent::Exited,
        ];
        let mut seen: HashSet<VehicleState> = HashSet::new();
        let mut frontier = vec![VehicleState::Preparation];
        while let Some(s) = frontier.pop() {
            if !seen.insert(s) {
                continue;
            }
            for e in events {
                if let Ok(next) = s.step(e) {
                    frontier.push(next);
                }
            }
        }
        assert_eq!(seen.len(), 8, "Fig. 2 has eight vehicle states");
    }
}
