//! [`VehicleGuard`]: the per-vehicle NWADE protocol engine.
//!
//! The guard owns everything a vehicle needs to make the paper's
//! decisions — its state machine, its chain cache, its global-report
//! bookkeeping and its pending incident report — and exposes pure
//! event-handler methods that return [`GuardAction`]s for the caller (the
//! simulator's vehicle agent, or a real on-board unit) to execute. It
//! performs no I/O itself.

use crate::config::NwadeConfig;
use crate::fsm::vehicle::{VehicleEvent, VehicleState};
use crate::messages::{GlobalClaim, GlobalReport, IncidentReport, Observation};
use crate::retry::{Retrier, RetryDecision, RetryPolicy};
use crate::verify::block::{verify_incoming_block, BlockFailure};
use crate::verify::global::{GlobalAction, GlobalVerifier};
use crate::verify::local::local_verify;
use nwade_aim::TravelPlan;
use nwade_chain::{Block, ChainCache};
use nwade_crypto::SignatureScheme;
use nwade_intersection::Topology;
use nwade_traffic::VehicleId;
use std::collections::HashMap;
use std::sync::Arc;

/// Cryptographic failures tolerated per block index before the guard
/// treats them as a real forgery instead of channel corruption. A
/// bit-flipped copy fails the signature check exactly like a forged
/// block; the difference is that a re-fetched genuine block verifies,
/// while a manager actually signing garbage keeps failing.
const MAX_CRYPTO_FAILURES: u32 = 3;

/// Why a guard entered self-evacuation — decides whether it may ever be
/// re-admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacuationCause {
    /// The manager went silent past the report timeout (Algorithm 2,
    /// lines 11–13). Recoverable: if the manager returns with an intact
    /// chain, the vehicle re-enters the admission flow.
    ImTimeout,
    /// The protocol proved misbehaviour (invalid block, failed global
    /// check, shielding). Terminal: the manager is never trusted again.
    Protocol,
}

/// What the guard wants its host to do.
#[derive(Debug, Clone)]
pub enum GuardAction {
    /// Start (or keep) following this plan.
    FollowPlan(TravelPlan),
    /// Send an incident report to the manager.
    SendIncidentReport(IncidentReport),
    /// Broadcast a global report to all peers.
    BroadcastGlobalReport(GlobalReport),
    /// Ask peers/manager for blocks starting at this index.
    RequestBlocks {
        /// First missing index.
        from_index: u64,
    },
    /// The manager recovered from an outage with a verifiably intact
    /// chain: this timeout-evacuated vehicle rejoins. The host should
    /// clear any evacuation announcements it relayed for this vehicle
    /// and request a fresh travel plan (the old one is stale).
    Readmit,
    /// A received global report was provably false (the accused block is
    /// held and verified) — the false alarm is *detected* (Table II).
    RebutGlobalReport {
        /// The rebutted claim.
        claim: GlobalClaim,
    },
    /// Peer dissents established that the manager's evacuation alert was
    /// staged: ignore it and continue the current plan.
    DisregardAlert {
        /// The falsely accused vehicle.
        suspect: VehicleId,
    },
    /// Stop trusting the manager and evacuate on local autonomy.
    SelfEvacuate,
}

/// An incident report awaiting the manager's verdict, kept whole so it
/// can be resent while the timeout clock runs.
#[derive(Debug, Clone)]
struct PendingReport {
    report: IncidentReport,
    sent: f64,
    retry: Retrier,
}

/// The per-vehicle protocol engine.
#[derive(Clone)]
pub struct VehicleGuard {
    id: VehicleId,
    topology: Arc<Topology>,
    verifier: Arc<dyn SignatureScheme>,
    config: NwadeConfig,
    state: VehicleState,
    cache: ChainCache,
    global: GlobalVerifier,
    own_plan: Option<TravelPlan>,
    /// Outstanding incident report (resent with backoff until the
    /// manager answers or the report timeout escalates).
    pending_report: Option<PendingReport>,
    /// Suspects already reported (avoid re-reporting every tick).
    reported: HashMap<VehicleId, f64>,
    /// Suspects whose reports the manager dismissed, with the dismissal
    /// count — repeated dismissals of an observably deviating vehicle
    /// mean the manager shields it.
    dismissed: HashMap<VehicleId, u32>,
    /// Vehicles known to be evacuating or confirmed threats: their
    /// deviation from stale plans is expected, not reportable.
    known_threats: std::collections::HashSet<VehicleId>,
    /// Set once the guard has decided to self-evacuate.
    evacuating: bool,
    /// Why (only meaningful while `evacuating`).
    evacuation_cause: Option<EvacuationCause>,
    /// The claim broadcast when self-evacuation began (re-broadcast
    /// periodically so late arrivals learn this vehicle is off-plan).
    evacuation_claim: Option<GlobalClaim>,
    /// The outstanding block request: target index and its retry
    /// schedule. Replaces the old fixed 2 s rate limit with bounded
    /// exponential backoff; cleared whenever the cache advances.
    block_retry: Option<(u64, Retrier)>,
    /// Cryptographic/link verification failures per block index —
    /// transient channel corruption is retried, persistent failure is
    /// treated as a forgery (Algorithm 1's reject path).
    crypto_failures: HashMap<u64, u32>,
}

impl std::fmt::Debug for VehicleGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VehicleGuard")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("blocks", &self.cache.len())
            .finish()
    }
}

impl VehicleGuard {
    /// Creates a guard for vehicle `id`.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid.
    pub fn new(
        id: VehicleId,
        topology: Arc<Topology>,
        verifier: Arc<dyn SignatureScheme>,
        config: NwadeConfig,
    ) -> Self {
        config.validate().expect("NWADE config must be valid");
        VehicleGuard {
            id,
            topology,
            verifier,
            cache: ChainCache::new(config.chain_cache_capacity),
            config,
            state: VehicleState::Preparation,
            global: GlobalVerifier::new(),
            own_plan: None,
            pending_report: None,
            reported: HashMap::new(),
            dismissed: HashMap::new(),
            known_threats: std::collections::HashSet::new(),
            evacuating: false,
            evacuation_cause: None,
            evacuation_claim: None,
            block_retry: None,
            crypto_failures: HashMap::new(),
        }
    }

    /// Emits a block request under bounded exponential backoff, so
    /// gossip storms and lossy channels cannot amplify into request
    /// floods. One logical request is outstanding at a time; asking for
    /// an earlier index restarts the schedule (the need changed), and a
    /// successful cache advance clears it.
    fn request_blocks(&mut self, from_index: u64, now: f64) -> Vec<GuardAction> {
        let salt = self.id.raw() ^ 0xB10C_FE7C;
        let retry = match &mut self.block_retry {
            Some((index, retry)) if *index <= from_index => retry,
            slot => {
                *slot = Some((
                    from_index,
                    Retrier::new(RetryPolicy::block_backfill(), now, salt),
                ));
                &mut slot.as_mut().expect("just set").1
            }
        };
        match retry.poll(now) {
            RetryDecision::Fire(_) => vec![GuardAction::RequestBlocks { from_index }],
            RetryDecision::Wait | RetryDecision::Exhausted => Vec::new(),
        }
    }

    /// The cache advanced: the outstanding block request (if any) is
    /// satisfied or superseded.
    fn note_cache_progress(&mut self) {
        self.block_retry = None;
    }

    /// This vehicle's id.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Current automaton state.
    pub fn state(&self) -> VehicleState {
        self.state
    }

    /// The plan currently followed, if any.
    pub fn plan(&self) -> Option<&TravelPlan> {
        self.own_plan.as_ref()
    }

    /// The chain cache (read access for peers requesting blocks).
    pub fn cache(&self) -> &ChainCache {
        &self.cache
    }

    /// `true` once the guard has stopped trusting the manager.
    pub fn is_evacuating(&self) -> bool {
        self.evacuating
    }

    /// The claim announced when this guard began self-evacuating, if it
    /// has. Hosts re-broadcast it periodically so vehicles arriving after
    /// the original announcement still learn this vehicle is off-plan.
    pub fn evacuation_claim(&self) -> Option<GlobalClaim> {
        self.evacuation_claim
    }

    fn step_fsm(&mut self, event: VehicleEvent) {
        // The FSM models the protocol's primary mode; events that arrive
        // in states where Fig. 2 has no edge (e.g. a block while waiting
        // for a report response) are absorbed without a mode change.
        if let Ok(next) = self.state.step(event) {
            self.state = next;
        }
    }

    fn enter_self_evacuation(
        &mut self,
        claim: GlobalClaim,
        cause: EvacuationCause,
        now: f64,
    ) -> Vec<GuardAction> {
        if self.evacuating {
            // A proven-misbehaviour cause overrides a recoverable one:
            // once distrust is earned, no outage recovery re-admits.
            if cause == EvacuationCause::Protocol {
                self.evacuation_cause = Some(EvacuationCause::Protocol);
            }
            return Vec::new();
        }
        self.evacuating = true;
        self.evacuation_cause = Some(cause);
        self.state = VehicleState::SelfEvacuation;
        self.evacuation_claim = Some(claim);
        vec![
            GuardAction::SelfEvacuate,
            GuardAction::BroadcastGlobalReport(GlobalReport {
                sender: self.id,
                claim,
                time: now,
            }),
        ]
    }

    /// The vehicle's own collision-avoidance stack forced it off its
    /// plan (hard braking for an obstacle): per §IV-B5, vehicles close to
    /// a threat "should have already detected the malicious vehicle
    /// through their own sensors and started self-evacuation". Announces
    /// itself as off-plan so peers stop holding it to the stale plan.
    pub fn force_self_evacuation(&mut self, now: f64) -> Vec<GuardAction> {
        self.enter_self_evacuation(
            GlobalClaim::AbnormalVehicle { suspect: self.id },
            EvacuationCause::Protocol,
            now,
        )
    }

    /// Why this guard is evacuating (`None` while it is not).
    pub fn evacuation_cause(&self) -> Option<EvacuationCause> {
        if self.evacuating {
            self.evacuation_cause
        } else {
            None
        }
    }

    /// Handles a received block (Algorithm 1 end to end).
    ///
    /// Two robustness layers sit on top of the paper's algorithm:
    ///
    /// * **Transient-corruption tolerance** — a copy whose signature or
    ///   hash link fails is indistinguishable from a forgery, but on a
    ///   faulty channel it is far more likely a bit-flipped copy. The
    ///   guard discards it, re-requests the index, and only takes
    ///   Algorithm 1's reject path (self-evacuation) after
    ///   [`MAX_CRYPTO_FAILURES`] failures of the *same* index. Validly
    ///   signed blocks with conflicting plans are proof of manager
    ///   misbehaviour — no channel produces a valid signature over
    ///   corrupted plans — and still reject immediately.
    /// * **Outage re-admission** — a guard that evacuated only because
    ///   the manager went silent ([`EvacuationCause::ImTimeout`]) treats
    ///   a fresh, fully verifying broadcast from the manager as proof of
    ///   recovery: it steps the `ImRecovered` FSM edge back into the
    ///   admission flow and emits [`GuardAction::Readmit`].
    pub fn on_block(&mut self, block: &Block, now: f64) -> Vec<GuardAction> {
        if self.evacuating && self.evacuation_cause != Some(EvacuationCause::ImTimeout) {
            return Vec::new(); // manager no longer trusted, ever
        }
        let readmitting = self.evacuating;
        // Gap: ask for the missing prefix before judging this block.
        if let Some(tip) = self.cache.tip() {
            if block.index() > tip.index() + 1 {
                let from_index = tip.index() + 1;
                return self.request_blocks(from_index, now);
            }
            if block.index() <= tip.index() {
                return Vec::new(); // duplicate or stale
            }
        }
        let state_before = self.state;
        if !readmitting {
            self.step_fsm(VehicleEvent::BlockReceived);
        }
        match verify_incoming_block(
            block,
            &mut self.cache,
            self.verifier.as_ref(),
            &self.topology,
            self.config.conflict_gap,
            &self.known_threats,
        ) {
            Ok(()) => {
                let index = block.index();
                self.crypto_failures.remove(&index);
                self.note_cache_progress();
                let mut actions = Vec::new();
                if readmitting {
                    // The manager is back and its chain verifies.
                    self.evacuating = false;
                    self.evacuation_cause = None;
                    self.evacuation_claim = None;
                    self.pending_report = None;
                    self.step_fsm(VehicleEvent::ImRecovered);
                    self.step_fsm(VehicleEvent::BlockReceived);
                    actions.push(GuardAction::Readmit);
                }
                self.cache.append(block.clone()).expect("verified link");
                self.step_fsm(VehicleEvent::BlockValid);
                if let Some(plan) = self.cache.plan_for(self.id) {
                    let plan = plan.clone();
                    let fresh = self
                        .own_plan
                        .as_ref()
                        .is_none_or(|p| p.encode() != plan.encode());
                    self.own_plan = Some(plan.clone());
                    // A re-admitted vehicle must not resume its stale
                    // pre-outage plan; it waits for a re-issued one.
                    if fresh && !readmitting {
                        actions.push(GuardAction::FollowPlan(plan));
                    }
                } else if self.own_plan.is_none() && index > 0 && !readmitting {
                    // Still no plan: the block that carried it may have
                    // been lost before this vehicle's window started.
                    // Back-fill recent history from a peer.
                    actions.extend(self.request_blocks(index.saturating_sub(8), now));
                }
                actions
            }
            Err(e @ (BlockFailure::Crypto(_) | BlockFailure::Chain(_))) => {
                if std::env::var("NWADE_DEBUG").is_ok() {
                    eprintln!(
                        "[nwade-debug] guard {} crypto-rejects block {}: {e:?}",
                        self.id,
                        block.index()
                    );
                }
                let failures = self.crypto_failures.entry(block.index()).or_insert(0);
                *failures += 1;
                if *failures < MAX_CRYPTO_FAILURES {
                    // Probably a corrupted copy: drop it, fetch a clean
                    // one, and pretend this block never arrived.
                    self.state = state_before;
                    return self.request_blocks(block.index(), now);
                }
                if readmitting {
                    // Still broken after the outage: stay evacuated.
                    return Vec::new();
                }
                self.step_fsm(VehicleEvent::BlockInvalid);
                self.enter_self_evacuation(
                    GlobalClaim::ConflictingPlans {
                        index: block.index(),
                    },
                    EvacuationCause::Protocol,
                    now,
                )
            }
            Err(e) => {
                if std::env::var("NWADE_DEBUG").is_ok() {
                    eprintln!(
                        "[nwade-debug] guard {} rejects block {}: {e:?}",
                        self.id,
                        block.index()
                    );
                }
                if readmitting {
                    // A validly signed conflicting block while waiting
                    // for recovery: the manager is provably misbehaving.
                    self.evacuation_cause = Some(EvacuationCause::Protocol);
                    return Vec::new();
                }
                self.step_fsm(VehicleEvent::BlockInvalid);
                self.enter_self_evacuation(
                    GlobalClaim::ConflictingPlans {
                        index: block.index(),
                    },
                    EvacuationCause::Protocol,
                    now,
                )
            }
        }
    }

    /// Handles a batch of blocks served by a peer (the answer to a
    /// [`GuardAction::RequestBlocks`]): newer blocks extend the chain
    /// through the normal Algorithm 1 path; older blocks back-fill the
    /// cache after standalone cryptographic verification plus the hash
    /// link to the existing history.
    pub fn on_block_response(&mut self, blocks: &[Block], now: f64) -> Vec<GuardAction> {
        if self.evacuating {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let mut sorted: Vec<&Block> = blocks.iter().collect();
        sorted.sort_by_key(|b| b.index());
        // Forward extension first.
        for block in &sorted {
            let extends = self
                .cache
                .tip()
                .is_none_or(|tip| block.index() == tip.index() + 1);
            if extends {
                actions.extend(self.on_block(block, now));
            }
        }
        // Back-fill: walk backwards from the earliest cached block. The
        // signatures of the whole served range are batch-verified up
        // front (one amortized pass under the manager's key); the walk
        // then runs off the primed memo, re-checking only linkage and
        // Merkle roots per block.
        let backfill: Vec<Block> = sorted
            .iter()
            .filter(|b| {
                self.cache
                    .iter()
                    .next()
                    .is_some_and(|earliest| b.index() < earliest.index())
            })
            .map(|b| (*b).clone())
            .collect();
        if !backfill.is_empty() {
            self.cache
                .prime_signatures_batch(&backfill, self.verifier.as_ref());
        }
        for block in sorted.iter().rev() {
            let fits = self
                .cache
                .iter()
                .next()
                .is_some_and(|earliest| block.index() + 1 == earliest.index());
            if !fits {
                continue;
            }
            if self
                .cache
                .verify_block_cached(block, self.verifier.as_ref())
                .is_ok()
                && self.cache.prepend((*block).clone()).is_ok()
            {
                self.note_cache_progress();
            }
        }
        // A back-filled plan is as good as a broadcast one.
        if self.own_plan.is_none() {
            if let Some(plan) = self.cache.plan_for(self.id) {
                let plan = plan.clone();
                self.own_plan = Some(plan.clone());
                actions.push(GuardAction::FollowPlan(plan));
            }
        }
        actions
    }

    /// Handles this tick's sensor observations of neighbours
    /// (Algorithm 2): compares each against its plan from the cache and
    /// reports deviations.
    pub fn on_observations(&mut self, observations: &[Observation], now: f64) -> Vec<GuardAction> {
        if self.evacuating {
            return Vec::new();
        }
        let mut actions = Vec::new();
        for obs in observations {
            if obs.target == self.id || self.known_threats.contains(&obs.target) {
                continue;
            }
            // Re-report a suspect only after a cooldown (retries of the
            // *pending* report are handled by its retrier in `on_tick`).
            if let Some(&t) = self.reported.get(&obs.target) {
                if now - t < self.config.report_timeout * 2.0 {
                    continue;
                }
            }
            let Some(plan) = self.cache.plan_for(obs.target) else {
                continue; // plan not seen yet (could request blocks)
            };
            let verdict = local_verify(
                plan,
                &self.topology,
                obs,
                self.config.position_tolerance,
                self.config.speed_tolerance,
            );
            if verdict.is_deviating() {
                self.reported.insert(obs.target, now);
                if self.dismissed.get(&obs.target).copied().unwrap_or(0) >= 1 {
                    // The manager already dismissed a report about this
                    // observably deviating vehicle: it is shielding the
                    // attacker. Escalate globally and get out.
                    self.known_threats.insert(obs.target);
                    let mut out = self.enter_self_evacuation(
                        GlobalClaim::AbnormalVehicle {
                            suspect: obs.target,
                        },
                        EvacuationCause::Protocol,
                        now,
                    );
                    actions.append(&mut out);
                    continue;
                }
                let block_index = self.cache.tip().map_or(0, Block::index);
                let report = IncidentReport {
                    reporter: self.id,
                    suspect: obs.target,
                    evidence: *obs,
                    block_index,
                };
                if self.pending_report.is_none() {
                    self.pending_report = Some(PendingReport {
                        report: report.clone(),
                        sent: now,
                        retry: Retrier::after_initial_send(
                            RetryPolicy::report_submission(self.config.report_timeout),
                            now,
                            self.id.raw() ^ 0x5E4D_0127,
                        ),
                    });
                }
                self.step_fsm(VehicleEvent::AnomalyDetected);
                self.step_fsm(VehicleEvent::ReportSent);
                actions.push(GuardAction::SendIncidentReport(report));
            }
        }
        actions
    }

    /// Marks a vehicle as a known threat (confirmed by an evacuation
    /// alert or announced by its own global report); its deviation from
    /// stale plans is no longer reportable.
    pub fn note_threat(&mut self, vehicle: VehicleId) {
        self.known_threats.insert(vehicle);
    }

    /// Periodic housekeeping: resends the pending incident report under
    /// its backoff schedule, then applies the report-timeout escalation
    /// (Algorithm 2, lines 11–13).
    pub fn on_tick(&mut self, now: f64) -> Vec<GuardAction> {
        if self.evacuating {
            return Vec::new();
        }
        let Some(pending) = &mut self.pending_report else {
            return Vec::new();
        };
        if now - pending.sent > self.config.report_timeout {
            let suspect = pending.report.suspect;
            self.pending_report = None;
            self.step_fsm(VehicleEvent::ImTimeout);
            return self.enter_self_evacuation(
                GlobalClaim::AbnormalVehicle { suspect },
                EvacuationCause::ImTimeout,
                now,
            );
        }
        // The channel may have eaten the report; resend within the
        // timeout window so a single lost packet does not escalate a
        // local anomaly into a full self-evacuation.
        if let RetryDecision::Fire(_) = pending.retry.poll(now) {
            return vec![GuardAction::SendIncidentReport(pending.report.clone())];
        }
        Vec::new()
    }

    /// The manager dismissed this vehicle's report.
    pub fn on_dismissal(&mut self, suspect: VehicleId) {
        *self.dismissed.entry(suspect).or_insert(0) += 1;
        if self.pending_report.as_ref().map(|p| p.report.suspect) == Some(suspect) {
            self.pending_report = None;
            self.step_fsm(VehicleEvent::AlarmDismissed);
        }
    }

    /// The manager confirmed a threat and is evacuating. Resolves any
    /// pending report about this suspect, and — when this vehicle's own
    /// sensors say the accused vehicle is perfectly compliant — dissents
    /// with a [`GlobalClaim::WrongfulAccusation`] broadcast (the first
    /// line of defence against a compromised manager staging evacuations,
    /// §VI-B).
    pub fn on_evacuation_alert(
        &mut self,
        suspect: VehicleId,
        own_observation: Option<&Observation>,
        now: f64,
    ) -> Vec<GuardAction> {
        if self.pending_report.as_ref().map(|p| p.report.suspect) == Some(suspect) {
            self.pending_report = None;
            self.step_fsm(VehicleEvent::EvacuationOrdered);
        }
        if self.evacuating {
            return Vec::new();
        }
        if let (Some(plan), Some(obs)) = (self.cache.plan_for(suspect), own_observation) {
            let verdict = local_verify(
                plan,
                &self.topology,
                obs,
                self.config.position_tolerance,
                self.config.speed_tolerance,
            );
            if !verdict.is_deviating() {
                return vec![GuardAction::BroadcastGlobalReport(GlobalReport {
                    sender: self.id,
                    claim: GlobalClaim::WrongfulAccusation { suspect },
                    time: now,
                })];
            }
        }
        Vec::new()
    }

    /// A watcher poll from the manager: answer from the cache and the
    /// given observation (or `None` when the suspect is out of sensing
    /// range — answered as "cannot confirm the anomaly"). A watcher whose
    /// cache predates the suspect's plan block uses the plan forwarded
    /// with the poll.
    pub fn answer_verify_request(
        &self,
        suspect: VehicleId,
        observation: Option<&Observation>,
        forwarded_plan: Option<&TravelPlan>,
    ) -> (bool, bool) {
        let plan = self.cache.plan_for(suspect).or(forwarded_plan);
        let (Some(plan), Some(obs)) = (plan, observation) else {
            return (false, false); // abstain: cannot check
        };
        let abnormal = local_verify(
            plan,
            &self.topology,
            obs,
            self.config.position_tolerance,
            self.config.speed_tolerance,
        )
        .is_deviating();
        (true, abnormal)
    }

    /// Handles a peer's global report (Algorithm 3). `suspect_nearby`
    /// tells the guard whether it can sense the accused vehicle itself;
    /// `threshold` is the safety threshold for this vehicle's situation —
    /// §IV-B4 sets it "accordingly" from the local majority quorum, so
    /// the simulator passes a density-dependent value (falling back to
    /// [`NwadeConfig::global_report_threshold`] when in doubt).
    pub fn on_global_report(
        &mut self,
        report: &GlobalReport,
        suspect_nearby: impl Fn(VehicleId) -> bool,
        threshold: usize,
        now: f64,
    ) -> Vec<GuardAction> {
        if self.evacuating || report.sender == self.id {
            return Vec::new();
        }
        // A suspect the manager already confirmed (we received its
        // evacuation alert) is being handled: evacuation plans are out,
        // so peer reports about it must not escalate into panic
        // self-evacuation (§IV-B3 applies when the manager is silent).
        if let GlobalClaim::AbnormalVehicle { suspect } = report.claim {
            if self.known_threats.contains(&suspect) {
                return Vec::new();
            }
        }
        self.step_fsm(VehicleEvent::GlobalReportsReceived);
        let action = self.global.ingest(report, suspect_nearby, threshold.max(1));
        match action {
            GlobalAction::Ignore | GlobalAction::AnalyzePath { .. } => {
                self.step_fsm(VehicleEvent::GlobalCheckPassed);
                Vec::new()
            }
            GlobalAction::DisregardAlert { suspect } => {
                self.step_fsm(VehicleEvent::GlobalCheckPassed);
                vec![GuardAction::DisregardAlert { suspect }]
            }
            GlobalAction::LocalVerify { .. } => {
                // The next sensing tick will re-run Algorithm 2 on the
                // suspect; no protocol action needed now.
                self.step_fsm(VehicleEvent::GlobalCheckPassed);
                Vec::new()
            }
            GlobalAction::VerifyBlock { index } => {
                // Lines 2–5: check the accused block against our own
                // verified copy. Our cached copy passed verification, so
                // if we hold it the accusation is unfounded; if we do not
                // hold it, request it from peers.
                self.step_fsm(VehicleEvent::GlobalCheckPassed);
                if self.cache.block_at(index).is_some() {
                    vec![GuardAction::RebutGlobalReport {
                        claim: report.claim,
                    }]
                } else {
                    self.request_blocks(index, now)
                }
            }
            GlobalAction::SelfEvacuate => {
                // Type-B rebuttal: "conflicting plans" accusations against
                // a block this vehicle holds (and verified on receipt) are
                // provably false no matter how many senders repeat them —
                // "vehicles can simply verify the blockchain" (§VI-B).
                if let GlobalClaim::ConflictingPlans { index } = report.claim {
                    if self.cache.block_at(index).is_some() {
                        self.step_fsm(VehicleEvent::GlobalCheckPassed);
                        return vec![GuardAction::RebutGlobalReport {
                            claim: report.claim,
                        }];
                    }
                }
                self.step_fsm(VehicleEvent::GlobalCheckFailed);
                self.enter_self_evacuation(report.claim, EvacuationCause::Protocol, now)
            }
        }
    }

    /// The vehicle left the modeled area: terminal state, cache dropped
    /// ("it can delete the blockchain after it passes the intersection").
    pub fn on_exit(&mut self) {
        self.step_fsm(VehicleEvent::Exited);
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
    use nwade_chain::{tamper, BlockPackager};
    use nwade_crypto::MockScheme;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        topo: Arc<Topology>,
        scheme: Arc<MockScheme>,
        scheduler: ReservationScheduler,
        packager: BlockPackager,
        clock: f64,
        next_vehicle: u64,
    }

    impl World {
        fn new() -> Self {
            let topo = Arc::new(build(
                IntersectionKind::FourWayCross,
                &GeometryConfig::default(),
            ));
            let scheme = Arc::new(MockScheme::from_seed(42));
            World {
                scheduler: ReservationScheduler::new(topo.clone(), SchedulerConfig::default()),
                packager: BlockPackager::new(scheme.clone()),
                topo,
                scheme,
                clock: 0.0,
                next_vehicle: 0,
            }
        }

        fn guard(&self, id: u64) -> VehicleGuard {
            VehicleGuard::new(
                VehicleId::new(id),
                self.topo.clone(),
                self.scheme.clone(),
                NwadeConfig::default(),
            )
        }

        fn block_with_vehicles(&mut self, n: usize) -> Block {
            let plans: Vec<TravelPlan> = (0..n)
                .flat_map(|_| {
                    let id = self.next_vehicle;
                    self.next_vehicle += 1;
                    self.clock += 4.0;
                    self.scheduler.schedule(
                        &[PlanRequest {
                            id: VehicleId::new(id),
                            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
                            movement: MovementId::new(((id * 3) % 16) as u16),
                            position_s: 0.0,
                            speed: 15.0,
                        }],
                        self.clock,
                    )
                })
                .collect();
            self.packager.package(plans, self.clock)
        }
    }

    #[test]
    fn accepts_honest_block_and_follows_own_plan() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(3); // contains vehicle 0
        let actions = g.on_block(&block, 1.0);
        assert!(matches!(actions.as_slice(), [GuardAction::FollowPlan(p)] if p.id().raw() == 0));
        assert_eq!(g.state(), VehicleState::Following);
        assert_eq!(g.cache().len(), 1);
    }

    #[test]
    fn forged_block_retried_then_rejected_with_global_report() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let evil = tamper::forge_signature(&w.block_with_vehicles(2));
        // First failed copy is treated as channel corruption: the guard
        // discards it and asks for a clean copy instead of panicking
        // into self-evacuation.
        let actions = g.on_block(&evil, 1.0);
        assert!(matches!(
            actions.as_slice(),
            [GuardAction::RequestBlocks { from_index: 0 }]
        ));
        assert!(!g.is_evacuating());
        assert_eq!(g.cache().len(), 0, "corrupted copy not cached");
        // The same index keeps failing: after the tolerance is spent the
        // guard takes Algorithm 1's reject path.
        assert!(g.on_block(&evil, 2.0).is_empty(), "second strike absorbed");
        let actions = g.on_block(&evil, 3.0);
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], GuardAction::SelfEvacuate));
        assert!(matches!(
            actions[1],
            GuardAction::BroadcastGlobalReport(GlobalReport {
                claim: GlobalClaim::ConflictingPlans { .. },
                ..
            })
        ));
        assert!(g.is_evacuating());
        assert_eq!(g.evacuation_cause(), Some(EvacuationCause::Protocol));
        assert_eq!(g.state(), VehicleState::SelfEvacuation);
        // Further blocks are ignored: protocol distrust is terminal.
        let next = w.block_with_vehicles(1);
        assert!(g.on_block(&next, 4.0).is_empty());
    }

    #[test]
    fn corrupted_copy_then_clean_copy_accepted() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(3);
        let mangled = tamper::forge_signature(&block);
        g.on_block(&mangled, 1.0);
        assert!(!g.is_evacuating());
        // A clean copy of the same block (e.g. the duplicate injected by
        // the duplication fault, or a peer's response) verifies normally.
        let actions = g.on_block(&block, 1.5);
        assert!(matches!(actions.as_slice(), [GuardAction::FollowPlan(_)]));
        assert_eq!(g.state(), VehicleState::Following);
        assert_eq!(g.cache().len(), 1);
    }

    #[test]
    fn validly_signed_conflicts_still_reject_immediately() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let honest = w.block_with_vehicles(8);
        let Some(bad_plans) = nwade_aim::corrupt::make_conflicting(honest.plans(), &w.topo, 0.0)
        else {
            panic!("expected crossing traffic among 8 plans");
        };
        let evil = tamper::resign_with_plans(&honest, bad_plans, w.scheme.as_ref());
        // No retry budget for provable misbehaviour: a valid signature
        // over conflicting plans cannot be channel noise.
        let actions = g.on_block(&evil, 1.0);
        assert!(matches!(actions[0], GuardAction::SelfEvacuate));
        assert!(g.is_evacuating());
        assert_eq!(g.evacuation_cause(), Some(EvacuationCause::Protocol));
    }

    #[test]
    fn gap_in_chain_requests_missing_blocks() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let b0 = w.block_with_vehicles(2);
        let _skipped = w.block_with_vehicles(2);
        let b2 = w.block_with_vehicles(2);
        g.on_block(&b0, 0.0);
        let actions = g.on_block(&b2, 1.0);
        assert!(matches!(
            actions.as_slice(),
            [GuardAction::RequestBlocks { from_index: 1 }]
        ));
        assert_eq!(g.cache().len(), 1, "gap block not appended");
    }

    #[test]
    fn duplicate_block_ignored() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let b0 = w.block_with_vehicles(2);
        g.on_block(&b0, 0.0);
        assert!(g.on_block(&b0, 1.0).is_empty());
        assert_eq!(g.cache().len(), 1);
    }

    #[test]
    fn deviating_neighbour_is_reported_once() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(3);
        g.on_block(&block, 0.0);
        // Vehicle 1's plan, observed 50 m off at t=5.
        let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
        let (pos, speed) = plan1.expected_state(&w.topo, 5.0);
        let obs = Observation {
            target: VehicleId::new(1),
            position: pos + nwade_geometry::Vec2::new(50.0, 0.0),
            speed,
            time: 5.0,
        };
        let actions = g.on_observations(&[obs], 5.0);
        assert!(matches!(
            actions.as_slice(),
            [GuardAction::SendIncidentReport(r)] if r.suspect.raw() == 1 && r.reporter.raw() == 0
        ));
        assert_eq!(g.state(), VehicleState::ReportWaiting);
        // Same tick again: cooldown suppresses the duplicate.
        assert!(g.on_observations(&[obs], 5.1).is_empty());
    }

    #[test]
    fn compliant_neighbour_not_reported() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(3);
        g.on_block(&block, 0.0);
        let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
        let (pos, speed) = plan1.expected_state(&w.topo, 5.0);
        let obs = Observation {
            target: VehicleId::new(1),
            position: pos,
            speed,
            time: 5.0,
        };
        assert!(g.on_observations(&[obs], 5.0).is_empty());
    }

    #[test]
    fn report_timeout_escalates_to_self_evacuation() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
        let (pos, _) = plan1.expected_state(&w.topo, 5.0);
        let obs = Observation {
            target: VehicleId::new(1),
            position: pos + nwade_geometry::Vec2::new(50.0, 0.0),
            speed: 0.0,
            time: 5.0,
        };
        g.on_observations(&[obs], 5.0);
        // Before the first backoff interval elapses: nothing.
        assert!(g.on_tick(5.2).is_empty());
        // Mid-window the retrier re-submits the same report in case the
        // first copy was lost in the channel.
        let actions = g.on_tick(5.5);
        assert!(matches!(
            actions.as_slice(),
            [GuardAction::SendIncidentReport(r)] if r.suspect.raw() == 1
        ));
        // Past the timeout: self-evacuation + abnormal-vehicle broadcast.
        let actions = g.on_tick(6.2);
        assert!(matches!(actions[0], GuardAction::SelfEvacuate));
        assert!(matches!(
            actions[1],
            GuardAction::BroadcastGlobalReport(GlobalReport {
                claim: GlobalClaim::AbnormalVehicle { suspect },
                ..
            }) if suspect.raw() == 1
        ));
        assert_eq!(g.evacuation_cause(), Some(EvacuationCause::ImTimeout));
    }

    #[test]
    fn im_timeout_evacuee_readmits_on_fresh_block() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
        let (pos, _) = plan1.expected_state(&w.topo, 5.0);
        let obs = Observation {
            target: VehicleId::new(1),
            position: pos + nwade_geometry::Vec2::new(50.0, 0.0),
            speed: 0.0,
            time: 5.0,
        };
        g.on_observations(&[obs], 5.0);
        g.on_tick(6.2); // manager silent → ImTimeout self-evacuation
        assert!(g.is_evacuating());
        assert_eq!(g.evacuation_cause(), Some(EvacuationCause::ImTimeout));
        // The manager restarts and broadcasts a fresh, correctly chained
        // block: the evacuee verifies it and rejoins the admission flow.
        let fresh = w.block_with_vehicles(1);
        let actions = g.on_block(&fresh, 8.0);
        assert!(
            actions.iter().any(|a| matches!(a, GuardAction::Readmit)),
            "expected Readmit, got {actions:?}"
        );
        assert!(!g.is_evacuating());
        assert_eq!(g.evacuation_cause(), None);
        assert_eq!(g.state(), VehicleState::Following);
        // The stale pre-outage plan must not be resumed blindly.
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, GuardAction::FollowPlan(_))),
            "stale plan resumed: {actions:?}"
        );
        assert_eq!(g.cache().len(), 2, "fresh block appended to cache");
    }

    #[test]
    fn protocol_evacuee_never_readmits() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let evil = tamper::forge_signature(&w.block_with_vehicles(2));
        for t in [1.0, 2.0, 3.0] {
            g.on_block(&evil, t);
        }
        assert!(g.is_evacuating());
        assert_eq!(g.evacuation_cause(), Some(EvacuationCause::Protocol));
        // Even a perfectly valid fresh block cannot win back a vehicle
        // that evacuated because it caught the manager misbehaving.
        let fresh = w.block_with_vehicles(1);
        assert!(g.on_block(&fresh, 4.0).is_empty());
        assert!(g.is_evacuating());
    }

    #[test]
    fn dismissal_clears_pending_report() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
        let (pos, _) = plan1.expected_state(&w.topo, 5.0);
        let obs = Observation {
            target: VehicleId::new(1),
            position: pos + nwade_geometry::Vec2::new(50.0, 0.0),
            speed: 0.0,
            time: 5.0,
        };
        g.on_observations(&[obs], 5.0);
        g.on_dismissal(VehicleId::new(1));
        assert_eq!(g.state(), VehicleState::Following);
        assert!(g.on_tick(100.0).is_empty(), "no timeout after dismissal");
    }

    #[test]
    fn global_reports_accumulate_to_evacuation() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        let claim = GlobalClaim::AbnormalVehicle {
            suspect: VehicleId::new(77),
        };
        for sender in 1..=2u64 {
            let r = GlobalReport {
                sender: VehicleId::new(sender),
                claim,
                time: 1.0,
            };
            assert!(g.on_global_report(&r, |_| false, 3, 1.0).is_empty());
        }
        let r = GlobalReport {
            sender: VehicleId::new(3),
            claim,
            time: 1.0,
        };
        let actions = g.on_global_report(&r, |_| false, 3, 1.0);
        assert!(matches!(actions[0], GuardAction::SelfEvacuate));
        assert!(g.is_evacuating());
    }

    #[test]
    fn conflicting_plan_accusation_with_cached_block_is_rebutted() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        let r = GlobalReport {
            sender: VehicleId::new(9),
            claim: GlobalClaim::ConflictingPlans { index: 0 },
            time: 1.0,
        };
        // We hold block 0 and it verified: the accusation is rebutted.
        let actions = g.on_global_report(&r, |_| false, 3, 1.0);
        assert!(matches!(
            actions.as_slice(),
            [GuardAction::RebutGlobalReport { .. }]
        ));
        assert!(!g.is_evacuating());
    }

    #[test]
    fn watcher_answers_poll_from_cache() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
        let (pos, speed) = plan1.expected_state(&w.topo, 5.0);
        let good = Observation {
            target: VehicleId::new(1),
            position: pos,
            speed,
            time: 5.0,
        };
        let bad = Observation {
            target: VehicleId::new(1),
            position: pos + nwade_geometry::Vec2::new(30.0, 0.0),
            speed,
            time: 5.0,
        };
        assert_eq!(
            g.answer_verify_request(VehicleId::new(1), Some(&good), None),
            (true, false)
        );
        assert_eq!(
            g.answer_verify_request(VehicleId::new(1), Some(&bad), None),
            (true, true)
        );
        assert_eq!(
            g.answer_verify_request(VehicleId::new(1), None, None),
            (false, false)
        );
        assert_eq!(
            g.answer_verify_request(VehicleId::new(55), Some(&good), None),
            (false, false)
        );
    }

    #[test]
    fn exit_clears_cache() {
        let mut w = World::new();
        let mut g = w.guard(0);
        let block = w.block_with_vehicles(2);
        g.on_block(&block, 0.0);
        g.on_exit();
        assert_eq!(g.state(), VehicleState::Left);
        assert!(g.cache().is_empty());
    }
}
