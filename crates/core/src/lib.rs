//! NWADE: the Neighborhood Watch mechanism for Attack Detection and
//! Evacuation in autonomous intersection management (ICDCS 2022).
//!
//! This crate is the paper's primary contribution, layered on the
//! workspace's substrates (geometry, crypto, intersection topologies,
//! traffic, VANET, AIM scheduling, travel-plan blockchain):
//!
//! * [`fsm`] — the event-driven deterministic finite automata of Fig. 2:
//!   seven intersection-manager states, eight vehicle states,
//! * [`verify`] — Algorithms 1–3: block verification, local
//!   (neighborhood-watch) verification, IM-side report verification with
//!   two-group majority voting, and global verification,
//! * [`guard`] — [`VehicleGuard`], the per-vehicle protocol engine tying
//!   the vehicle FSM, chain cache and verifiers together,
//! * [`manager`] — [`NwadeManager`], the IM-side engine: scheduling,
//!   block packaging, report verification and evacuation,
//! * [`pipeline`] — [`WindowPipeline`], the pipelined window engine:
//!   window N+1's scheduling/Merkle work overlaps window N's
//!   chain-serial signing, bit-identical to the sequential path,
//! * [`prob`] — the analytic models of Eq. 2 (detection probability) and
//!   Eq. 3 (self-evacuation probability),
//! * [`attack`] — Table I's eleven attack settings and the attacker
//!   behaviours they inject,
//! * [`retry`] — [`Retrier`], bounded exponential-backoff retry shared by
//!   every request/response exchange in the protocol,
//! * [`messages`] — the protocol message set exchanged over the VANET.
//!
//! # Quick start
//!
//! ```
//! use nwade::prob;
//!
//! // The paper's worked example (§IV-B4): p_im = 0.1%, p_v·p_loc = 10%,
//! // k = 11 compromised vehicles → P_e ≈ 0.1%.
//! let pe = prob::self_evacuation_probability(0.001, 0.1, 11);
//! assert!((pe - 0.001).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]

pub mod attack;
pub mod config;
pub mod fsm;
pub mod guard;
pub mod manager;
pub mod messages;
pub mod persist;
pub mod pipeline;
pub mod prob;
pub mod retry;
pub mod verify;

pub use attack::{AttackSetting, ViolationKind};
pub use config::NwadeConfig;
pub use guard::{EvacuationCause, GuardAction, VehicleGuard};
pub use manager::{ManagerAction, NwadeManager, PreparedWindow};
pub use messages::{GlobalClaim, GlobalReport, IncidentReport, NwadeMessage, Observation};
pub use persist::{
    CrashPoint, DurableState, ImPersistence, RecoveryOutcome, WalRecord, WarmRecovery,
};
pub use pipeline::WindowPipeline;
pub use retry::{Retrier, RetryDecision, RetryPolicy};
