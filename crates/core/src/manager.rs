//! [`NwadeManager`]: the intersection-manager-side protocol engine.
//!
//! Wraps an AIM scheduler with NWADE's block packaging, report
//! verification (two disjoint watcher groups) and evacuation planning.
//! Like [`crate::VehicleGuard`] it performs no I/O: handlers return
//! [`ManagerAction`]s for the host to execute.

use crate::config::NwadeConfig;
use crate::fsm::im::{ImEvent, ImState};
use crate::messages::IncidentReport;
use crate::verify::report::{ReportDecision, ReportVerification};
use nwade_aim::evacuation::{EvacuationConfig, EvacuationPlanner};
use nwade_aim::{find_conflicts, PlanRequest, Scheduler, TravelPlan};
use nwade_chain::{Block, BlockPackager, ShardAnchor};
use nwade_crypto::{Digest, SignatureScheme};
use nwade_geometry::Vec2;
use nwade_intersection::Topology;
use nwade_traffic::{VehicleDescriptor, VehicleId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// What the manager wants its host to do.
#[derive(Debug, Clone)]
pub enum ManagerAction {
    /// Broadcast this block to every vehicle.
    BroadcastBlock(Block),
    /// Poll these watchers about `suspect`.
    PollWatchers {
        /// Correlates the responses.
        request_id: u64,
        /// The accused vehicle.
        suspect: VehicleId,
        /// The group to poll.
        group: Vec<VehicleId>,
        /// The suspect's published plan, forwarded so every watcher can
        /// compute the expected status.
        plan: Option<Box<TravelPlan>>,
    },
    /// Tell `reporter` the alarm about `suspect` was false.
    Dismiss {
        /// The reporting vehicle.
        reporter: VehicleId,
        /// The cleared suspect.
        suspect: VehicleId,
    },
    /// Broadcast the evacuation alert: `suspect` is confirmed malicious.
    EvacuationAlert {
        /// The confirmed malicious vehicle.
        suspect: VehicleId,
        /// Its identifiable features.
        descriptor: VehicleDescriptor,
        /// Its last reported position.
        location: Vec2,
    },
}

/// A processing window whose scheduling, conflict filtering, and Merkle
/// root are done but whose block is not yet signed. Produced by
/// [`NwadeManager::prepare_window`]; consumed by
/// [`NwadeManager::seal_window`] (in-place) or a
/// [`crate::WindowPipeline`] worker (off-thread, chain-serial).
#[derive(Debug, Clone)]
pub struct PreparedWindow {
    plans: Vec<TravelPlan>,
    root: Digest,
    timestamp: f64,
    anchors: Vec<ShardAnchor>,
}

impl PreparedWindow {
    /// The conflict-free plans the block will carry.
    pub fn plans(&self) -> &[TravelPlan] {
        &self.plans
    }

    /// Merkle root over the plans (`R_i` of Eq. 1).
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Window close time — the block timestamp `τ`.
    pub fn timestamp(&self) -> f64 {
        self.timestamp
    }

    /// Neighbour chain tips the block will anchor (empty outside a
    /// multi-intersection deployment).
    pub fn anchors(&self) -> &[ShardAnchor] {
        &self.anchors
    }

    /// Decomposes into `(plans, root, timestamp, anchors)` for sealing.
    pub fn into_parts(self) -> (Vec<TravelPlan>, Digest, f64, Vec<ShardAnchor>) {
        (self.plans, self.root, self.timestamp, self.anchors)
    }
}

/// One in-flight report verification.
#[derive(Clone)]
struct PendingVerification {
    verification: ReportVerification,
    request_id: u64,
    evidence_location: Vec2,
    descriptor: VehicleDescriptor,
    /// Everyone who reported this suspect while verification ran; they
    /// all receive the outcome (otherwise they time out and escalate).
    reporters: Vec<VehicleId>,
}

/// The manager-side engine.
///
/// `Clone` deep-copies everything — scheduler (via
/// [`Scheduler::clone_box`]), packager, pending verifications — so a
/// forensic world snapshot resumes from an independent manager whose
/// behaviour is bit-identical to the original.
#[derive(Clone)]
pub struct NwadeManager {
    topology: Arc<Topology>,
    config: NwadeConfig,
    state: ImState,
    scheduler: Box<dyn Scheduler + Send>,
    packager: BlockPackager,
    evacuation: EvacuationPlanner,
    pending: HashMap<VehicleId, PendingVerification>,
    confirmed: Vec<VehicleId>,
    false_reporters: HashMap<VehicleId, u32>,
    next_request_id: u64,
    /// The latest published plan per vehicle, used to pre-run the
    /// vehicle-side conflict check before signing a block.
    published: HashMap<VehicleId, TravelPlan>,
    /// Recent blocks kept for serving vehicle block requests (§IV-B1:
    /// "a vehicle can request the blocks from neighboring vehicles or
    /// from the intersection manager").
    recent_blocks: std::collections::VecDeque<Block>,
    /// Latest observed chain tip per neighbour shard, drained into the
    /// next block's anchor section (shard-ID order keeps it
    /// deterministic). Conversational: not persisted, dropped on
    /// restart — neighbours re-announce their tips continuously.
    pending_anchors: BTreeMap<u32, Digest>,
}

impl std::fmt::Debug for NwadeManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NwadeManager")
            .field("state", &self.state)
            .field("scheduler", &self.scheduler.name())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl NwadeManager {
    /// Creates a manager around a scheduler and a signing scheme.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid.
    pub fn new(
        topology: Arc<Topology>,
        scheduler: Box<dyn Scheduler + Send>,
        signer: Arc<dyn SignatureScheme>,
        config: NwadeConfig,
    ) -> Self {
        config.validate().expect("NWADE config must be valid");
        NwadeManager {
            evacuation: EvacuationPlanner::new(
                topology.clone(),
                nwade_aim::SchedulerConfig::default(),
                EvacuationConfig::default(),
            ),
            topology,
            config,
            state: ImState::Standby,
            scheduler,
            packager: BlockPackager::new(signer),
            pending: HashMap::new(),
            confirmed: Vec::new(),
            false_reporters: HashMap::new(),
            next_request_id: 0,
            published: HashMap::new(),
            recent_blocks: std::collections::VecDeque::new(),
            pending_anchors: BTreeMap::new(),
        }
    }

    /// Records a neighbour shard's current chain tip for anchoring into
    /// the next published block (latest observation per shard wins).
    pub fn note_neighbor_tip(&mut self, shard: u32, tip: Digest) {
        self.pending_anchors.insert(shard, tip);
    }

    /// Seeds a handed-off reporter's false-alarm history (§IV-B2 iii)
    /// so a squelched false reporter stays squelched when it crosses
    /// into this intersection. Histories only ratchet upward — a
    /// neighbour's record never erases locally observed strikes.
    pub fn note_reporter_history(&mut self, reporter: VehicleId, count: u32) {
        if count == 0 {
            return;
        }
        let entry = self.false_reporters.entry(reporter).or_insert(0);
        *entry = (*entry).max(count);
    }

    fn remember_block(&mut self, block: &Block) {
        self.recent_blocks.push_back(block.clone());
        while self.recent_blocks.len() > self.config.recent_block_retention {
            self.recent_blocks.pop_front();
        }
    }

    /// Recent blocks starting at `from_index`, for answering a vehicle's
    /// block request — at most
    /// [`NwadeConfig::block_backfill_limit`] of them.
    pub fn blocks_from(&self, from_index: u64) -> Vec<Block> {
        self.recent_blocks
            .iter()
            .filter(|b| b.index() >= from_index)
            .take(self.config.block_backfill_limit)
            .cloned()
            .collect()
    }

    /// Brings the manager back after an outage. The chain and the
    /// published-plan ledger are durable (rebuilt from persisted blocks),
    /// but everything conversational is not: in-flight report
    /// verifications died with the process, so they are dropped rather
    /// than resumed against watcher groups that have long since moved on.
    /// Confirmed threats and the false-reporter ledger are part of the
    /// durable record and survive.
    pub fn restart(&mut self) {
        self.pending.clear();
        self.pending_anchors.clear();
        self.state = ImState::Standby;
    }

    /// Drops batch plans that would fail the vehicle-side conflict check
    /// against the published plan set (rare: the saturated-intersection
    /// park fallback can strand a vehicle in a cell another plan crosses).
    /// Dropped vehicles keep their previous plan and are re-planned in a
    /// later window; an honest manager must never sign a block its own
    /// vehicles would reject.
    fn drop_unpublishable(&mut self, mut plans: Vec<TravelPlan>) -> Vec<TravelPlan> {
        loop {
            let mut merged: HashMap<VehicleId, TravelPlan> = self.published.clone();
            for p in &plans {
                merged.insert(p.id(), p.clone());
            }
            let merged_plans: Vec<TravelPlan> = merged.into_values().collect();
            let conflicts = find_conflicts(&merged_plans, &self.topology, self.config.conflict_gap);
            if conflicts.is_empty() {
                return plans;
            }
            let before = plans.len();
            for (a, b) in &conflicts {
                for id in [a, b] {
                    if let Some(pos) = plans.iter().position(|p| p.id() == *id) {
                        let dropped = plans.remove(pos);
                        self.scheduler.release(dropped.id());
                    }
                }
            }
            if plans.len() == before || plans.is_empty() {
                // Conflict among already-published plans (cannot happen
                // for an honest history) or nothing left to drop.
                return plans;
            }
        }
    }

    fn record_published(&mut self, plans: &[TravelPlan]) {
        for p in plans {
            self.published.insert(p.id(), p.clone());
        }
    }

    /// Current automaton state.
    pub fn state(&self) -> ImState {
        self.state
    }

    /// The topology served.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Vehicles confirmed malicious so far.
    pub fn confirmed_malicious(&self) -> &[VehicleId] {
        &self.confirmed
    }

    /// How many times `reporter` was caught sending false alarms
    /// (§IV-B2 step iii: "record V_x's identity for future reference").
    pub fn false_report_count(&self, reporter: VehicleId) -> u32 {
        self.false_reporters.get(&reporter).copied().unwrap_or(0)
    }

    fn step_fsm(&mut self, event: ImEvent) {
        if let Ok(next) = self.state.step(event) {
            self.state = next;
        }
    }

    /// Processes one window of plan requests: schedule, package,
    /// broadcast. Returns `None` when no requests arrived.
    ///
    /// Equivalent to [`NwadeManager::prepare_window`] followed by
    /// [`NwadeManager::seal_window`]; the split entry points exist so the
    /// pipelined window engine can overlap the scheduling/Merkle work of
    /// window N+1 with the (chain-serial) signing of window N.
    pub fn on_window(&mut self, requests: &[PlanRequest], now: f64) -> Option<ManagerAction> {
        let prepared = self.prepare_window(requests, now)?;
        Some(self.seal_window(prepared))
    }

    /// The tip-independent front half of a processing window: schedule
    /// the batch, drop unpublishable plans, record the survivors as
    /// published, and compute their Merkle root. Returns `None` when the
    /// window produces no block (no requests, or every plan deferred).
    ///
    /// Nothing here touches the chain tip, so the result may be sealed
    /// later — by [`NwadeManager::seal_window`] on this manager, or by a
    /// [`crate::WindowPipeline`] worker that owns the tip.
    pub fn prepare_window(&mut self, requests: &[PlanRequest], now: f64) -> Option<PreparedWindow> {
        if requests.is_empty() {
            return None;
        }
        self.step_fsm(ImEvent::RequestsReceived);
        let plans = self.scheduler.schedule(requests, now);
        let plans = self.drop_unpublishable(plans);
        self.step_fsm(ImEvent::PlansGenerated);
        if plans.is_empty() {
            // Every plan was deferred; no block this window.
            self.step_fsm(ImEvent::BlockPackaged);
            self.step_fsm(ImEvent::BlockDisseminated);
            return None;
        }
        self.record_published(&plans);
        // Drain the neighbour tips only when a block will actually carry
        // them; deferred windows leave them pending for the next one.
        let anchors: Vec<ShardAnchor> = std::mem::take(&mut self.pending_anchors)
            .into_iter()
            .map(|(shard, tip)| ShardAnchor { shard, tip })
            .collect();
        Some(PreparedWindow {
            root: Block::root_of(&plans),
            plans,
            timestamp: now,
            anchors,
        })
    }

    /// The chain-serial back half of a processing window: sign the
    /// prepared plans against this manager's tip and advance it.
    pub fn seal_window(&mut self, prepared: PreparedWindow) -> ManagerAction {
        let PreparedWindow {
            plans,
            root,
            timestamp,
            anchors,
        } = prepared;
        let block = self
            .packager
            .package_rooted_anchored(plans, root, timestamp, anchors);
        self.absorb_block(block)
    }

    /// Adopts a block sealed off-manager (by a [`crate::WindowPipeline`]
    /// worker) from a [`PreparedWindow`] this manager produced: the
    /// packager tip moves past it, it joins the recent-block store, and
    /// the FSM and reservation GC advance exactly as if
    /// [`NwadeManager::seal_window`] had signed it here.
    pub fn absorb_sealed(&mut self, block: Block) -> ManagerAction {
        self.packager.restore_tip(block.hash(), block.index() + 1);
        self.absorb_block(block)
    }

    fn absorb_block(&mut self, block: Block) -> ManagerAction {
        self.remember_block(&block);
        self.step_fsm(ImEvent::BlockPackaged);
        self.step_fsm(ImEvent::BlockDisseminated);
        self.scheduler
            .collect_garbage(block.timestamp() - self.config.reservation_gc_horizon);
        ManagerAction::BroadcastBlock(block)
    }

    /// The signing scheme, shared with a [`crate::WindowPipeline`]'s
    /// sealing worker.
    pub fn signer(&self) -> Arc<dyn SignatureScheme> {
        self.packager.signer().clone()
    }

    /// Handles an incident report: starts round-1 verification with a
    /// watcher group drawn from `nearby_watchers` (vehicles around the
    /// suspect, excluding suspect and reporter).
    pub fn on_incident_report(
        &mut self,
        report: &IncidentReport,
        nearby_watchers: &[VehicleId],
        _now: f64,
    ) -> Vec<ManagerAction> {
        // §IV-B2 (iii): reporters recorded for repeated false alarms
        // lose credibility; their reports no longer start verifications
        // (watchers near a real threat will report it independently).
        if self.false_report_count(report.reporter) >= 3 {
            return Vec::new();
        }
        if self.confirmed.contains(&report.suspect) {
            // Already confirmed: re-issue the alert so this reporter does
            // not wait for a response that never comes.
            return vec![ManagerAction::EvacuationAlert {
                suspect: report.suspect,
                descriptor: VehicleDescriptor {
                    brand: String::new(),
                    model: String::new(),
                    color: String::new(),
                },
                location: report.evidence.position,
            }];
        }
        if let Some(pending) = self.pending.get_mut(&report.suspect) {
            self.state = match self.state.step(ImEvent::IncidentReportReceived) {
                Ok(next) => next,
                Err(_) => self.state,
            };
            pending.reporters.push(report.reporter);
            return Vec::new(); // verification already running
        }
        self.step_fsm(ImEvent::IncidentReportReceived);
        let mut verification = ReportVerification::new(report.reporter, report.suspect);
        let group: Vec<VehicleId> = nearby_watchers
            .iter()
            .copied()
            .filter(|v| *v != report.suspect && *v != report.reporter)
            .take(self.config.verification_group_size)
            .collect();
        if group.is_empty() {
            // Single witness, nobody to cross-check: trust the report for
            // safety and evacuate.
            return self.confirm(report.suspect, report.evidence.position);
        }
        verification.begin_round(&group);
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.pending.insert(
            report.suspect,
            PendingVerification {
                verification,
                request_id,
                evidence_location: report.evidence.position,
                descriptor: VehicleDescriptor {
                    brand: String::new(),
                    model: String::new(),
                    color: String::new(),
                },
                reporters: vec![report.reporter],
            },
        );
        let plan = self.published.get(&report.suspect).cloned().map(Box::new);
        vec![ManagerAction::PollWatchers {
            request_id,
            suspect: report.suspect,
            group,
            plan,
        }]
    }

    /// Attaches the suspect's descriptor (from its plan) so evacuation
    /// alerts carry identifiable features.
    pub fn note_suspect_descriptor(&mut self, suspect: VehicleId, descriptor: VehicleDescriptor) {
        if let Some(p) = self.pending.get_mut(&suspect) {
            p.descriptor = descriptor;
        }
    }

    fn confirm(&mut self, suspect: VehicleId, location: Vec2) -> Vec<ManagerAction> {
        self.step_fsm(ImEvent::ThreatConfirmed);
        self.confirmed.push(suspect);
        let pending_descriptor = self.pending.remove(&suspect).map(|p| p.descriptor);
        // The alert carries the suspect's identifiable features (§IV-B5);
        // its published plan is the authoritative source.
        let descriptor = self
            .published
            .get(&suspect)
            .map(|p| p.descriptor().clone())
            .or(pending_descriptor)
            .unwrap_or(VehicleDescriptor {
                brand: String::new(),
                model: String::new(),
                color: String::new(),
            });
        vec![ManagerAction::EvacuationAlert {
            suspect,
            descriptor,
            location,
        }]
    }

    /// Handles a watcher's verify-response. `fresh_candidates` are
    /// vehicles currently near the suspect, used to draw the disjoint
    /// round-2 group.
    pub fn on_verify_response(
        &mut self,
        request_id: u64,
        suspect: VehicleId,
        observed: bool,
        abnormal: bool,
        fresh_candidates: &[VehicleId],
        _now: f64,
    ) -> Vec<ManagerAction> {
        let Some(pending) = self.pending.get_mut(&suspect) else {
            return Vec::new(); // stale response
        };
        if pending.request_id != request_id {
            return Vec::new();
        }
        let was_round1 = pending.verification.round() == 1;
        let decision = if observed {
            pending.verification.record_vote(abnormal)
        } else {
            pending.verification.record_abstain()
        };
        match decision {
            ReportDecision::Pending => {
                if was_round1 && pending.verification.round() == 2 {
                    // Round 1 confirmed: draw the disjoint second group.
                    let group = pending.verification.second_group(fresh_candidates);
                    let group: Vec<VehicleId> = group
                        .into_iter()
                        .take(self.config.verification_group_size)
                        .collect();
                    if group.is_empty() {
                        // Nobody fresh to double-check with: act on round 1.
                        let location = pending.evidence_location;
                        return self.confirm(suspect, location);
                    }
                    pending.verification.begin_round(&group);
                    let request_id = self.next_request_id;
                    self.next_request_id += 1;
                    pending.request_id = request_id;
                    let plan = self.published.get(&suspect).cloned().map(Box::new);
                    return vec![ManagerAction::PollWatchers {
                        request_id,
                        suspect,
                        group,
                        plan,
                    }];
                }
                Vec::new()
            }
            ReportDecision::Confirmed => {
                let location = pending.evidence_location;
                self.confirm(suspect, location)
            }
            ReportDecision::FalseAlarm => {
                let pending = self.pending.remove(&suspect).expect("present");
                let original = pending.verification.reporter();
                *self.false_reporters.entry(original).or_insert(0) += 1;
                self.step_fsm(ImEvent::ReportDismissed);
                // Every reporter of this suspect gets the outcome.
                let mut seen = std::collections::HashSet::new();
                pending
                    .reporters
                    .iter()
                    .filter(|r| seen.insert(**r))
                    .map(|&reporter| ManagerAction::Dismiss { reporter, suspect })
                    .collect()
            }
        }
    }

    /// Generates evacuation plans around the confirmed threats and
    /// packages them on the same blockchain (§IV-B5).
    pub fn evacuation_block(
        &mut self,
        vehicle_states: &[PlanRequest],
        threats: &[Vec2],
        now: f64,
    ) -> Option<ManagerAction> {
        if vehicle_states.is_empty() {
            return None;
        }
        let plans: Vec<TravelPlan> = self.evacuation.plan(vehicle_states, threats, now);
        // Re-book the evacuation plans in the scheduler so later normal
        // scheduling respects them.
        for plan in &plans {
            self.scheduler.book(plan);
        }
        // Evacuation replans every vehicle, so the published set is
        // replaced wholesale.
        self.published.clear();
        let plans = self.drop_unpublishable(plans);
        if plans.is_empty() {
            return None;
        }
        self.record_published(&plans);
        let block = self.packager.package(plans, now);
        self.remember_block(&block);
        Some(ManagerAction::BroadcastBlock(block))
    }

    /// Releases a vehicle's scheduler reservations (it left the area).
    pub fn release_vehicle(&mut self, vehicle: VehicleId) {
        self.scheduler.release(vehicle);
        self.published.remove(&vehicle);
    }

    /// Index the next published block will carry (the durable chain
    /// height).
    pub fn chain_next_index(&self) -> u64 {
        self.packager.next_index()
    }

    /// Hash the next published block will point at (the durable chain
    /// tip `h_{i-1}`).
    pub fn chain_tip(&self) -> nwade_crypto::Digest {
        self.packager.prev_hash()
    }

    /// Captures the durable state a [`crate::persist`] snapshot records:
    /// chain tip, scheduler reservations, published-plan ledger,
    /// confirmed-threat and false-reporter records, recent blocks.
    /// Conversational state (FSM phase, in-flight verifications) is
    /// deliberately excluded — it does not survive a restart either way.
    pub fn durable_state(&self) -> crate::persist::DurableState {
        let mut published: Vec<TravelPlan> = self.published.values().cloned().collect();
        published.sort_by_key(|p| p.id().raw());
        let mut false_reporters: Vec<(VehicleId, u32)> =
            self.false_reporters.iter().map(|(v, n)| (*v, *n)).collect();
        false_reporters.sort_by_key(|(v, _)| v.raw());
        crate::persist::DurableState {
            prev_hash: self.packager.prev_hash(),
            next_index: self.packager.next_index(),
            next_request_id: self.next_request_id,
            scheduler: self.scheduler.export_state(),
            published,
            confirmed: self.confirmed.clone(),
            false_reporters,
            recent_blocks: self.recent_blocks.iter().cloned().collect(),
        }
    }

    /// Restores a snapshot taken by [`NwadeManager::durable_state`] into
    /// this (freshly constructed) manager. Returns `false` — leaving the
    /// scheduler untouched — when the snapshot's scheduler state is
    /// malformed; the caller then falls back to a cold restart.
    pub fn restore_durable(&mut self, state: &crate::persist::DurableState) -> bool {
        if !self.scheduler.import_state(&state.scheduler) {
            return false;
        }
        self.packager.restore_tip(state.prev_hash, state.next_index);
        self.next_request_id = state.next_request_id;
        self.published = state
            .published
            .iter()
            .map(|p| (p.id(), p.clone()))
            .collect();
        self.confirmed = state.confirmed.clone();
        self.false_reporters = state.false_reporters.iter().copied().collect();
        self.recent_blocks = state.recent_blocks.iter().cloned().collect();
        self.pending.clear();
        self.pending_anchors.clear();
        self.state = ImState::Standby;
        true
    }

    /// The threat cleared (malicious vehicle left / stopped): begin
    /// recovery.
    pub fn on_threat_cleared(&mut self) {
        self.step_fsm(ImEvent::ThreatCleared);
    }

    /// Recovery finished: back to normal scheduling.
    pub fn on_recovery_complete(&mut self) {
        self.step_fsm(ImEvent::RecoveryComplete);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Observation;
    use nwade_aim::{ReservationScheduler, SchedulerConfig};
    use nwade_crypto::MockScheme;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn manager() -> NwadeManager {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let scheduler = Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        ));
        NwadeManager::new(
            topo,
            scheduler,
            Arc::new(MockScheme::from_seed(9)),
            NwadeConfig::default(),
        )
    }

    fn request(id: u64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(((id * 3) % 16) as u16),
            position_s: 0.0,
            speed: 15.0,
        }
    }

    fn incident(reporter: u64, suspect: u64) -> IncidentReport {
        IncidentReport {
            reporter: VehicleId::new(reporter),
            suspect: VehicleId::new(suspect),
            evidence: Observation {
                target: VehicleId::new(suspect),
                position: Vec2::new(10.0, 10.0),
                speed: 0.0,
                time: 5.0,
            },
            block_index: 0,
        }
    }

    fn ids(range: std::ops::Range<u64>) -> Vec<VehicleId> {
        range.map(VehicleId::new).collect()
    }

    #[test]
    fn window_produces_broadcastable_block() {
        let mut m = manager();
        let action = m.on_window(&[request(0), request(1)], 0.0).expect("block");
        let ManagerAction::BroadcastBlock(block) = action else {
            panic!("expected a block broadcast");
        };
        assert_eq!(block.index(), 0);
        assert_eq!(block.plans().len(), 2);
        assert_eq!(m.state(), ImState::Standby, "back to standby");
        assert!(m.on_window(&[], 1.0).is_none());
    }

    #[test]
    fn report_starts_watcher_poll() {
        let mut m = manager();
        let actions = m.on_incident_report(&incident(0, 9), &ids(1..8), 5.0);
        let [ManagerAction::PollWatchers { suspect, group, .. }] = actions.as_slice() else {
            panic!("expected a poll, got {actions:?}");
        };
        assert_eq!(suspect.raw(), 9);
        assert_eq!(group.len(), 5, "capped at the configured group size");
        assert!(!group.contains(&VehicleId::new(9)));
        assert!(!group.contains(&VehicleId::new(0)));
        assert_eq!(m.state(), ImState::ReportVerification);
    }

    #[test]
    fn duplicate_reports_are_absorbed() {
        let mut m = manager();
        m.on_incident_report(&incident(0, 9), &ids(1..8), 5.0);
        assert!(m
            .on_incident_report(&incident(2, 9), &ids(1..8), 5.1)
            .is_empty());
    }

    #[test]
    fn no_watchers_confirms_immediately() {
        let mut m = manager();
        let actions = m.on_incident_report(&incident(0, 9), &[], 5.0);
        assert!(matches!(
            actions.as_slice(),
            [ManagerAction::EvacuationAlert { suspect, .. }] if suspect.raw() == 9
        ));
        assert_eq!(m.state(), ImState::Evacuation);
        assert_eq!(m.confirmed_malicious(), &[VehicleId::new(9)]);
    }

    #[test]
    fn two_round_confirmation_flow() {
        let mut m = manager();
        let actions = m.on_incident_report(&incident(0, 9), &ids(1..6), 5.0);
        let [ManagerAction::PollWatchers { request_id, .. }] = actions.as_slice() else {
            panic!("poll expected");
        };
        let rid1 = *request_id;
        // Round 1: 3 of 5 say abnormal → round 2 poll of fresh watchers.
        let mut second_poll = None;
        for i in 0..3 {
            let actions = m.on_verify_response(
                rid1,
                VehicleId::new(9),
                true,
                true,
                &ids(1..20),
                5.0 + i as f64,
            );
            if !actions.is_empty() {
                second_poll = Some(actions);
            }
        }
        let second = second_poll.expect("round 2 poll issued");
        let [ManagerAction::PollWatchers {
            request_id: rid2,
            group,
            ..
        }] = second.as_slice()
        else {
            panic!("expected round-2 poll, got {second:?}");
        };
        // Disjoint from round 1 (watchers 1..6) and from suspect/reporter.
        for v in group {
            assert!(v.raw() >= 6 || v.raw() == 0, "round-2 watcher {v}");
            assert_ne!(v.raw(), 0, "reporter excluded");
            assert_ne!(v.raw(), 9, "suspect excluded");
        }
        // Round 2 confirms.
        let mut confirmed = Vec::new();
        for i in 0..3 {
            confirmed =
                m.on_verify_response(*rid2, VehicleId::new(9), true, true, &[], 6.0 + i as f64);
            if !confirmed.is_empty() {
                break;
            }
        }
        assert!(matches!(
            confirmed.as_slice(),
            [ManagerAction::EvacuationAlert { suspect, .. }] if suspect.raw() == 9
        ));
        assert_eq!(m.state(), ImState::Evacuation);
    }

    #[test]
    fn false_alarm_dismissed_and_reporter_recorded() {
        let mut m = manager();
        let actions = m.on_incident_report(&incident(0, 9), &ids(1..6), 5.0);
        let [ManagerAction::PollWatchers { request_id, .. }] = actions.as_slice() else {
            panic!("poll expected");
        };
        let rid = *request_id;
        let mut dismissed = Vec::new();
        for i in 0..3 {
            dismissed =
                m.on_verify_response(rid, VehicleId::new(9), true, false, &[], 5.0 + i as f64);
            if !dismissed.is_empty() {
                break;
            }
        }
        assert!(matches!(
            dismissed.as_slice(),
            [ManagerAction::Dismiss { reporter, suspect }]
                if reporter.raw() == 0 && suspect.raw() == 9
        ));
        assert_eq!(m.false_report_count(VehicleId::new(0)), 1);
        assert_eq!(m.state(), ImState::Standby);
        assert!(m.confirmed_malicious().is_empty());
    }

    #[test]
    fn stale_verify_responses_ignored() {
        let mut m = manager();
        m.on_incident_report(&incident(0, 9), &ids(1..6), 5.0);
        // Wrong request id.
        assert!(m
            .on_verify_response(999, VehicleId::new(9), true, true, &[], 5.0)
            .is_empty());
        // Unknown suspect.
        assert!(m
            .on_verify_response(0, VehicleId::new(55), true, true, &[], 5.0)
            .is_empty());
    }

    #[test]
    fn evacuation_block_is_chained() {
        let mut m = manager();
        let first = m.on_window(&[request(0), request(1)], 0.0).expect("block");
        let ManagerAction::BroadcastBlock(b0) = first else {
            panic!()
        };
        let action = m
            .evacuation_block(&[request(2)], &[Vec2::ZERO], 10.0)
            .expect("evacuation block");
        let ManagerAction::BroadcastBlock(b1) = action else {
            panic!("expected block");
        };
        assert_eq!(b1.index(), b0.index() + 1);
        assert_eq!(b1.prev_hash(), b0.hash());
    }

    #[test]
    fn neighbor_tips_anchor_into_next_block_only() {
        let mut m = manager();
        let tip_a = nwade_crypto::sha256(b"shard-2-tip");
        let tip_b = nwade_crypto::sha256(b"shard-1-tip");
        m.note_neighbor_tip(2, nwade_crypto::sha256(b"stale"));
        m.note_neighbor_tip(2, tip_a); // latest observation wins
        m.note_neighbor_tip(1, tip_b);
        let ManagerAction::BroadcastBlock(b0) =
            m.on_window(&[request(0), request(1)], 0.0).expect("block")
        else {
            panic!("expected block");
        };
        assert_eq!(
            b0.anchors(),
            &[
                ShardAnchor {
                    shard: 1,
                    tip: tip_b
                },
                ShardAnchor {
                    shard: 2,
                    tip: tip_a
                },
            ],
            "anchors drained in shard order"
        );
        // Drained: the next block carries none unless re-announced.
        let ManagerAction::BroadcastBlock(b1) = m.on_window(&[request(2)], 1.0).expect("block")
        else {
            panic!("expected block");
        };
        assert!(b1.anchors().is_empty());
    }

    #[test]
    fn empty_windows_keep_anchors_pending() {
        let mut m = manager();
        m.note_neighbor_tip(4, nwade_crypto::sha256(b"tip"));
        assert!(m.on_window(&[], 0.0).is_none(), "no requests, no block");
        let ManagerAction::BroadcastBlock(b) = m.on_window(&[request(0)], 1.0).expect("block")
        else {
            panic!("expected block");
        };
        assert_eq!(b.anchors().len(), 1, "anchor survived the empty window");
    }

    #[test]
    fn reporter_history_seeds_and_ratchets() {
        let mut m = manager();
        let v = VehicleId::new(42);
        m.note_reporter_history(v, 0);
        assert_eq!(m.false_report_count(v), 0, "zero history is a no-op");
        m.note_reporter_history(v, 2);
        assert_eq!(m.false_report_count(v), 2);
        m.note_reporter_history(v, 1);
        assert_eq!(m.false_report_count(v), 2, "histories never shrink");
        m.note_reporter_history(v, 3);
        assert_eq!(m.false_report_count(v), 3);
        // A seeded squelch suppresses the report like a local one.
        assert!(m
            .on_incident_report(&incident(42, 9), &ids(1..8), 5.0)
            .is_empty());
    }

    #[test]
    fn recovery_cycle() {
        let mut m = manager();
        m.on_incident_report(&incident(0, 9), &[], 5.0); // straight to evacuation
        assert_eq!(m.state(), ImState::Evacuation);
        m.on_threat_cleared();
        assert_eq!(m.state(), ImState::PostEvacuationRecovery);
        m.on_recovery_complete();
        assert_eq!(m.state(), ImState::Standby);
    }
}
