//! Protocol messages exchanged over the VANET, and their message-class
//! labels for packet accounting (Fig. 7).

use nwade_aim::PlanRequest;
use nwade_chain::Block;
use nwade_geometry::Vec2;
use nwade_traffic::{VehicleDescriptor, VehicleId};

/// Message-class labels used with [`nwade_vanet::NetworkStats`].
pub mod class {
    /// A vehicle requesting a travel plan.
    pub const PLAN_REQUEST: &str = "plan-request";
    /// The manager broadcasting a block.
    pub const BLOCK: &str = "block";
    /// A vehicle asking peers for blocks it missed.
    pub const BLOCK_REQUEST: &str = "block-request";
    /// A peer answering with blocks.
    pub const BLOCK_RESPONSE: &str = "block-response";
    /// A watcher reporting a deviating neighbour.
    pub const INCIDENT_REPORT: &str = "incident-report";
    /// The manager polling a watcher group.
    pub const VERIFY_REQUEST: &str = "verify-request";
    /// A watcher's verdict.
    pub const VERIFY_RESPONSE: &str = "verify-response";
    /// The manager dismissing a false alarm.
    pub const DISMISSAL: &str = "dismissal";
    /// The manager's evacuation alert (suspect features + location).
    pub const EVACUATION_ALERT: &str = "evacuation-alert";
    /// A vehicle's broadcast that the manager is compromised.
    pub const GLOBAL_REPORT: &str = "global-report";
    /// A bare plan without the blockchain (the no-NWADE baseline).
    pub const PLAN_ASSIGNMENT: &str = "plan-assignment";
}

/// A sensor observation of a neighbouring vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The observed vehicle.
    pub target: VehicleId,
    /// Sensed world position.
    pub position: Vec2,
    /// Sensed speed, m/s.
    pub speed: f64,
    /// Observation time.
    pub time: f64,
}

/// The incident report `IR = ⟨E†, B_y⟩` of Algorithm 2: the watcher's
/// sensor evidence plus the block index holding the suspect's plan.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// Reporting vehicle.
    pub reporter: VehicleId,
    /// The suspect.
    pub suspect: VehicleId,
    /// The sensor evidence `E†`.
    pub evidence: Observation,
    /// Index of the block containing the suspect's plan (`B_y`).
    pub block_index: u64,
}

/// What a global report accuses the system of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalClaim {
    /// "Block `index` contains conflicting travel plans" (manager
    /// compromised).
    ConflictingPlans {
        /// The accused block.
        index: u64,
    },
    /// "Vehicle `suspect` misbehaves and the manager ignores it".
    AbnormalVehicle {
        /// The accused vehicle.
        suspect: VehicleId,
    },
    /// "The manager evacuated against `suspect`, but my own sensors say
    /// that vehicle is compliant" — a dissent against a (possibly
    /// compromised) manager's false evacuation alert.
    WrongfulAccusation {
        /// The vehicle the manager falsely accused.
        suspect: VehicleId,
    },
}

/// A broadcast warning from a vehicle that no longer trusts the manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalReport {
    /// Sending vehicle.
    pub sender: VehicleId,
    /// The accusation.
    pub claim: GlobalClaim,
    /// Send time.
    pub time: f64,
}

/// Everything that travels over the simulated VANET.
#[derive(Debug, Clone)]
pub enum NwadeMessage {
    /// Vehicle → manager: request a plan.
    PlanRequest(PlanRequest),
    /// Manager → broadcast: a new block.
    Block(Block),
    /// Vehicle → peer: send me blocks from `from_index` on.
    BlockRequest {
        /// First missing block index.
        from_index: u64,
    },
    /// Peer → vehicle: the requested blocks.
    BlockResponse(Vec<Block>),
    /// Watcher → manager: a neighbour deviates.
    IncidentReport(IncidentReport),
    /// Manager → watcher: check this suspect for me. Carries the
    /// suspect's current plan so watchers that arrived after the plan's
    /// block can still verify (§IV-B2: late watchers otherwise fetch the
    /// block from vehicles in front).
    VerifyRequest {
        /// Correlates responses to the poll.
        request_id: u64,
        /// The vehicle to check.
        suspect: VehicleId,
        /// The suspect's published plan.
        plan: Box<nwade_aim::TravelPlan>,
    },
    /// Watcher → manager: my verdict.
    VerifyResponse {
        /// The poll this answers.
        request_id: u64,
        /// The checked vehicle.
        suspect: VehicleId,
        /// `true` when the watcher could observe the suspect at all;
        /// `false` is an abstention, not a "normal" vote.
        observed: bool,
        /// `true` when the watcher saw a deviation.
        abnormal: bool,
    },
    /// Manager → reporter: false alarm, stand down.
    Dismissal {
        /// The suspect the report was about.
        suspect: VehicleId,
    },
    /// Manager → broadcast: threat confirmed; features and last position
    /// of the suspect.
    EvacuationAlert {
        /// The confirmed malicious vehicle.
        suspect: VehicleId,
        /// Its identifiable features.
        descriptor: VehicleDescriptor,
        /// Its last known position.
        location: Vec2,
    },
    /// Vehicle → broadcast: the manager can no longer be trusted.
    GlobalReport(GlobalReport),
    /// Manager → vehicle: a bare plan without the blockchain wrapper —
    /// only used by the "without NWADE" baseline of Fig. 8.
    PlanAssignment(nwade_aim::TravelPlan),
}

impl NwadeMessage {
    /// The packet-accounting class of this message.
    pub fn class(&self) -> &'static str {
        match self {
            NwadeMessage::PlanRequest(_) => class::PLAN_REQUEST,
            NwadeMessage::Block(_) => class::BLOCK,
            NwadeMessage::BlockRequest { .. } => class::BLOCK_REQUEST,
            NwadeMessage::BlockResponse(_) => class::BLOCK_RESPONSE,
            NwadeMessage::IncidentReport(_) => class::INCIDENT_REPORT,
            NwadeMessage::VerifyRequest { .. } => class::VERIFY_REQUEST,
            NwadeMessage::VerifyResponse { .. } => class::VERIFY_RESPONSE,
            NwadeMessage::Dismissal { .. } => class::DISMISSAL,
            NwadeMessage::EvacuationAlert { .. } => class::EVACUATION_ALERT,
            NwadeMessage::GlobalReport(_) => class::GLOBAL_REPORT,
            NwadeMessage::PlanAssignment(_) => class::PLAN_ASSIGNMENT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_distinct() {
        let classes = [
            class::PLAN_REQUEST,
            class::BLOCK,
            class::BLOCK_REQUEST,
            class::BLOCK_RESPONSE,
            class::INCIDENT_REPORT,
            class::VERIFY_REQUEST,
            class::VERIFY_RESPONSE,
            class::DISMISSAL,
            class::EVACUATION_ALERT,
            class::GLOBAL_REPORT,
        ];
        let set: std::collections::HashSet<_> = classes.iter().collect();
        assert_eq!(set.len(), classes.len());
    }

    #[test]
    fn message_class_mapping() {
        let m = NwadeMessage::BlockRequest { from_index: 3 };
        assert_eq!(m.class(), class::BLOCK_REQUEST);
        let g = NwadeMessage::GlobalReport(GlobalReport {
            sender: VehicleId::new(1),
            claim: GlobalClaim::ConflictingPlans { index: 2 },
            time: 0.0,
        });
        assert_eq!(g.class(), class::GLOBAL_REPORT);
    }

    #[test]
    fn global_claims_hash_and_compare() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(GlobalClaim::ConflictingPlans { index: 1 });
        set.insert(GlobalClaim::ConflictingPlans { index: 1 });
        set.insert(GlobalClaim::AbnormalVehicle {
            suspect: VehicleId::new(5),
        });
        assert_eq!(set.len(), 2);
    }
}
