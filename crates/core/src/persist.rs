//! Durable IM state: WAL record schema, periodic snapshots, and warm
//! recovery by replay.
//!
//! The storage layer (`nwade-store`) keeps opaque checksummed records;
//! this module decides what goes in them. The log is **event-sourced**:
//! the IM appends a [`WalRecord::WindowStart`] (with the in-flight
//! requests) before scheduling, a [`WalRecord::Commit`] before
//! publishing the resulting block, and a [`WalRecord::Broadcasted`]
//! after the broadcast goes out; vehicle releases and evacuation stages
//! are logged the same way, and every N windows a full
//! [`WalRecord::Snapshot`] of the manager's durable state is appended
//! in-log. Because every scheduler in the workspace is deterministic,
//! recovery is "restore latest intact snapshot, then re-execute the
//! suffix": the replayed windows rebuild the reservation table, the
//! published-plan ledger, the chain tip and the recent-block cache
//! bit-for-bit, and each re-created block is checked against the hash
//! pinned by its `Commit` record — any divergence (or a corrupt
//! snapshot) aborts to the cold-restart path instead of trusting a
//! half-broken log.
//!
//! Durability points (one `fsync` each, batching everything appended
//! since the previous one):
//!
//! | point                    | what becomes durable                  |
//! |--------------------------|---------------------------------------|
//! | `WindowStart`/`EvacStart`| the requests being scheduled, plus any buffered `Broadcasted`/`Release` records from earlier ticks |
//! | `Commit`                 | the block about to be published       |
//! | `Snapshot`               | the full durable state                |
//!
//! `Broadcasted` and `Release` records are appended without their own
//! barrier; losing them in a crash is safe — a re-broadcast duplicate
//! is ignored by vehicles (stale index), and a re-booked reservation
//! for a departed vehicle only delays later scheduling until garbage
//! collection, never admits a conflict.

use crate::manager::{ManagerAction, NwadeManager};
use bytes::{Buf, BufMut};
use nwade_aim::{PlanRequest, SchedulerState, TravelPlan};
use nwade_chain::Block;
use nwade_crypto::Digest;
use nwade_geometry::Vec2;
use nwade_store::{Backend, StoreError, Wal};
use nwade_traffic::VehicleId;

/// Labelled points at which the chaos harness kills the IM mid-window
/// (tentpole crash-point injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After scheduling + packaging, before the WAL commit record is
    /// appended: the block exists only in RAM and is lost whole.
    AfterStage,
    /// While the commit record is being written: it reaches the device
    /// torn (a partial frame) and must be truncated by recovery.
    BeforeCommit,
    /// After the commit record is durable, before the broadcast goes
    /// out: recovery must re-send exactly this block.
    AfterCommit,
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrashPoint::AfterStage => "after-stage",
            CrashPoint::BeforeCommit => "before-commit",
            CrashPoint::AfterCommit => "after-commit",
        })
    }
}

/// The manager state a snapshot captures: everything §IV-B5 needs to
/// resume issuing valid blocks — the chain tip (`h_{i-1}`, height), the
/// reservation lanes, the published-plan ledger the conflict pre-check
/// runs against, the confirmed-threat and false-reporter records, and
/// the recent-block cache vehicles back-fill from.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableState {
    /// Hash the next block must point at.
    pub prev_hash: Digest,
    /// Index the next block will carry.
    pub next_index: u64,
    /// Verification-poll id counter (avoids stale-response collisions).
    pub next_request_id: u64,
    /// Scheduler reservation state ([`nwade_aim::Scheduler::export_state`]).
    pub scheduler: SchedulerState,
    /// Published plans, sorted by vehicle id (canonical order).
    pub published: Vec<TravelPlan>,
    /// Vehicles confirmed malicious.
    pub confirmed: Vec<VehicleId>,
    /// False-alarm counts, sorted by vehicle id.
    pub false_reporters: Vec<(VehicleId, u32)>,
    /// Recent blocks served to back-filling vehicles.
    pub recent_blocks: Vec<Block>,
}

impl DurableState {
    /// Canonical encoding (embedded in [`WalRecord::Snapshot`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.put_slice(self.prev_hash.as_bytes());
        buf.put_u64(self.next_index);
        buf.put_u64(self.next_request_id);
        let sched = self.scheduler.encode();
        buf.put_u32(sched.len() as u32);
        buf.put_slice(&sched);
        buf.put_u32(self.published.len() as u32);
        for plan in &self.published {
            buf.put_slice(&plan.encode());
        }
        buf.put_u32(self.confirmed.len() as u32);
        for v in &self.confirmed {
            buf.put_u64(v.raw());
        }
        buf.put_u32(self.false_reporters.len() as u32);
        for (v, n) in &self.false_reporters {
            buf.put_u64(v.raw());
            buf.put_u32(*n);
        }
        buf.put_u32(self.recent_blocks.len() as u32);
        for block in &self.recent_blocks {
            buf.put_slice(&block.encode());
        }
        buf
    }

    /// Decodes a snapshot body; `None` on any truncation or malformed
    /// field, never a panic.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = bytes;
        let mut prev = [0u8; 32];
        cursor.try_copy_to_slice(&mut prev).ok()?;
        let next_index = cursor.try_get_u64().ok()?;
        let next_request_id = cursor.try_get_u64().ok()?;
        let sched_len = cursor.try_get_u32().ok()? as usize;
        if cursor.remaining() < sched_len {
            return None;
        }
        let scheduler = SchedulerState::decode(&cursor[..sched_len])?;
        cursor = &cursor[sched_len..];
        let n = cursor.try_get_u32().ok()? as usize;
        let mut published = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            published.push(TravelPlan::decode_from(&mut cursor)?);
        }
        let n = cursor.try_get_u32().ok()? as usize;
        let mut confirmed = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            confirmed.push(VehicleId::new(cursor.try_get_u64().ok()?));
        }
        let n = cursor.try_get_u32().ok()? as usize;
        let mut false_reporters = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let v = VehicleId::new(cursor.try_get_u64().ok()?);
            false_reporters.push((v, cursor.try_get_u32().ok()?));
        }
        let n = cursor.try_get_u32().ok()? as usize;
        let mut recent_blocks = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            recent_blocks.push(Block::decode_from(&mut cursor)?);
        }
        cursor.is_empty().then_some(DurableState {
            prev_hash: Digest(prev),
            next_index,
            next_request_id,
            scheduler,
            published,
            confirmed,
            false_reporters,
            recent_blocks,
        })
    }
}

const KIND_SNAPSHOT: u8 = 1;
const KIND_WINDOW_START: u8 = 2;
const KIND_EVAC_START: u8 = 3;
const KIND_COMMIT: u8 = 4;
const KIND_BROADCASTED: u8 = 5;
const KIND_RELEASE: u8 = 6;

/// One WAL record (the payload inside a checksummed store frame).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Full durable state, appended every N windows.
    Snapshot(DurableState),
    /// A processing window is about to be scheduled with these
    /// requests — the requests-durability point.
    WindowStart {
        /// Window timestamp.
        now: f64,
        /// The in-flight requests, in scheduling order.
        requests: Vec<PlanRequest>,
    },
    /// An evacuation block is about to be planned.
    EvacStart {
        /// Planning timestamp.
        now: f64,
        /// Active vehicles to re-plan.
        states: Vec<PlanRequest>,
        /// Confirmed threat locations.
        threats: Vec<Vec2>,
    },
    /// The staged block was committed (written before publication);
    /// replay re-creates the block and checks it against this hash.
    Commit {
        /// Block index.
        index: u64,
        /// `Block::hash()` of the committed block.
        hash: Digest,
    },
    /// The committed block of this index went out on the air.
    Broadcasted {
        /// Block index.
        index: u64,
    },
    /// A vehicle left the area and its reservations were released.
    Release {
        /// The departed vehicle.
        vehicle: VehicleId,
    },
}

fn put_requests(buf: &mut Vec<u8>, requests: &[PlanRequest]) {
    buf.put_u32(requests.len() as u32);
    for r in requests {
        buf.put_slice(&r.encode());
    }
}

fn get_requests(cursor: &mut &[u8]) -> Option<Vec<PlanRequest>> {
    let n = cursor.try_get_u32().ok()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(PlanRequest::decode_from(cursor)?);
    }
    Some(out)
}

impl WalRecord {
    /// Encodes the record as a store-frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            WalRecord::Snapshot(state) => {
                buf.put_u8(KIND_SNAPSHOT);
                buf.put_slice(&state.encode());
            }
            WalRecord::WindowStart { now, requests } => {
                buf.put_u8(KIND_WINDOW_START);
                buf.put_f64(*now);
                put_requests(&mut buf, requests);
            }
            WalRecord::EvacStart {
                now,
                states,
                threats,
            } => {
                buf.put_u8(KIND_EVAC_START);
                buf.put_f64(*now);
                put_requests(&mut buf, states);
                buf.put_u32(threats.len() as u32);
                for t in threats {
                    buf.put_f64(t.x);
                    buf.put_f64(t.y);
                }
            }
            WalRecord::Commit { index, hash } => {
                buf.put_u8(KIND_COMMIT);
                buf.put_u64(*index);
                buf.put_slice(hash.as_bytes());
            }
            WalRecord::Broadcasted { index } => {
                buf.put_u8(KIND_BROADCASTED);
                buf.put_u64(*index);
            }
            WalRecord::Release { vehicle } => {
                buf.put_u8(KIND_RELEASE);
                buf.put_u64(vehicle.raw());
            }
        }
        buf
    }

    /// Decodes a store-frame payload; `None` on unknown kind, any
    /// truncation, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = bytes;
        let record = match cursor.try_get_u8().ok()? {
            KIND_SNAPSHOT => return DurableState::decode(cursor).map(WalRecord::Snapshot),
            KIND_WINDOW_START => WalRecord::WindowStart {
                now: cursor.try_get_f64().ok()?,
                requests: get_requests(&mut cursor)?,
            },
            KIND_EVAC_START => {
                let now = cursor.try_get_f64().ok()?;
                let states = get_requests(&mut cursor)?;
                let n = cursor.try_get_u32().ok()? as usize;
                let mut threats = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    threats.push(Vec2::new(
                        cursor.try_get_f64().ok()?,
                        cursor.try_get_f64().ok()?,
                    ));
                }
                WalRecord::EvacStart {
                    now,
                    states,
                    threats,
                }
            }
            KIND_COMMIT => {
                let index = cursor.try_get_u64().ok()?;
                let mut hash = [0u8; 32];
                cursor.try_copy_to_slice(&mut hash).ok()?;
                WalRecord::Commit {
                    index,
                    hash: Digest(hash),
                }
            }
            KIND_BROADCASTED => WalRecord::Broadcasted {
                index: cursor.try_get_u64().ok()?,
            },
            KIND_RELEASE => WalRecord::Release {
                vehicle: VehicleId::new(cursor.try_get_u64().ok()?),
            },
            _ => return None,
        };
        cursor.is_empty().then_some(record)
    }
}

/// A successful warm recovery.
#[derive(Debug)]
pub struct WarmRecovery {
    /// Committed-but-unbroadcast blocks (and a re-executed in-flight
    /// window, if the crash hit before its commit) the host must now
    /// broadcast, in chain order.
    pub actions: Vec<ManagerAction>,
    /// Torn-tail bytes the store truncated while opening the log.
    pub truncated_bytes: u64,
    /// WAL records replayed after the snapshot (diagnostics).
    pub replayed_records: usize,
}

/// What [`ImPersistence::attach`] concluded.
#[derive(Debug)]
pub enum RecoveryOutcome {
    /// The manager now holds the pre-crash durable state; continue
    /// without evacuating anyone.
    Warm(WarmRecovery),
    /// The log or snapshot was unusable; the caller must fall back to
    /// the cold-restart + evacuation path (and stop logging to this
    /// device — its contents no longer match the manager).
    Cold {
        /// Why recovery gave up.
        reason: String,
    },
}

/// The IM's persistence handle: owns the WAL and the snapshot cadence.
#[derive(Debug)]
pub struct ImPersistence {
    wal: Wal,
    snapshot_every: u32,
    windows_since_snapshot: u32,
}

enum Staged {
    None,
    /// A stage record was replayed; `Some` when it produced a block.
    Executed(Option<Block>),
}

impl ImPersistence {
    /// Opens the log on `backend` and brings `manager` up to date.
    ///
    /// `manager` must be freshly constructed (genesis state): on an
    /// empty log this is a no-op warm outcome; otherwise the latest
    /// intact snapshot is restored into it and the WAL suffix replayed
    /// through the manager's own deterministic handlers, verifying each
    /// re-created block against its `Commit` hash. Any inconsistency
    /// yields [`RecoveryOutcome::Cold`] — the caller must then discard
    /// `manager` (it may be half-restored) along with this handle.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] only for device-level failures.
    pub fn attach(
        backend: Box<dyn Backend>,
        snapshot_every: u32,
        manager: &mut NwadeManager,
    ) -> Result<(Self, RecoveryOutcome), StoreError> {
        let snapshot_every = snapshot_every.max(1);
        let (wal, opened) = Wal::open(backend)?;
        let mut persist = ImPersistence {
            wal,
            snapshot_every,
            windows_since_snapshot: 0,
        };

        let mut records = Vec::with_capacity(opened.records.len());
        for payload in &opened.records {
            match WalRecord::decode(payload) {
                Some(r) => records.push(r),
                None => {
                    return Ok((
                        persist,
                        RecoveryOutcome::Cold {
                            reason: "undecodable WAL record".into(),
                        },
                    ));
                }
            }
        }

        // Restore the latest snapshot, if any.
        let snap_pos = records
            .iter()
            .rposition(|r| matches!(r, WalRecord::Snapshot(_)));
        let replay_from = match snap_pos {
            Some(pos) => {
                let WalRecord::Snapshot(state) = &records[pos] else {
                    unreachable!("rposition matched a snapshot");
                };
                if !manager.restore_durable(state) {
                    return Ok((
                        persist,
                        RecoveryOutcome::Cold {
                            reason: "snapshot rejected by scheduler restore".into(),
                        },
                    ));
                }
                pos + 1
            }
            None => 0,
        };

        // Re-execute the suffix.
        let mut staged = Staged::None;
        let mut unbroadcast: Vec<(u64, Block)> = Vec::new();
        let mut cold: Option<String> = None;
        let replayed = records.len() - replay_from;
        for record in records.drain(..).skip(replay_from) {
            match record {
                WalRecord::Snapshot(_) => {
                    cold = Some("snapshot after the latest snapshot".into());
                    break;
                }
                WalRecord::WindowStart { now, requests } => {
                    if matches!(staged, Staged::Executed(Some(_))) {
                        // The live run continued past this window without
                        // committing, so it must not have produced a block;
                        // our replay did — the log is inconsistent.
                        cold = Some("uncommitted window produced a block".into());
                        break;
                    }
                    let action = manager.on_window(&requests, now);
                    staged = Staged::Executed(match action {
                        Some(ManagerAction::BroadcastBlock(b)) => Some(b),
                        _ => None,
                    });
                }
                WalRecord::EvacStart {
                    now,
                    states,
                    threats,
                } => {
                    if matches!(staged, Staged::Executed(Some(_))) {
                        cold = Some("uncommitted stage produced a block".into());
                        break;
                    }
                    let action = manager.evacuation_block(&states, &threats, now);
                    staged = Staged::Executed(match action {
                        Some(ManagerAction::BroadcastBlock(b)) => Some(b),
                        _ => None,
                    });
                }
                WalRecord::Commit { index, hash } => {
                    let Staged::Executed(Some(block)) =
                        std::mem::replace(&mut staged, Staged::None)
                    else {
                        cold = Some("commit without a staged block".into());
                        break;
                    };
                    if block.index() != index || block.hash() != hash {
                        cold = Some(format!(
                            "replay divergence at block {index}: replayed block {} does not match the committed hash",
                            block.index()
                        ));
                        break;
                    }
                    unbroadcast.push((index, block));
                }
                WalRecord::Broadcasted { index } => {
                    if matches!(staged, Staged::Executed(Some(_))) {
                        cold = Some("broadcast record for an uncommitted block".into());
                        break;
                    }
                    unbroadcast.retain(|(i, _)| *i != index);
                }
                WalRecord::Release { vehicle } => {
                    if matches!(staged, Staged::Executed(Some(_))) {
                        cold = Some("release record while a block was uncommitted".into());
                        break;
                    }
                    manager.release_vehicle(vehicle);
                }
            }
        }
        if let Some(reason) = cold {
            return Ok((persist, RecoveryOutcome::Cold { reason }));
        }

        // A trailing stage without a commit is the crash window itself:
        // the block (if any) was re-created above — commit it now, then
        // hand it to the host for broadcast.
        if let Staged::Executed(Some(block)) = staged {
            persist.wal.append(
                &WalRecord::Commit {
                    index: block.index(),
                    hash: block.hash(),
                }
                .encode(),
            )?;
            persist.wal.commit()?;
            unbroadcast.push((block.index(), block));
        }

        // Compact: everything above is now captured by one fresh
        // snapshot, so the next recovery replays only from here.
        if replayed > 0 || snap_pos.is_some() {
            persist.snapshot(manager)?;
        }

        unbroadcast.sort_by_key(|(i, _)| *i);
        let actions = unbroadcast
            .into_iter()
            .map(|(_, b)| ManagerAction::BroadcastBlock(b))
            .collect();
        Ok((
            persist,
            RecoveryOutcome::Warm(WarmRecovery {
                actions,
                truncated_bytes: opened.truncated,
                replayed_records: replayed,
            }),
        ))
    }

    /// Forks this handle onto an independently forked device (see
    /// `nwade_store::MemBackend::fork`): same snapshot cadence, same
    /// windows-since-snapshot counter, no recovery scan and no
    /// compaction. A forensic world snapshot pairs a cloned manager
    /// with this so the resumed run appends the exact same records —
    /// including the snapshot-cadence positions — as the original.
    pub fn fork_onto(&self, backend: Box<dyn Backend>) -> ImPersistence {
        ImPersistence {
            wal: Wal::resume(backend),
            snapshot_every: self.snapshot_every,
            windows_since_snapshot: self.windows_since_snapshot,
        }
    }

    fn snapshot(&mut self, manager: &NwadeManager) -> Result<(), StoreError> {
        self.wal
            .append(&WalRecord::Snapshot(manager.durable_state()).encode())?;
        self.wal.commit()?;
        self.windows_since_snapshot = 0;
        Ok(())
    }

    /// Logs (and syncs) the start of a processing window with its
    /// in-flight requests. Also flushes any buffered `Broadcasted` /
    /// `Release` records from earlier ticks.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn window_start(&mut self, now: f64, requests: &[PlanRequest]) -> Result<(), StoreError> {
        self.wal.append(
            &WalRecord::WindowStart {
                now,
                requests: requests.to_vec(),
            }
            .encode(),
        )?;
        self.wal.commit()
    }

    /// Logs (and syncs) the start of evacuation planning.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn evac_start(
        &mut self,
        now: f64,
        states: &[PlanRequest],
        threats: &[Vec2],
    ) -> Result<(), StoreError> {
        self.wal.append(
            &WalRecord::EvacStart {
                now,
                states: states.to_vec(),
                threats: threats.to_vec(),
            }
            .encode(),
        )?;
        self.wal.commit()
    }

    /// Appends the commit record for a staged block. `sync` false
    /// leaves it in the page cache (used by the torn-write crash
    /// point); every real caller passes true — this is the barrier
    /// "WAL record before publishing".
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn commit_block(&mut self, block: &Block, sync: bool) -> Result<(), StoreError> {
        self.wal.append(
            &WalRecord::Commit {
                index: block.index(),
                hash: block.hash(),
            }
            .encode(),
        )?;
        if sync {
            self.wal.commit()?;
        }
        Ok(())
    }

    /// Buffers a broadcast marker (no barrier of its own).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn broadcasted(&mut self, index: u64) -> Result<(), StoreError> {
        self.wal.append(&WalRecord::Broadcasted { index }.encode())
    }

    /// Buffers a vehicle-release record (no barrier of its own).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn release(&mut self, vehicle: VehicleId) -> Result<(), StoreError> {
        self.wal.append(&WalRecord::Release { vehicle }.encode())
    }

    /// Marks the end of a processing window and appends a snapshot
    /// every `snapshot_every`-th call. Returns `true` when a snapshot
    /// was written.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn window_end(&mut self, manager: &NwadeManager) -> Result<bool, StoreError> {
        self.windows_since_snapshot += 1;
        if self.windows_since_snapshot >= self.snapshot_every {
            self.snapshot(manager)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Current log size in bytes (diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on device failure.
    pub fn len_bytes(&mut self) -> Result<u64, StoreError> {
        self.wal.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NwadeConfig;
    use nwade_aim::{ReservationScheduler, SchedulerConfig};
    use nwade_crypto::MockScheme;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
    use nwade_store::MemBackend;
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn manager() -> NwadeManager {
        let topo = topo();
        let scheduler = Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        ));
        NwadeManager::new(
            topo,
            scheduler,
            Arc::new(MockScheme::from_seed(9)),
            NwadeConfig::default(),
        )
    }

    fn request(id: u64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(((id * 3) % 16) as u16),
            position_s: 0.0,
            speed: 15.0,
        }
    }

    fn attach_fresh(handle: &MemBackend) -> (ImPersistence, NwadeManager, RecoveryOutcome) {
        let mut m = manager();
        let (p, outcome) =
            ImPersistence::attach(Box::new(handle.clone()), 4, &mut m).expect("attach");
        (p, m, outcome)
    }

    /// Drives `n` windows through manager + persistence the way the
    /// host does, returning the broadcast blocks.
    fn drive(
        persist: &mut ImPersistence,
        manager: &mut NwadeManager,
        windows: std::ops::Range<u64>,
    ) -> Vec<Block> {
        let mut blocks = Vec::new();
        for w in windows {
            let now = w as f64 * 4.0;
            let requests = [request(w * 2), request(w * 2 + 1)];
            persist.window_start(now, &requests).unwrap();
            let action = manager.on_window(&requests, now).expect("block");
            let ManagerAction::BroadcastBlock(block) = action else {
                panic!("expected a broadcast");
            };
            persist.commit_block(&block, true).unwrap();
            persist.broadcasted(block.index()).unwrap();
            persist.window_end(manager).unwrap();
            blocks.push(block);
        }
        blocks
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let mut m = manager();
        let _ = m.on_window(&[request(0), request(1)], 0.0);
        let state = m.durable_state();
        let bytes = state.encode();
        assert_eq!(DurableState::decode(&bytes), Some(state.clone()));
        for cut in 0..bytes.len() {
            assert_eq!(DurableState::decode(&bytes[..cut]), None, "prefix {cut}");
        }
        // Restoring into a fresh manager reproduces the durable state.
        let mut fresh = manager();
        assert!(fresh.restore_durable(&state));
        assert_eq!(fresh.durable_state(), state);
    }

    #[test]
    fn wal_record_codec_round_trips() {
        let records = vec![
            WalRecord::WindowStart {
                now: 12.5,
                requests: vec![request(1), request(2)],
            },
            WalRecord::EvacStart {
                now: 30.0,
                states: vec![request(3)],
                threats: vec![Vec2::new(1.0, -2.0)],
            },
            WalRecord::Commit {
                index: 7,
                hash: nwade_crypto::sha256(b"x"),
            },
            WalRecord::Broadcasted { index: 7 },
            WalRecord::Release {
                vehicle: VehicleId::new(9),
            },
        ];
        for r in records {
            let bytes = r.encode();
            assert_eq!(WalRecord::decode(&bytes), Some(r));
            assert_eq!(WalRecord::decode(&bytes[..bytes.len() - 1]), None);
        }
        assert_eq!(WalRecord::decode(&[99, 0, 0]), None, "unknown kind");
    }

    #[test]
    fn fresh_log_attaches_warm_with_no_actions() {
        let handle = MemBackend::new();
        let (_, _, outcome) = attach_fresh(&handle);
        let RecoveryOutcome::Warm(w) = outcome else {
            panic!("fresh log must attach warm, got {outcome:?}");
        };
        assert!(w.actions.is_empty());
        assert_eq!(w.replayed_records, 0);
    }

    #[test]
    fn crash_after_commit_recovers_same_tip_and_rebroadcasts() {
        let handle = MemBackend::new();
        let (mut persist, mut live, _) = attach_fresh(&handle);
        let blocks = drive(&mut persist, &mut live, 0..3);

        // Window 3 commits (synced) but the broadcast never goes out.
        let now = 12.0;
        let requests = [request(6), request(7)];
        persist.window_start(now, &requests).unwrap();
        let Some(ManagerAction::BroadcastBlock(staged)) = live.on_window(&requests, now) else {
            panic!("expected a block");
        };
        persist.commit_block(&staged, true).unwrap();
        handle.crash(0);
        drop(persist);

        let (_, recovered, outcome) = attach_fresh(&handle);
        let RecoveryOutcome::Warm(w) = outcome else {
            panic!("expected warm recovery, got {outcome:?}");
        };
        let [ManagerAction::BroadcastBlock(again)] = w.actions.as_slice() else {
            panic!(
                "expected exactly the unbroadcast block, got {:?}",
                w.actions
            );
        };
        assert_eq!(again.hash(), staged.hash(), "bit-identical re-creation");
        assert_eq!(recovered.durable_state(), live.durable_state());
        let _ = blocks;
    }

    #[test]
    fn crash_before_commit_reexecutes_the_window() {
        let handle = MemBackend::new();
        let (mut persist, mut live, _) = attach_fresh(&handle);
        drive(&mut persist, &mut live, 0..2);

        let now = 8.0;
        let requests = [request(4), request(5)];
        persist.window_start(now, &requests).unwrap();
        let Some(ManagerAction::BroadcastBlock(staged)) = live.on_window(&requests, now) else {
            panic!("expected a block");
        };
        // Torn write: the commit frame reaches the device half-written.
        persist.commit_block(&staged, false).unwrap();
        handle.crash(11);
        drop(persist);

        let (_, recovered, outcome) = attach_fresh(&handle);
        let RecoveryOutcome::Warm(w) = outcome else {
            panic!("expected warm recovery, got {outcome:?}");
        };
        assert!(w.truncated_bytes > 0, "torn tail was repaired");
        let [ManagerAction::BroadcastBlock(again)] = w.actions.as_slice() else {
            panic!("expected the re-executed window's block");
        };
        assert_eq!(again.hash(), staged.hash(), "deterministic re-execution");
        assert_eq!(recovered.durable_state(), live.durable_state());
    }

    #[test]
    fn broadcasted_marker_suppresses_rebroadcast() {
        let handle = MemBackend::new();
        let (mut persist, mut live, _) = attach_fresh(&handle);
        drive(&mut persist, &mut live, 0..2);
        // The next window's start barrier makes the buffered Broadcasted
        // markers durable; crashing right after leaves only the in-flight
        // window to finish — blocks 0 and 1 are already on the air.
        persist
            .window_start(8.0, &[request(4), request(5)])
            .unwrap();
        handle.crash(0);
        drop(persist);

        let (_, _, outcome) = attach_fresh(&handle);
        let RecoveryOutcome::Warm(w) = outcome else {
            panic!("expected warm recovery");
        };
        for action in &w.actions {
            let ManagerAction::BroadcastBlock(b) = action else {
                panic!("unexpected action {action:?}");
            };
            assert_eq!(b.index(), 2, "blocks 0 and 1 must not rebroadcast");
        }
    }

    #[test]
    fn corrupt_snapshot_falls_back_cold() {
        let handle = MemBackend::new();
        let (mut persist, mut live, _) = attach_fresh(&handle);
        drive(&mut persist, &mut live, 0..4); // window_end at 4 snapshots
        drop(persist);

        // Flip a bit inside the (synced) snapshot's scheduler table so
        // the frame checksum stays... no — the frame checksum catches
        // byte flips, which truncates to before the snapshot and stays
        // warm. To hit the *semantic* corrupt-snapshot path, forge a log
        // whose snapshot record decodes but whose table bytes are junk.
        let mut m = manager();
        let mut state = m.durable_state();
        state.scheduler.table = vec![0xFF; 7];
        let forged = MemBackend::new();
        {
            let (mut wal, _) = Wal::open(Box::new(forged.clone())).unwrap();
            wal.append_committed(&WalRecord::Snapshot(state).encode())
                .unwrap();
        }
        let (_, outcome) = ImPersistence::attach(Box::new(forged.clone()), 4, &mut m).unwrap();
        assert!(
            matches!(outcome, RecoveryOutcome::Cold { .. }),
            "junk snapshot must go cold, got {outcome:?}"
        );
    }

    #[test]
    fn bit_flip_in_synced_tail_truncates_to_prefix() {
        let handle = MemBackend::new();
        let (mut persist, mut live, _) = attach_fresh(&handle);
        drive(&mut persist, &mut live, 0..3);
        let len = handle.contents().len();
        drop(persist);
        // Corrupt the last few bytes: recovery drops the damaged suffix
        // and still comes up warm on the committed prefix.
        handle.flip_bit(len - 3, 1);
        let (_, recovered, outcome) = attach_fresh(&handle);
        let RecoveryOutcome::Warm(_) = outcome else {
            panic!("expected warm recovery on the prefix, got {outcome:?}");
        };
        // The recovered tip is one of the committed heights, never junk.
        assert!(recovered.durable_state().next_index <= live.durable_state().next_index);
    }

    #[test]
    fn evacuation_blocks_replay_too() {
        let handle = MemBackend::new();
        let (mut persist, mut live, _) = attach_fresh(&handle);
        drive(&mut persist, &mut live, 0..2);
        let now = 9.0;
        let states = [request(30), request(31)];
        let threats = [Vec2::new(5.0, 5.0)];
        persist.evac_start(now, &states, &threats).unwrap();
        let Some(ManagerAction::BroadcastBlock(evac)) =
            live.evacuation_block(&states, &threats, now)
        else {
            panic!("expected an evacuation block");
        };
        persist.commit_block(&evac, true).unwrap();
        handle.crash(0);
        drop(persist);

        let (_, recovered, outcome) = attach_fresh(&handle);
        let RecoveryOutcome::Warm(w) = outcome else {
            panic!("expected warm recovery, got {outcome:?}");
        };
        let [ManagerAction::BroadcastBlock(again)] = w.actions.as_slice() else {
            panic!("expected the evacuation block to rebroadcast");
        };
        assert_eq!(again.hash(), evac.hash());
        assert_eq!(recovered.durable_state(), live.durable_state());
    }
}
