//! [`WindowPipeline`]: the pipelined window engine's sealing stage.
//!
//! A block's hash covers its signature, and block `N+1`'s signing digest
//! covers block `N`'s hash — so signing is inherently chain-serial. But
//! *nothing else* in a processing window depends on the tip: scheduling,
//! conflict filtering, and the Merkle root of window `N+1` are functions
//! of the requests alone. The pipeline exploits exactly that split:
//!
//! ```text
//! main thread:   prepare(N)  prepare(N+1)  prepare(N+2)   ...
//! seal worker:               seal(N)       seal(N+1)      ...
//! ```
//!
//! The manager produces [`PreparedWindow`]s
//! ([`NwadeManager::prepare_window`]); the worker thread owns the chain
//! tip (`prev_hash`, `next_index`) and seals each prepared window in
//! submission order. Sealed blocks flow back to the host, which feeds
//! them through [`NwadeManager::absorb_sealed`] so the manager's own
//! packager tip, recent-block store, FSM, and reservation GC advance
//! exactly as if it had sealed in-place. Because the worker applies the
//! same `signing_digest`/`sign`/`from_parts` sequence as
//! [`BlockPackager::package`](nwade_chain::BlockPackager) against the
//! same serial tip, the emitted chain is **bit-identical** to the
//! sequential path — pinned by this module's tests and the sim's
//! differential suite.

use crate::manager::PreparedWindow;
use nwade_chain::Block;
use nwade_crypto::{Digest, SignatureScheme};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Off-thread, in-order sealer for prepared windows.
///
/// Dropping the pipeline joins the worker; any still-unsealed windows
/// are sealed and discarded (hosts that care drain first).
pub struct WindowPipeline {
    jobs: Option<mpsc::Sender<PreparedWindow>>,
    sealed: mpsc::Receiver<Block>,
    worker: Option<JoinHandle<()>>,
    in_flight: usize,
}

impl std::fmt::Debug for WindowPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowPipeline")
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl WindowPipeline {
    /// Spawns the sealing worker with the chain tip it will sign
    /// against — normally the owning manager's
    /// [`chain_tip`](crate::NwadeManager::chain_tip) /
    /// [`chain_next_index`](crate::NwadeManager::chain_next_index) at
    /// pipeline creation.
    pub fn new(signer: Arc<dyn SignatureScheme>, prev_hash: Digest, next_index: u64) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<PreparedWindow>();
        let (sealed_tx, sealed_rx) = mpsc::channel::<Block>();
        let worker = std::thread::Builder::new()
            .name("nwade-window-seal".into())
            .spawn(move || {
                let mut prev_hash = prev_hash;
                let mut next_index = next_index;
                while let Ok(prepared) = job_rx.recv() {
                    let (plans, root, timestamp, anchors) = prepared.into_parts();
                    let digest = Block::signing_digest_anchored(
                        next_index, &prev_hash, timestamp, &root, &anchors,
                    );
                    let signature = signer.sign(&digest);
                    let block = Block::from_parts_anchored(
                        next_index, signature, prev_hash, timestamp, root, plans, anchors,
                    );
                    prev_hash = block.hash();
                    next_index += 1;
                    if sealed_tx.send(block).is_err() {
                        break; // host gone; nothing left to seal for
                    }
                }
            })
            .expect("spawn window-seal worker");
        WindowPipeline {
            jobs: Some(job_tx),
            sealed: sealed_rx,
            worker: Some(worker),
            in_flight: 0,
        }
    }

    /// Builds a pipeline continuing a manager's current chain tip.
    pub fn for_manager(manager: &crate::NwadeManager) -> Self {
        WindowPipeline::new(
            manager.signer(),
            manager.chain_tip(),
            manager.chain_next_index(),
        )
    }

    /// Windows submitted but not yet collected.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Queues a prepared window for sealing. Submission order is sealing
    /// order is chain order.
    pub fn submit(&mut self, prepared: PreparedWindow) {
        self.jobs
            .as_ref()
            .expect("pipeline not shut down")
            .send(prepared)
            .expect("seal worker alive");
        self.in_flight += 1;
    }

    /// Collects every block sealed so far without blocking.
    pub fn try_collect(&mut self) -> Vec<Block> {
        let mut out = Vec::new();
        while let Ok(block) = self.sealed.try_recv() {
            self.in_flight -= 1;
            out.push(block);
        }
        out
    }

    /// Blocks until every submitted window is sealed and returns them
    /// in chain order.
    pub fn drain(&mut self) -> Vec<Block> {
        let mut out = Vec::new();
        while self.in_flight > 0 {
            let block = self.sealed.recv().expect("seal worker alive");
            self.in_flight -= 1;
            out.push(block);
        }
        out
    }
}

impl Drop for WindowPipeline {
    fn drop(&mut self) {
        drop(self.jobs.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NwadeConfig;
    use crate::manager::{ManagerAction, NwadeManager};
    use nwade_aim::{PlanRequest, ReservationScheduler, SchedulerConfig};
    use nwade_crypto::MockScheme;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
    use nwade_traffic::{VehicleDescriptor, VehicleId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topology() -> Arc<Topology> {
        Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ))
    }

    fn manager(topo: &Arc<Topology>) -> NwadeManager {
        let scheduler = Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        ));
        NwadeManager::new(
            topo.clone(),
            scheduler,
            Arc::new(MockScheme::from_seed(9)),
            NwadeConfig::default(),
        )
    }

    fn request(id: u64) -> PlanRequest {
        PlanRequest {
            id: VehicleId::new(id),
            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
            movement: MovementId::new(((id * 3) % 16) as u16),
            position_s: 0.0,
            speed: 15.0,
        }
    }

    /// Several windows through prepare→pipeline→absorb produce the exact
    /// blocks (hashes, signatures, indices) the sequential `on_window`
    /// path produces, and leave the manager at the same tip.
    #[test]
    fn pipelined_chain_is_bit_identical_to_sequential() {
        let topo = topology();
        let mut serial = manager(&topo);
        let mut piped = manager(&topo);
        let mut pipeline = WindowPipeline::for_manager(&piped);

        let windows: Vec<Vec<PlanRequest>> = vec![
            vec![request(0), request(1)],
            vec![request(2)],
            vec![request(3), request(4), request(5)],
        ];
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for (w, reqs) in windows.iter().enumerate() {
            let now = w as f64;
            // Window 1 anchors a neighbour tip; both paths must embed it
            // identically (and drain it identically).
            if w == 1 {
                let tip = nwade_crypto::sha256(b"neighbour");
                serial.note_neighbor_tip(7, tip);
                piped.note_neighbor_tip(7, tip);
            }
            if let Some(ManagerAction::BroadcastBlock(b)) = serial.on_window(reqs, now) {
                expect.push(b);
            }
            if let Some(prepared) = piped.prepare_window(reqs, now) {
                pipeline.submit(prepared);
            }
            // Same-tick drain (the simulator's discipline): collect every
            // sealed block before the next window opens.
            for block in pipeline.drain() {
                let ManagerAction::BroadcastBlock(b) = piped.absorb_sealed(block) else {
                    panic!("absorb returns the broadcast");
                };
                got.push(b);
            }
        }
        assert_eq!(expect.len(), got.len());
        for (e, g) in expect.iter().zip(&got) {
            assert_eq!(e.hash(), g.hash());
            assert_eq!(e.signature(), g.signature());
            assert_eq!(e.index(), g.index());
            assert_eq!(e.anchors(), g.anchors());
        }
        assert_eq!(expect[1].anchors().len(), 1, "window 1 carries the anchor");
        assert_eq!(serial.chain_tip(), piped.chain_tip());
        assert_eq!(serial.chain_next_index(), piped.chain_next_index());
    }

    /// Cross-window overlap: submit several prepared windows before
    /// collecting any; sealing order (and thus the chain) still follows
    /// submission order.
    #[test]
    fn overlapped_submissions_seal_in_order() {
        let topo = topology();
        let mut m = manager(&topo);
        let mut pipeline = WindowPipeline::for_manager(&m);
        let mut prepared = Vec::new();
        for w in 0..4u64 {
            prepared.push(
                m.prepare_window(&[request(10 + w * 2), request(11 + w * 2)], w as f64)
                    .expect("window seals"),
            );
        }
        for p in prepared {
            pipeline.submit(p);
        }
        let blocks = pipeline.drain();
        assert_eq!(blocks.len(), 4);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.index(), i as u64);
            if i > 0 {
                assert_eq!(b.prev_hash(), blocks[i - 1].hash());
            }
        }
        assert_eq!(pipeline.in_flight(), 0);
    }

    /// try_collect never blocks and eventually observes each block.
    #[test]
    fn try_collect_is_nonblocking() {
        let topo = topology();
        let mut m = manager(&topo);
        let mut pipeline = WindowPipeline::for_manager(&m);
        assert!(pipeline.try_collect().is_empty());
        let prepared = m.prepare_window(&[request(0)], 0.0).expect("prepared");
        pipeline.submit(prepared);
        let mut got = pipeline.try_collect();
        while got.is_empty() {
            std::thread::yield_now();
            got = pipeline.try_collect();
        }
        assert_eq!(got.len(), 1);
        assert_eq!(pipeline.in_flight(), 0);
    }
}
