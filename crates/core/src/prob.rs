//! The paper's analytic probability models (Eq. 2 and Eq. 3).

/// Eq. 2: the probability `P_d` that the intersection manager identifies
/// a collusion attack on the majority vote, given `k` compromised
/// vehicles, per-vehicle compromise probability `p_v`, and the
/// regularization parameter `ω`:
///
/// ```text
/// P_d = 1 / e^{ω · k · p_v^k}
/// ```
///
/// `P_d` decreases as the number of colluders on one road segment grows,
/// but `p_v^k` shrinks much faster, so `P_d` stays near 1 for realistic
/// parameters.
///
/// # Panics
///
/// Panics unless `0 ≤ p_v ≤ 1` and `ω ≥ 0`.
pub fn detection_probability(k: u32, p_v: f64, omega: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_v), "p_v must be a probability");
    assert!(omega >= 0.0, "omega must be non-negative");
    (-omega * k as f64 * p_v.powi(k as i32)).exp()
}

/// Eq. 3: the probability `P_e` that a vehicle needs to self-evacuate,
/// given the manager-compromise probability `p_im`, the probability
/// `p_v_loc = p_v · p_loc` that a compromised vehicle is near the
/// location, and `k` vehicles the attacker must control to win a local
/// majority:
///
/// ```text
/// P_e = 1 − (1 − p_im)(1 − (p_v · p_loc)^k)
/// ```
///
/// # Panics
///
/// Panics unless both probabilities lie in `[0, 1]`.
pub fn self_evacuation_probability(p_im: f64, p_v_loc: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p_im), "p_im must be a probability");
    assert!(
        (0.0..=1.0).contains(&p_v_loc),
        "p_v·p_loc must be a probability"
    );
    1.0 - (1.0 - p_im) * (1.0 - p_v_loc.powi(k as i32))
}

/// The number of vehicles an attacker must control to win a simple
/// majority among `n` vehicles near the scene: `⌊n/2⌋ + 1`.
pub fn majority_quorum(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §IV-B4: p_v·p_loc = 10%, p_im = 0.1%, ~20 vehicles in range →
        // k = 11 to win the majority; P_e ≈ 0.1%.
        let k = majority_quorum(20) as u32;
        assert_eq!(k, 11);
        let pe = self_evacuation_probability(0.001, 0.1, k);
        assert!((pe - 0.001).abs() < 1e-6, "P_e = {pe}");
    }

    #[test]
    fn detection_probability_near_one_for_realistic_params() {
        // Even ω = 10 and p_v = 0.3: k = 5 colluders → p_v^5 ≈ 0.0024 →
        // P_d ≈ e^{-0.12} ≈ 0.89.
        let pd = detection_probability(5, 0.3, 10.0);
        assert!(pd > 0.85 && pd < 1.0, "P_d = {pd}");
        // k = 1 with tiny p_v: essentially certain detection.
        assert!(detection_probability(1, 0.01, 1.0) > 0.98);
    }

    #[test]
    fn detection_probability_monotonic_behaviour() {
        // For fixed small p_v, P_d first dips then recovers as k grows
        // (k·p_v^k peaks at small k and then vanishes).
        let p = |k| detection_probability(k, 0.5, 4.0);
        assert!(p(2) < p(0));
        assert!(p(12) > p(2), "large collusion becomes implausible");
        // Eq. 2 at k = 0 is exactly 1.
        assert_eq!(p(0), 1.0);
    }

    #[test]
    fn self_evacuation_bounds() {
        // Never below p_im: a compromised manager alone forces evacuation.
        for k in [1u32, 5, 11, 25] {
            let pe = self_evacuation_probability(0.001, 0.1, k);
            assert!(pe >= 0.001 - 1e-12);
            assert!(pe <= 1.0);
        }
        // k = 0 means the attacker already "controls" a majority of zero
        // vehicles: evacuation certain.
        assert_eq!(self_evacuation_probability(0.0, 0.1, 0), 1.0);
        // Certain manager compromise: P_e = 1.
        assert_eq!(self_evacuation_probability(1.0, 0.0, 5), 1.0);
    }

    #[test]
    fn self_evacuation_decreases_with_k() {
        let pe: Vec<f64> = (1..12)
            .map(|k| self_evacuation_probability(0.001, 0.1, k))
            .collect();
        assert!(pe.windows(2).all(|w| w[1] <= w[0] + 1e-15));
    }

    #[test]
    fn majority_quorums() {
        assert_eq!(majority_quorum(1), 1);
        assert_eq!(majority_quorum(2), 2);
        assert_eq!(majority_quorum(20), 11);
        assert_eq!(majority_quorum(21), 11);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = self_evacuation_probability(1.5, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_pv_panics() {
        let _ = detection_probability(3, -0.1, 1.0);
    }
}
