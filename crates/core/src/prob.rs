//! The paper's analytic probability models (Eq. 2 and Eq. 3).

/// Eq. 2: the probability `P_d` that the intersection manager identifies
/// a collusion attack on the majority vote, given `k` compromised
/// vehicles, per-vehicle compromise probability `p_v`, and the
/// regularization parameter `ω`:
///
/// ```text
/// P_d = 1 / e^{ω · k · p_v^k}
/// ```
///
/// `P_d` decreases as the number of colluders on one road segment grows,
/// but `p_v^k` shrinks much faster, so `P_d` stays near 1 for realistic
/// parameters.
///
/// # Panics
///
/// Panics unless `0 ≤ p_v ≤ 1` and `ω ≥ 0`.
pub fn detection_probability(k: u32, p_v: f64, omega: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_v), "p_v must be a probability");
    assert!(omega >= 0.0, "omega must be non-negative");
    (-omega * k as f64 * p_v.powi(k as i32)).exp()
}

/// Eq. 3: the probability `P_e` that a vehicle needs to self-evacuate,
/// given the manager-compromise probability `p_im`, the probability
/// `p_v_loc = p_v · p_loc` that a compromised vehicle is near the
/// location, and `k` vehicles the attacker must control to win a local
/// majority:
///
/// ```text
/// P_e = 1 − (1 − p_im)(1 − (p_v · p_loc)^k)
/// ```
///
/// # Panics
///
/// Panics unless both probabilities lie in `[0, 1]`.
pub fn self_evacuation_probability(p_im: f64, p_v_loc: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p_im), "p_im must be a probability");
    assert!(
        (0.0..=1.0).contains(&p_v_loc),
        "p_v·p_loc must be a probability"
    );
    1.0 - (1.0 - p_im) * (1.0 - p_v_loc.powi(k as i32))
}

/// The number of vehicles an attacker must control to win a simple
/// majority among `n` vehicles near the scene: `⌊n/2⌋ + 1`.
pub fn majority_quorum(n: usize) -> usize {
    n / 2 + 1
}

/// Deterministic Monte Carlo realization of the Eq. 2 generative model,
/// for validating [`detection_probability`] against a simulated process
/// rather than against its own formula.
///
/// The model behind Eq. 2: while a violation is exposed, the manager
/// gets `ω·k` independent watch opportunities; one opportunity is
/// *fooled* when all `k` colluders land in its comparison draw, which
/// happens with probability `p_v^k`; the attack is detected iff no
/// opportunity is fooled. The simulation draws each colluder's
/// compromise individually (`k` Bernoulli(`p_v`) draws per
/// opportunity), so the per-opportunity fooling probability arises
/// structurally instead of being fed in as a number — the measured rate
/// converges to `(1 − p_v^k)^{ω·k}`, which Eq. 2 approximates by
/// `exp(−ω·k·p_v^k)` (the Poisson limit of rare fooling events).
///
/// Randomness comes from a self-contained SplitMix64 stream seeded by
/// `seed`, so a given parameter point always measures the same rate —
/// callers get reproducible acceptance tests without a `rand`
/// dependency here.
///
/// # Panics
///
/// Panics unless `0 ≤ p_v ≤ 1`, `ω ≥ 0`, and `trials > 0`.
pub fn measured_detection_rate(k: u32, p_v: f64, omega: f64, trials: u32, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p_v), "p_v must be a probability");
    assert!(omega >= 0.0, "omega must be non-negative");
    assert!(trials > 0, "need at least one trial");
    let opportunities = (omega * f64::from(k)).round() as u32;
    let mut state = seed;
    let mut next_unit = move || {
        // SplitMix64: tiny, full-period, and plenty for Bernoulli draws.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut detections = 0u64;
    for _ in 0..trials {
        let mut fooled = false;
        for _ in 0..opportunities {
            let all_compromised = (0..k).all(|_| next_unit() < p_v);
            if all_compromised {
                fooled = true;
                // Keep draining the stream? No — per-trial draw counts
                // may differ, but trials are sequential on one stream,
                // so reproducibility is unaffected.
                break;
            }
        }
        if !fooled {
            detections += 1;
        }
    }
    detections as f64 / f64::from(trials)
}

/// Wilson score interval for a binomial proportion: the `z`-scaled
/// confidence bounds on the true rate behind `successes`/`trials`
/// observed Bernoulli outcomes. Unlike the normal approximation it
/// stays inside `[0, 1]` and behaves at the extremes, which matters
/// here because measured detection rates sit near 1.
///
/// # Panics
///
/// Panics when `trials` is zero or `successes > trials`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §IV-B4: p_v·p_loc = 10%, p_im = 0.1%, ~20 vehicles in range →
        // k = 11 to win the majority; P_e ≈ 0.1%.
        let k = majority_quorum(20) as u32;
        assert_eq!(k, 11);
        let pe = self_evacuation_probability(0.001, 0.1, k);
        assert!((pe - 0.001).abs() < 1e-6, "P_e = {pe}");
    }

    #[test]
    fn detection_probability_near_one_for_realistic_params() {
        // Even ω = 10 and p_v = 0.3: k = 5 colluders → p_v^5 ≈ 0.0024 →
        // P_d ≈ e^{-0.12} ≈ 0.89.
        let pd = detection_probability(5, 0.3, 10.0);
        assert!(pd > 0.85 && pd < 1.0, "P_d = {pd}");
        // k = 1 with tiny p_v: essentially certain detection.
        assert!(detection_probability(1, 0.01, 1.0) > 0.98);
    }

    #[test]
    fn detection_probability_monotonic_behaviour() {
        // For fixed small p_v, P_d first dips then recovers as k grows
        // (k·p_v^k peaks at small k and then vanishes).
        let p = |k| detection_probability(k, 0.5, 4.0);
        assert!(p(2) < p(0));
        assert!(p(12) > p(2), "large collusion becomes implausible");
        // Eq. 2 at k = 0 is exactly 1.
        assert_eq!(p(0), 1.0);
    }

    #[test]
    fn self_evacuation_bounds() {
        // Never below p_im: a compromised manager alone forces evacuation.
        for k in [1u32, 5, 11, 25] {
            let pe = self_evacuation_probability(0.001, 0.1, k);
            assert!(pe >= 0.001 - 1e-12);
            assert!(pe <= 1.0);
        }
        // k = 0 means the attacker already "controls" a majority of zero
        // vehicles: evacuation certain.
        assert_eq!(self_evacuation_probability(0.0, 0.1, 0), 1.0);
        // Certain manager compromise: P_e = 1.
        assert_eq!(self_evacuation_probability(1.0, 0.0, 5), 1.0);
    }

    #[test]
    fn self_evacuation_decreases_with_k() {
        let pe: Vec<f64> = (1..12)
            .map(|k| self_evacuation_probability(0.001, 0.1, k))
            .collect();
        assert!(pe.windows(2).all(|w| w[1] <= w[0] + 1e-15));
    }

    #[test]
    fn majority_quorums() {
        assert_eq!(majority_quorum(1), 1);
        assert_eq!(majority_quorum(2), 2);
        assert_eq!(majority_quorum(20), 11);
        assert_eq!(majority_quorum(21), 11);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = self_evacuation_probability(1.5, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_pv_panics() {
        let _ = detection_probability(3, -0.1, 1.0);
    }

    /// Statistical acceptance of Eq. 2: the measured Monte Carlo
    /// detection rate must agree with the analytic curve at several
    /// (watchers, attackers) points. Agreement means the analytic value
    /// falls inside the Wilson interval of the measurement, widened by
    /// the documented Poissonization slack (Eq. 2 is the `exp` limit of
    /// the exact `(1 − p_v^k)^{ω·k}` process the simulation realizes).
    /// Seeds are fixed, so the measured rates — and this test — are
    /// fully deterministic.
    #[test]
    fn eq2_matches_monte_carlo_within_wilson_interval() {
        const TRIALS: u32 = 4000;
        // (omega, k, p_v) spanning watcher counts 2..12 and one to four
        // attackers; chosen where the Poisson limit is tight (p_v^k
        // small) so model slack stays below the statistical noise.
        let points = [
            (2.0, 2, 0.1),
            (4.0, 2, 0.2),
            (6.0, 3, 0.3),
            (8.0, 2, 0.1),
            (10.0, 4, 0.3),
            (12.0, 3, 0.2),
            (12.0, 1, 0.02),
        ];
        for (i, &(omega, k, p_v)) in points.iter().enumerate() {
            let analytic = detection_probability(k, p_v, omega);
            let seed = 0x00D0_C0DE ^ (i as u64) << 8;
            let measured = measured_detection_rate(k, p_v, omega, TRIALS, seed);
            let successes = (measured * f64::from(TRIALS)).round() as u64;
            let (lo, hi) = wilson_interval(successes, u64::from(TRIALS), 2.576);
            // Absolute gap between the exact binomial process and the
            // exponential approximation at this point.
            let p_chain = p_v.powi(k as i32);
            let exact = (1.0 - p_chain).powf((omega * f64::from(k)).round());
            let slack = (exact - analytic).abs() + 1e-9;
            assert!(
                analytic >= lo - slack && analytic <= hi + slack,
                "ω={omega} k={k} p_v={p_v}: analytic {analytic:.4} outside \
                 Wilson [{lo:.4}, {hi:.4}] ± {slack:.4} (measured {measured:.4})"
            );
        }
    }

    #[test]
    fn measured_rate_is_deterministic_and_bounded() {
        let a = measured_detection_rate(3, 0.3, 6.0, 500, 42);
        let b = measured_detection_rate(3, 0.3, 6.0, 500, 42);
        assert_eq!(a, b, "same seed, same rate");
        assert!((0.0..=1.0).contains(&a));
        // Zero colluders: nothing can be fooled, detection certain.
        assert_eq!(measured_detection_rate(0, 0.5, 8.0, 100, 7), 1.0);
        // Certain compromise with opportunities: detection impossible.
        assert_eq!(measured_detection_rate(2, 1.0, 4.0, 100, 7), 0.0);
    }

    #[test]
    fn wilson_interval_shapes() {
        let (lo, hi) = wilson_interval(90, 100, 1.96);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.8 && hi < 0.96);
        // Degenerate proportions stay inside [0, 1].
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0);
        let (lo, hi) = wilson_interval(50, 50, 1.96);
        assert!(lo < 1.0);
        assert_eq!(hi, 1.0);
        // Wider z, wider interval.
        let narrow = wilson_interval(400, 500, 1.0);
        let wide = wilson_interval(400, 500, 3.0);
        assert!(wide.0 < narrow.0 && narrow.1 < wide.1);
    }
}
