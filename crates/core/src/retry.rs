//! [`Retrier`]: bounded retry with exponential backoff and jitter.
//!
//! The protocol layers all need the same shape of resilience against a
//! lossy channel: send a request, wait, resend with growing spacing, and
//! give up after a bounded number of attempts or a hard deadline. Before
//! this module each call site hand-rolled its own ad-hoc per-tick resend
//! (fixed 5 s plan re-requests, a fixed 2 s block-request rate limit,
//! fire-and-forget incident reports). The [`Retrier`] centralizes the
//! policy so the simulator's chaos experiments can reason about retry
//! storms and request deadlines uniformly.
//!
//! Jitter is deterministic: it is derived by hashing the retrier's salt
//! with the attempt number, so two runs with the same seed produce the
//! same schedule (a hard requirement for reproducible experiments), while
//! distinct vehicles (distinct salts) still desynchronize and avoid
//! thundering-herd resends after a shared outage.

/// When and how often to retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, seconds.
    pub base: f64,
    /// Multiplier applied to the delay after every attempt (≥ 1).
    pub factor: f64,
    /// Upper bound on the delay between attempts, seconds.
    pub max_backoff: f64,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Total attempts allowed (including the initial send).
    pub max_attempts: u32,
    /// Optional hard deadline, seconds after the retrier started; once
    /// passed, no further attempts fire.
    pub deadline: Option<f64>,
}

impl RetryPolicy {
    /// Validates the policy fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base > 0.0 && self.base.is_finite()) {
            return Err("retry base delay must be positive and finite".into());
        }
        if !(self.factor >= 1.0 && self.factor.is_finite()) {
            return Err("retry factor must be >= 1".into());
        }
        if !(self.max_backoff >= self.base && self.max_backoff.is_finite()) {
            return Err("max backoff must be >= base delay".into());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err("jitter must be in [0, 1)".into());
        }
        if self.max_attempts == 0 {
            return Err("max attempts must be at least 1".into());
        }
        if let Some(d) = self.deadline {
            if !(d > 0.0 && d.is_finite()) {
                return Err("deadline must be positive and finite".into());
            }
        }
        Ok(())
    }

    /// Plan requests: patient, because the manager may defer a vehicle
    /// across several windows even on a healthy network.
    pub fn plan_request() -> Self {
        RetryPolicy {
            base: 2.0,
            factor: 1.6,
            max_backoff: 8.0,
            jitter: 0.25,
            max_attempts: 16,
            deadline: None,
        }
    }

    /// Chain back-fill requests: quick first retry (a peer is usually one
    /// hop away), capped so gossip storms cannot amplify.
    pub fn block_backfill() -> Self {
        RetryPolicy {
            base: 2.0,
            factor: 2.0,
            max_backoff: 8.0,
            jitter: 0.2,
            max_attempts: 6,
            deadline: None,
        }
    }

    /// Incident-report resends: everything must happen inside the
    /// protocol's report timeout, after which the guard escalates to
    /// self-evacuation anyway (Algorithm 2, lines 11–13).
    pub fn report_submission(report_timeout: f64) -> Self {
        RetryPolicy {
            base: (report_timeout * 0.4).max(1e-3),
            factor: 1.5,
            max_backoff: report_timeout,
            jitter: 0.1,
            max_attempts: 3,
            deadline: Some(report_timeout),
        }
    }
}

/// The outcome of polling a [`Retrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Send (or resend) now; carries the attempt number (1-based).
    Fire(u32),
    /// Nothing to do yet; the next attempt is not due.
    Wait,
    /// Attempts or deadline exhausted; the caller should give up (and,
    /// when the request matters for safety, escalate).
    Exhausted,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tracks one logical request's retry schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrier {
    policy: RetryPolicy,
    started: f64,
    next_at: f64,
    attempts: u32,
    salt: u64,
}

impl Retrier {
    /// Creates a retrier whose first [`RetryDecision::Fire`] is due
    /// immediately (at or after `now`). `salt` individualizes the jitter
    /// schedule (e.g. the vehicle id).
    ///
    /// # Panics
    ///
    /// Panics when `policy` is invalid.
    pub fn new(policy: RetryPolicy, now: f64, salt: u64) -> Self {
        policy.validate().expect("retry policy must be valid");
        Retrier {
            policy,
            started: now,
            next_at: now,
            attempts: 0,
            salt,
        }
    }

    /// Creates a retrier for a request that was *already sent once* at
    /// `now` (the caller fired attempt 1 itself): the first poll waits
    /// for the first backoff instead of firing immediately.
    pub fn after_initial_send(policy: RetryPolicy, now: f64, salt: u64) -> Self {
        let mut r = Retrier::new(policy, now, salt);
        let _ = r.poll(now);
        r
    }

    /// Deterministic jitter factor in `[1 - j, 1 + j]` for an attempt.
    fn jitter_factor(&self, attempt: u32) -> f64 {
        if self.policy.jitter == 0.0 {
            return 1.0;
        }
        let h = splitmix64(self.salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
        1.0 + self.policy.jitter * (2.0 * unit - 1.0)
    }

    /// The backoff after `attempt` sends (attempt ≥ 1).
    fn backoff(&self, attempt: u32) -> f64 {
        let exp = self.policy.base * self.policy.factor.powi(attempt as i32 - 1);
        exp.min(self.policy.max_backoff) * self.jitter_factor(attempt)
    }

    /// Polls the schedule. Returns [`RetryDecision::Fire`] when an
    /// attempt is due (the caller must then actually send), `Wait` when
    /// between attempts, and `Exhausted` once attempts or the deadline
    /// are spent.
    pub fn poll(&mut self, now: f64) -> RetryDecision {
        if self.attempts >= self.policy.max_attempts {
            return RetryDecision::Exhausted;
        }
        if let Some(deadline) = self.policy.deadline {
            if now - self.started > deadline {
                return RetryDecision::Exhausted;
            }
        }
        if now < self.next_at {
            return RetryDecision::Wait;
        }
        self.attempts += 1;
        self.next_at = now + self.backoff(self.attempts);
        RetryDecision::Fire(self.attempts)
    }

    /// Attempts fired so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// `true` once no further attempt can ever fire.
    pub fn is_exhausted(&self, now: f64) -> bool {
        self.attempts >= self.policy.max_attempts
            || self.policy.deadline.is_some_and(|d| now - self.started > d)
    }

    /// Restarts the schedule for a fresh request at `now` (attempt
    /// counter and deadline reset; the next poll fires immediately).
    pub fn reset(&mut self, now: f64) {
        self.started = now;
        self.next_at = now;
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base: 1.0,
            factor: 2.0,
            max_backoff: 8.0,
            jitter: 0.0,
            max_attempts: 4,
            deadline: None,
        }
    }

    #[test]
    fn fires_immediately_then_backs_off_exponentially() {
        let mut r = Retrier::new(policy(), 0.0, 7);
        assert_eq!(r.poll(0.0), RetryDecision::Fire(1));
        // Backoff 1 s: not due at 0.5.
        assert_eq!(r.poll(0.5), RetryDecision::Wait);
        assert_eq!(r.poll(1.0), RetryDecision::Fire(2));
        // Backoff doubles to 2 s.
        assert_eq!(r.poll(2.5), RetryDecision::Wait);
        assert_eq!(r.poll(3.0), RetryDecision::Fire(3));
        // Then 4 s.
        assert_eq!(r.poll(7.0), RetryDecision::Fire(4));
        // Attempts exhausted.
        assert_eq!(r.poll(100.0), RetryDecision::Exhausted);
    }

    #[test]
    fn backoff_is_capped() {
        let mut p = policy();
        p.max_attempts = 10;
        p.max_backoff = 3.0;
        let mut r = Retrier::new(p, 0.0, 0);
        let mut t = 0.0;
        let mut gaps = Vec::new();
        let mut last_fire = None;
        while r.attempts() < 6 {
            if let RetryDecision::Fire(_) = r.poll(t) {
                if let Some(prev) = last_fire {
                    let gap: f64 = t - prev;
                    gaps.push(gap);
                }
                last_fire = Some(t);
            }
            t += 0.01;
        }
        assert!(gaps.iter().all(|g| *g <= 3.0 + 0.011), "gaps {gaps:?}");
    }

    #[test]
    fn deadline_cuts_off_attempts() {
        let mut p = policy();
        p.deadline = Some(1.5);
        let mut r = Retrier::new(p, 10.0, 0);
        assert_eq!(r.poll(10.0), RetryDecision::Fire(1));
        assert_eq!(r.poll(11.0), RetryDecision::Fire(2));
        assert_eq!(r.poll(12.0), RetryDecision::Exhausted);
        assert!(r.is_exhausted(12.0));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut p = policy();
        p.jitter = 0.3;
        let a = Retrier::new(p, 0.0, 42).backoff(1);
        let b = Retrier::new(p, 0.0, 42).backoff(1);
        assert_eq!(a, b, "same salt, same schedule");
        let c = Retrier::new(p, 0.0, 43).backoff(1);
        assert_ne!(a, c, "different salt, different schedule");
        for attempt in 1..=4 {
            let d = Retrier::new(p, 0.0, 42).backoff(attempt);
            let nominal = (p.base * p.factor.powi(attempt as i32 - 1)).min(p.max_backoff);
            assert!(d >= nominal * 0.7 - 1e-12 && d <= nominal * 1.3 + 1e-12);
        }
    }

    #[test]
    fn after_initial_send_waits_first() {
        let mut r = Retrier::after_initial_send(policy(), 5.0, 1);
        assert_eq!(r.attempts(), 1);
        assert_eq!(r.poll(5.0), RetryDecision::Wait);
        assert_eq!(r.poll(6.0), RetryDecision::Fire(2));
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut r = Retrier::new(policy(), 0.0, 0);
        let mut t = 100.0;
        while r.poll(t) != RetryDecision::Exhausted {
            t += 10.0; // past every backoff, so each poll fires
        }
        r.reset(200.0);
        assert_eq!(r.poll(200.0), RetryDecision::Fire(1));
    }

    #[test]
    fn invalid_policies_rejected() {
        let mut p = policy();
        p.base = 0.0;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.factor = 0.5;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.max_backoff = 0.5;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.jitter = 1.0;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.deadline = Some(f64::INFINITY);
        assert!(p.validate().is_err());
        for preset in [
            RetryPolicy::plan_request(),
            RetryPolicy::block_backfill(),
            RetryPolicy::report_submission(1.0),
        ] {
            preset.validate().expect("presets valid");
        }
    }
}
