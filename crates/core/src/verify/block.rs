//! Algorithm 1: full block verification on the vehicle side.
//!
//! Combines the cryptographic checks from `nwade-chain` (signature,
//! Merkle root, linkage) with the semantic checks: plans inside the
//! block must not conflict with each other, nor with the current plans
//! from previously received blocks (lines 4 and 9 of Algorithm 1).

use nwade_aim::{find_conflicts, TravelPlan};
use nwade_chain::{verify_link, Block, BlockError, ChainCache};
use nwade_crypto::SignatureScheme;
use nwade_intersection::Topology;
use nwade_traffic::VehicleId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why an incoming block was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockFailure {
    /// Signature / Merkle-root failure (Algorithm 1, line 2).
    Crypto(BlockError),
    /// The block does not chain onto the cached tip (line 7).
    Chain(BlockError),
    /// Plans within the block collide (line 4).
    InternalConflict(Vec<(VehicleId, VehicleId)>),
    /// Plans collide with current plans from earlier blocks (line 9).
    CrossBlockConflict(Vec<(VehicleId, VehicleId)>),
}

impl fmt::Display for BlockFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockFailure::Crypto(e) => write!(f, "cryptographic check failed: {e}"),
            BlockFailure::Chain(e) => write!(f, "chain linkage failed: {e}"),
            BlockFailure::InternalConflict(pairs) => {
                write!(f, "block contains {} conflicting plan pair(s)", pairs.len())
            }
            BlockFailure::CrossBlockConflict(pairs) => write!(
                f,
                "block conflicts with {} earlier plan pair(s)",
                pairs.len()
            ),
        }
    }
}

impl Error for BlockFailure {}

/// Runs Algorithm 1 on an incoming block against the vehicle's chain
/// cache. On success the caller appends the block to its cache.
///
/// The cache is taken mutably so the signature check can go through its
/// digest-keyed memo ([`ChainCache::verify_block_cached`]): a block
/// re-delivered to the same vehicle costs no second public-key
/// operation. Every *semantic* check — internal conflicts, linkage,
/// cross-block conflicts — still runs on every call, so the Algorithm 1
/// verdict is unchanged.
///
/// `known_threats` are vehicles this verifier knows to be off-plan —
/// confirmed malicious vehicles and peers that announced self-evacuation.
/// Their cached plans are stale by definition (that is *why* they are
/// threats), so the manager legitimately schedules across those plans'
/// reservations once the vehicles are gone; enforcing them would reject
/// honest post-evacuation blocks.
///
/// # Errors
///
/// Returns the first failed check, in the paper's order: signature →
/// internal conflicts → linkage → cross-block conflicts.
pub fn verify_incoming_block(
    block: &Block,
    cache: &mut ChainCache,
    verifier: &dyn SignatureScheme,
    topology: &Topology,
    conflict_gap: f64,
    known_threats: &std::collections::HashSet<VehicleId>,
) -> Result<(), BlockFailure> {
    // (i) Signature and Merkle root, memoised per (digest, signature).
    cache
        .verify_block_cached(block, verifier)
        .map_err(BlockFailure::Crypto)?;

    // (ii) Plans within the block must be mutually conflict-free.
    let internal = find_conflicts(block.plans(), topology, conflict_gap);
    if !internal.is_empty() {
        return Err(BlockFailure::InternalConflict(internal));
    }

    // (iii) The block must chain onto the cached tip.
    if let Some(tip) = cache.tip() {
        verify_link(tip, block).map_err(BlockFailure::Chain)?;
    }

    // (iv) Plans must not conflict with current plans from earlier
    // blocks. A vehicle re-planned in the new block supersedes its older
    // plan, so merge by vehicle id with the new block winning.
    let mut merged: HashMap<VehicleId, &TravelPlan> = HashMap::new();
    for plan in cache.current_plans() {
        if known_threats.contains(&plan.id()) {
            continue; // stale by definition
        }
        merged.insert(plan.id(), plan);
    }
    for plan in block.plans() {
        merged.insert(plan.id(), plan);
    }
    let merged_plans: Vec<TravelPlan> = merged.into_values().cloned().collect();
    let cross = find_conflicts(&merged_plans, topology, conflict_gap);
    if !cross.is_empty() {
        return Err(BlockFailure::CrossBlockConflict(cross));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
    use nwade_chain::{tamper, BlockPackager};
    use nwade_crypto::MockScheme;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    struct Fixture {
        topo: Arc<Topology>,
        scheme: Arc<MockScheme>,
        scheduler: ReservationScheduler,
        packager: BlockPackager,
        next_id: u64,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = Arc::new(build(
                IntersectionKind::FourWayCross,
                &GeometryConfig::default(),
            ));
            let scheme = Arc::new(MockScheme::from_seed(11));
            Fixture {
                scheduler: ReservationScheduler::new(topo.clone(), SchedulerConfig::default()),
                packager: BlockPackager::new(scheme.clone()),
                topo,
                scheme,
                next_id: 0,
            }
        }

        fn honest_block(&mut self, n: usize, now: f64) -> Block {
            let plans: Vec<TravelPlan> = (0..n)
                .flat_map(|i| {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.scheduler.schedule(
                        &[PlanRequest {
                            id: VehicleId::new(id),
                            descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
                            movement: MovementId::new(((id as usize * 7) % 16) as u16),
                            position_s: 0.0,
                            speed: 15.0,
                        }],
                        now + i as f64 * 4.0,
                    )
                })
                .collect();
            self.packager.package(plans, now)
        }
    }

    #[test]
    fn honest_blocks_verify_and_chain() {
        let mut fx = Fixture::new();
        let mut cache = ChainCache::new(10);
        for i in 0..3 {
            let block = fx.honest_block(3, i as f64 * 20.0);
            verify_incoming_block(
                &block,
                &mut cache,
                fx.scheme.as_ref(),
                &fx.topo,
                0.5,
                &Default::default(),
            )
            .expect("honest block accepted");
            cache.append(block).expect("chains");
        }
    }

    #[test]
    fn forged_signature_rejected() {
        let mut fx = Fixture::new();
        let mut cache = ChainCache::new(10);
        let block = tamper::forge_signature(&fx.honest_block(2, 0.0));
        let err = verify_incoming_block(
            &block,
            &mut cache,
            fx.scheme.as_ref(),
            &fx.topo,
            0.5,
            &Default::default(),
        )
        .expect_err("forgery detected");
        assert!(matches!(
            err,
            BlockFailure::Crypto(BlockError::BadSignature)
        ));
    }

    #[test]
    fn conflicting_plans_rejected_even_with_valid_signature() {
        let mut fx = Fixture::new();
        let mut cache = ChainCache::new(10);
        let honest = fx.honest_block(8, 0.0);
        let corrupted_plans = nwade_aim::corrupt::make_conflicting(honest.plans(), &fx.topo, 0.0)
            .expect("crossing traffic");
        // The compromised manager re-signs properly: crypto passes, the
        // conflict check must catch it.
        let evil = tamper::resign_with_plans(&honest, corrupted_plans, fx.scheme.as_ref());
        let err = verify_incoming_block(
            &evil,
            &mut cache,
            fx.scheme.as_ref(),
            &fx.topo,
            0.5,
            &Default::default(),
        )
        .expect_err("conflict detected");
        assert!(matches!(err, BlockFailure::InternalConflict(_)));
    }

    #[test]
    fn broken_chain_rejected() {
        let mut fx = Fixture::new();
        let mut cache = ChainCache::new(10);
        let b0 = fx.honest_block(2, 0.0);
        let b1 = fx.honest_block(2, 20.0);
        cache.append(b0).expect("first");
        let rehung = tamper::relink(&b1, nwade_crypto::Digest::ZERO);
        // Re-sign so only the linkage is wrong.
        let rehung =
            tamper::resign_with_plans(&rehung, rehung.plans().to_vec(), fx.scheme.as_ref());
        let err = verify_incoming_block(
            &rehung,
            &mut cache,
            fx.scheme.as_ref(),
            &fx.topo,
            0.5,
            &Default::default(),
        )
        .expect_err("link break detected");
        assert!(matches!(err, BlockFailure::Chain(BlockError::BrokenLink)));
    }

    #[test]
    fn cross_block_conflict_rejected() {
        let mut fx = Fixture::new();
        let mut cache = ChainCache::new(10);
        let b0 = fx.honest_block(4, 0.0);
        cache.append(b0.clone()).expect("first");
        // Second block: a fresh vehicle whose plan collides with a plan
        // from the first block (the manager equivocating across windows).
        let victim = &b0.plans()[0];
        let movement = fx.topo.movement(victim.movement());
        let same_profile = victim.profile().clone();
        let intruder = TravelPlan::new(
            VehicleId::new(999),
            VehicleDescriptor::random(&mut StdRng::seed_from_u64(999)),
            *victim.status(),
            victim.movement(),
            same_profile,
        );
        let _ = movement;
        let evil = tamper::resign_with_plans(
            &fx.honest_block(1, 20.0),
            vec![intruder],
            fx.scheme.as_ref(),
        );
        let err = verify_incoming_block(
            &evil,
            &mut cache,
            fx.scheme.as_ref(),
            &fx.topo,
            0.5,
            &Default::default(),
        )
        .expect_err("cross-block conflict detected");
        assert!(matches!(err, BlockFailure::CrossBlockConflict(_)));
    }

    #[test]
    fn replanned_vehicle_supersedes_its_old_plan() {
        let mut fx = Fixture::new();
        let mut cache = ChainCache::new(10);
        let b0 = fx.honest_block(3, 0.0);
        cache.append(b0.clone()).expect("first");
        // Re-plan vehicle 0 onto a profile that would conflict with its
        // OWN old plan (same cells, same-ish times). Because the new plan
        // supersedes the old one, verification must pass.
        let old = b0.plans()[0].clone();
        let shifted = nwade_geometry::MotionProfile::new(
            old.profile().start_time() + 0.3,
            old.profile().start_position(),
            old.profile().start_speed(),
            old.profile().segments().to_vec(),
        );
        let replanned = TravelPlan::new(
            old.id(),
            old.descriptor().clone(),
            *old.status(),
            old.movement(),
            shifted,
        );
        let block1 = fx.honest_block(1, 20.0);
        let mut plans = block1.plans().to_vec();
        plans.push(replanned);
        let resigned = tamper::resign_with_plans(&block1, plans, fx.scheme.as_ref());
        verify_incoming_block(
            &resigned,
            &mut cache,
            fx.scheme.as_ref(),
            &fx.topo,
            0.5,
            &Default::default(),
        )
        .expect("replanning accepted");
    }

    #[test]
    fn failure_display_messages() {
        let f = BlockFailure::InternalConflict(vec![(VehicleId::new(1), VehicleId::new(2))]);
        assert!(f.to_string().contains("1 conflicting"));
        let f = BlockFailure::Crypto(BlockError::BadSignature);
        assert!(f.to_string().contains("signature"));
    }
}
