//! Algorithm 3: global verification on the vehicle side.
//!
//! A vehicle receiving global reports decides whether to re-verify
//! locally, re-check the accused block, or — once enough *distinct*
//! senders accuse the same thing — self-evacuate.

use crate::messages::{GlobalClaim, GlobalReport};
use nwade_traffic::VehicleId;
use std::collections::{HashMap, HashSet};

/// What a vehicle should do in response to accumulated global reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalAction {
    /// Not enough evidence yet; keep driving.
    Ignore,
    /// Re-verify the accused block against the own cache (Algorithm 3,
    /// lines 2–5).
    VerifyBlock {
        /// The accused block index.
        index: u64,
    },
    /// The suspect is nearby: run local verification directly (line 8).
    LocalVerify {
        /// The accused vehicle.
        suspect: VehicleId,
    },
    /// The suspect is far away: analyze its path and wait for the count
    /// to reach the safety threshold (lines 10–12).
    AnalyzePath {
        /// The accused vehicle.
        suspect: VehicleId,
    },
    /// The safety threshold is reached: self-evacuate.
    SelfEvacuate,
    /// Enough independent dissents say the manager's evacuation alert
    /// was staged against an innocent vehicle: ignore the alert and keep
    /// driving (the attacker "can at most slow down the traffic for a
    /// short period", §V).
    DisregardAlert {
        /// The falsely accused vehicle.
        suspect: VehicleId,
    },
}

/// Accumulates global reports and applies the Algorithm 3 decision rules.
#[derive(Debug, Clone, Default)]
pub struct GlobalVerifier {
    /// Distinct senders per claim (a clique re-broadcasting does not
    /// inflate the count).
    senders: HashMap<GlobalClaim, HashSet<VehicleId>>,
}

impl GlobalVerifier {
    /// Creates an empty verifier.
    pub fn new() -> Self {
        GlobalVerifier::default()
    }

    /// Number of distinct senders backing `claim`.
    pub fn support(&self, claim: &GlobalClaim) -> usize {
        self.senders.get(claim).map_or(0, HashSet::len)
    }

    /// All claims currently tracked.
    pub fn claims(&self) -> Vec<GlobalClaim> {
        let mut v: Vec<GlobalClaim> = self.senders.keys().copied().collect();
        v.sort_by_key(|c| match c {
            GlobalClaim::ConflictingPlans { index } => (0, *index),
            GlobalClaim::AbnormalVehicle { suspect } => (1, suspect.raw()),
            GlobalClaim::WrongfulAccusation { suspect } => (2, suspect.raw()),
        });
        v
    }

    /// Ingests a report and returns the action Algorithm 3 prescribes
    /// for a vehicle whose own situation is described by `suspect_nearby`
    /// and the self-evacuation `threshold`.
    pub fn ingest(
        &mut self,
        report: &GlobalReport,
        suspect_nearby: impl Fn(VehicleId) -> bool,
        threshold: usize,
    ) -> GlobalAction {
        let senders = self.senders.entry(report.claim).or_default();
        let fresh = senders.insert(report.sender);
        let support = senders.len();
        match report.claim {
            GlobalClaim::ConflictingPlans { index } => {
                if support >= threshold {
                    GlobalAction::SelfEvacuate
                } else if fresh {
                    GlobalAction::VerifyBlock { index }
                } else {
                    GlobalAction::Ignore
                }
            }
            GlobalClaim::AbnormalVehicle { suspect } => {
                if suspect_nearby(suspect) {
                    GlobalAction::LocalVerify { suspect }
                } else if support >= threshold {
                    GlobalAction::SelfEvacuate
                } else if fresh {
                    GlobalAction::AnalyzePath { suspect }
                } else {
                    GlobalAction::Ignore
                }
            }
            GlobalClaim::WrongfulAccusation { suspect } => {
                // Enough independent dissents mean the manager staged an
                // evacuation against an innocent vehicle. The right
                // response is to disregard the staged alert and keep
                // driving, not to panic-evacuate.
                if support >= threshold {
                    GlobalAction::DisregardAlert { suspect }
                } else if fresh && suspect_nearby(suspect) {
                    GlobalAction::LocalVerify { suspect }
                } else {
                    GlobalAction::Ignore
                }
            }
        }
    }

    /// Clears tracked claims (after the threat resolves).
    pub fn reset(&mut self) {
        self.senders.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sender: u64, claim: GlobalClaim) -> GlobalReport {
        GlobalReport {
            sender: VehicleId::new(sender),
            claim,
            time: 0.0,
        }
    }

    const CONFLICT: GlobalClaim = GlobalClaim::ConflictingPlans { index: 4 };

    fn abnormal(suspect: u64) -> GlobalClaim {
        GlobalClaim::AbnormalVehicle {
            suspect: VehicleId::new(suspect),
        }
    }

    #[test]
    fn first_conflict_report_triggers_block_check() {
        let mut g = GlobalVerifier::new();
        let a = g.ingest(&report(1, CONFLICT), |_| false, 3);
        assert_eq!(a, GlobalAction::VerifyBlock { index: 4 });
        assert_eq!(g.support(&CONFLICT), 1);
    }

    #[test]
    fn duplicate_sender_does_not_inflate_support() {
        let mut g = GlobalVerifier::new();
        for _ in 0..10 {
            let a = g.ingest(&report(1, CONFLICT), |_| false, 3);
            assert_ne!(a, GlobalAction::SelfEvacuate);
        }
        assert_eq!(g.support(&CONFLICT), 1);
    }

    #[test]
    fn threshold_distinct_senders_forces_evacuation() {
        let mut g = GlobalVerifier::new();
        assert_eq!(
            g.ingest(&report(1, CONFLICT), |_| false, 3),
            GlobalAction::VerifyBlock { index: 4 }
        );
        assert_eq!(
            g.ingest(&report(2, CONFLICT), |_| false, 3),
            GlobalAction::VerifyBlock { index: 4 }
        );
        assert_eq!(
            g.ingest(&report(3, CONFLICT), |_| false, 3),
            GlobalAction::SelfEvacuate
        );
    }

    #[test]
    fn nearby_suspect_prompts_local_verification() {
        let mut g = GlobalVerifier::new();
        let a = g.ingest(&report(1, abnormal(7)), |s| s.raw() == 7, 3);
        assert_eq!(
            a,
            GlobalAction::LocalVerify {
                suspect: VehicleId::new(7)
            }
        );
    }

    #[test]
    fn far_suspect_prompts_path_analysis_then_evacuation() {
        let mut g = GlobalVerifier::new();
        assert_eq!(
            g.ingest(&report(1, abnormal(7)), |_| false, 2),
            GlobalAction::AnalyzePath {
                suspect: VehicleId::new(7)
            }
        );
        assert_eq!(
            g.ingest(&report(2, abnormal(7)), |_| false, 2),
            GlobalAction::SelfEvacuate
        );
    }

    #[test]
    fn claims_tracked_independently() {
        let mut g = GlobalVerifier::new();
        g.ingest(&report(1, CONFLICT), |_| false, 5);
        g.ingest(&report(2, abnormal(7)), |_| false, 5);
        g.ingest(&report(3, abnormal(8)), |_| false, 5);
        assert_eq!(g.claims().len(), 3);
        assert_eq!(g.support(&CONFLICT), 1);
        assert_eq!(g.support(&abnormal(7)), 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut g = GlobalVerifier::new();
        g.ingest(&report(1, CONFLICT), |_| false, 3);
        g.reset();
        assert_eq!(g.support(&CONFLICT), 0);
        assert!(g.claims().is_empty());
    }
}
