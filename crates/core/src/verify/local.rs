//! Algorithm 2: local (neighborhood-watch) verification.

use crate::messages::Observation;
use nwade_aim::TravelPlan;
use nwade_intersection::Topology;

/// The outcome of comparing a sensed neighbour against its plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalVerdict {
    /// The neighbour is where its plan says it should be.
    Consistent,
    /// The neighbour deviates beyond tolerance.
    Deviating {
        /// Distance between expected and sensed position, meters.
        position_error: f64,
        /// |expected − sensed| speed, m/s.
        speed_error: f64,
    },
}

impl LocalVerdict {
    /// `true` for [`LocalVerdict::Deviating`].
    pub fn is_deviating(&self) -> bool {
        matches!(self, LocalVerdict::Deviating { .. })
    }
}

/// Compares the expected status computed from `plan` with the sensed
/// `observation` (Algorithm 2, lines 6–9).
///
/// A deviation is flagged when the position error exceeds
/// `position_tolerance` **or** the speed error exceeds
/// `speed_tolerance`: a vehicle in the right place at the wrong speed is
/// about to be in the wrong place.
pub fn local_verify(
    plan: &TravelPlan,
    topology: &Topology,
    observation: &Observation,
    position_tolerance: f64,
    speed_tolerance: f64,
) -> LocalVerdict {
    debug_assert_eq!(plan.id(), observation.target, "plan/observation mismatch");
    let (expected_pos, expected_speed) = plan.expected_state(topology, observation.time);
    let position_error = expected_pos.distance(observation.position);
    let speed_error = (expected_speed - observation.speed).abs();
    if position_error > position_tolerance || speed_error > speed_tolerance {
        LocalVerdict::Deviating {
            position_error,
            speed_error,
        }
    } else {
        LocalVerdict::Consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_aim::VehicleStatus;
    use nwade_geometry::{MotionProfile, Vec2};
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::{VehicleDescriptor, VehicleId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (Topology, TravelPlan) {
        let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
        let path = topo.movement(MovementId::new(0)).path();
        let plan = TravelPlan::new(
            VehicleId::new(5),
            VehicleDescriptor::random(&mut StdRng::seed_from_u64(5)),
            VehicleStatus {
                position: path.point_at(0.0),
                speed: 10.0,
                heading: path.heading_at(0.0),
            },
            MovementId::new(0),
            MotionProfile::cruise(0.0, 10.0, path.length()),
        );
        (topo, plan)
    }

    fn observe(
        topo: &Topology,
        plan: &TravelPlan,
        t: f64,
        pos_err: f64,
        speed_err: f64,
    ) -> Observation {
        let (pos, speed) = plan.expected_state(topo, t);
        Observation {
            target: plan.id(),
            position: pos + Vec2::new(pos_err, 0.0),
            speed: speed + speed_err,
            time: t,
        }
    }

    #[test]
    fn compliant_vehicle_is_consistent() {
        let (topo, plan) = fixture();
        for t in [0.0, 5.0, 12.0, 20.0] {
            let obs = observe(&topo, &plan, t, 0.0, 0.0);
            assert_eq!(
                local_verify(&plan, &topo, &obs, 5.0, 3.0),
                LocalVerdict::Consistent
            );
        }
    }

    #[test]
    fn small_noise_tolerated() {
        let (topo, plan) = fixture();
        let obs = observe(&topo, &plan, 8.0, 2.0, 1.0);
        assert_eq!(
            local_verify(&plan, &topo, &obs, 5.0, 3.0),
            LocalVerdict::Consistent
        );
    }

    #[test]
    fn position_deviation_detected() {
        let (topo, plan) = fixture();
        let obs = observe(&topo, &plan, 8.0, 12.0, 0.0);
        let v = local_verify(&plan, &topo, &obs, 5.0, 3.0);
        assert!(v.is_deviating());
        if let LocalVerdict::Deviating { position_error, .. } = v {
            assert!((position_error - 12.0).abs() < 1e-9);
        }
    }

    #[test]
    fn speed_deviation_detected_even_in_place() {
        // A vehicle at the right spot but 8 m/s over plan speed.
        let (topo, plan) = fixture();
        let obs = observe(&topo, &plan, 8.0, 0.0, 8.0);
        assert!(local_verify(&plan, &topo, &obs, 5.0, 3.0).is_deviating());
    }

    #[test]
    fn stopped_vehicle_detected_as_time_passes() {
        let (topo, plan) = fixture();
        // The suspect stopped at its t=2 position; observe at t=6.
        let (stall_pos, _) = plan.expected_state(&topo, 2.0);
        let obs = Observation {
            target: plan.id(),
            position: stall_pos,
            speed: 0.0,
            time: 6.0,
        };
        let v = local_verify(&plan, &topo, &obs, 5.0, 3.0);
        assert!(v.is_deviating(), "40 m behind plan and 10 m/s slow");
    }

    #[test]
    fn tolerance_boundary_is_exclusive() {
        let (topo, plan) = fixture();
        let obs = observe(&topo, &plan, 4.0, 5.0, 0.0);
        assert_eq!(
            local_verify(&plan, &topo, &obs, 5.0, 3.0),
            LocalVerdict::Consistent,
            "exactly at tolerance is still tolerated"
        );
        let obs = observe(&topo, &plan, 4.0, 5.01, 0.0);
        assert!(local_verify(&plan, &topo, &obs, 5.0, 3.0).is_deviating());
    }
}
