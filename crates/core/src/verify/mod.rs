//! Algorithms 1–3: block, local, report and global verification.

pub mod block;
pub mod global;
pub mod local;
pub mod report;

pub use block::{verify_incoming_block, BlockFailure};
pub use global::{GlobalAction, GlobalVerifier};
pub use local::{local_verify, LocalVerdict};
pub use report::{ReportDecision, ReportVerification};
