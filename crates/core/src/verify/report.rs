//! IM-side report verification (§IV-B2, manager steps i–iii).
//!
//! On an incident report the manager polls a group of watchers around the
//! suspect. If the first group's majority confirms the anomaly, the
//! manager *both* starts evacuating (safety first) and polls a second,
//! disjoint group to double-check — this two-group design is what defeats
//! a colluding clique that dominates one road segment (Eq. 2 analysis).

use nwade_traffic::VehicleId;
use std::collections::HashSet;

/// The manager's conclusion about an incident report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportDecision {
    /// Still polling watchers.
    Pending,
    /// Majority confirmed: the suspect is malicious.
    Confirmed,
    /// Majority denied: false alarm; the reporter is recorded.
    FalseAlarm,
}

/// The state of one report's verification: two polling rounds with
/// disjoint watcher groups.
#[derive(Debug, Clone)]
pub struct ReportVerification {
    suspect: VehicleId,
    reporter: VehicleId,
    round: u8,
    polled: HashSet<VehicleId>,
    expected: usize,
    votes_abnormal: usize,
    votes_normal: usize,
    round1_confirmed: bool,
}

impl ReportVerification {
    /// Starts verification of `reporter`'s claim about `suspect`.
    pub fn new(reporter: VehicleId, suspect: VehicleId) -> Self {
        ReportVerification {
            suspect,
            reporter,
            round: 1,
            polled: HashSet::new(),
            expected: 0,
            votes_abnormal: 0,
            votes_normal: 0,
            round1_confirmed: false,
        }
    }

    /// The accused vehicle.
    pub fn suspect(&self) -> VehicleId {
        self.suspect
    }

    /// The reporting vehicle.
    pub fn reporter(&self) -> VehicleId {
        self.reporter
    }

    /// Current polling round (1 or 2).
    pub fn round(&self) -> u8 {
        self.round
    }

    /// Records the group being polled this round. Watchers already polled
    /// in round 1 are excluded from round 2 by [`ReportVerification::second_group`].
    pub fn begin_round(&mut self, group: &[VehicleId]) {
        self.expected = group.len();
        self.votes_abnormal = 0;
        self.votes_normal = 0;
        self.polled.extend(group.iter().copied());
    }

    /// Filters `candidates` down to watchers not polled in round 1 (the
    /// disjoint second group).
    pub fn second_group(&self, candidates: &[VehicleId]) -> Vec<VehicleId> {
        candidates
            .iter()
            .copied()
            .filter(|v| !self.polled.contains(v) && *v != self.suspect && *v != self.reporter)
            .collect()
    }

    /// Feeds one watcher verdict; returns the decision state after it.
    ///
    /// Round 1 majority-abnormal advances to round 2 (the caller then
    /// polls [`ReportVerification::second_group`] and calls
    /// [`ReportVerification::begin_round`] again); round 1
    /// majority-normal is a false alarm. Round 2 repeats the vote with
    /// the fresh group and decides for good.
    pub fn record_vote(&mut self, abnormal: bool) -> ReportDecision {
        if abnormal {
            self.votes_abnormal += 1;
        } else {
            self.votes_normal += 1;
        }
        self.evaluate()
    }

    /// A polled watcher could not observe the suspect at all: it abstains
    /// and shrinks the electorate (a "cannot see it" answer is not a
    /// "looks normal" vote).
    pub fn record_abstain(&mut self) -> ReportDecision {
        self.expected = self.expected.saturating_sub(1);
        if self.expected == 0 {
            // Nobody could check: act on the report for safety.
            return if self.round == 1 {
                self.round1_confirmed = true;
                self.round = 2;
                ReportDecision::Pending
            } else {
                ReportDecision::Confirmed
            };
        }
        self.evaluate()
    }

    fn evaluate(&mut self) -> ReportDecision {
        let quorum = self.expected / 2 + 1;
        if self.votes_abnormal >= quorum {
            if self.round == 1 {
                self.round1_confirmed = true;
                self.round = 2;
                ReportDecision::Pending
            } else {
                ReportDecision::Confirmed
            }
        } else if self.votes_normal >= quorum {
            ReportDecision::FalseAlarm
        } else if self.votes_abnormal + self.votes_normal >= self.expected {
            // Tie or exhausted group with no quorum: be conservative —
            // treat an exhausted round like its leaning; a dead tie falls
            // back to the reporter being wrong (majority benign world).
            if self.votes_abnormal > self.votes_normal {
                if self.round == 1 {
                    self.round1_confirmed = true;
                    self.round = 2;
                    ReportDecision::Pending
                } else {
                    ReportDecision::Confirmed
                }
            } else {
                ReportDecision::FalseAlarm
            }
        } else {
            ReportDecision::Pending
        }
    }

    /// Whether round 1 already confirmed (the manager starts evacuating
    /// while round 2 runs — the paper's "first enter the evacuation mode
    /// for safety concerns").
    pub fn round1_confirmed(&self) -> bool {
        self.round1_confirmed
    }

    /// Whether a watcher group is empty — with nobody else around the
    /// suspect, the manager falls back to trusting the report (the
    /// reporter is the only witness).
    pub fn no_watchers_available(&self) -> bool {
        self.expected == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<VehicleId> {
        range.map(VehicleId::new).collect()
    }

    fn feed(rv: &mut ReportVerification, votes: &[bool]) -> ReportDecision {
        let mut last = ReportDecision::Pending;
        for &v in votes {
            last = rv.record_vote(v);
            if last != ReportDecision::Pending {
                break;
            }
        }
        last
    }

    #[test]
    fn honest_majority_confirms_in_two_rounds() {
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&ids(1..6)); // 5 watchers
        assert_eq!(feed(&mut rv, &[true, true, true]), ReportDecision::Pending);
        assert!(rv.round1_confirmed());
        assert_eq!(rv.round(), 2);
        rv.begin_round(&ids(6..11));
        assert_eq!(
            feed(&mut rv, &[true, true, true]),
            ReportDecision::Confirmed
        );
    }

    #[test]
    fn honest_majority_dismisses_false_alarm_in_round_one() {
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&ids(1..6));
        assert_eq!(
            feed(&mut rv, &[false, true, false, false]),
            ReportDecision::FalseAlarm
        );
        assert!(!rv.round1_confirmed());
    }

    #[test]
    fn colluding_first_group_caught_by_second() {
        // 5 colluders dominate round 1; round 2's disjoint group is
        // honest... but wait — a *true* round-2 honest-majority says the
        // suspect is normal, which yields FalseAlarm. That is exactly the
        // two-group defence.
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&ids(1..6));
        assert_eq!(feed(&mut rv, &[true, true, true]), ReportDecision::Pending);
        rv.begin_round(&ids(6..11));
        assert_eq!(
            feed(&mut rv, &[false, false, false]),
            ReportDecision::FalseAlarm
        );
    }

    #[test]
    fn second_group_excludes_round_one_suspect_and_reporter() {
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&ids(1..6));
        let candidates = ids(0..100);
        let second = rv.second_group(&candidates);
        assert!(!second.contains(&VehicleId::new(0)), "reporter excluded");
        assert!(!second.contains(&VehicleId::new(99)), "suspect excluded");
        for v in ids(1..6) {
            assert!(!second.contains(&v), "round-1 watcher {v} excluded");
        }
        assert_eq!(second.len(), 100 - 1 - 5 - 1);
    }

    #[test]
    fn tie_defaults_to_false_alarm() {
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&ids(1..5)); // 4 watchers
        assert_eq!(
            feed(&mut rv, &[true, false, true, false]),
            ReportDecision::FalseAlarm
        );
    }

    #[test]
    fn exhausted_round_leaning_abnormal_advances() {
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&ids(1..4)); // 3 watchers
                                    // 2 abnormal reach the quorum (2 of 3).
        assert_eq!(feed(&mut rv, &[true, false, true]), ReportDecision::Pending);
        assert_eq!(rv.round(), 2);
    }

    #[test]
    fn empty_group_flagged() {
        let mut rv = ReportVerification::new(VehicleId::new(0), VehicleId::new(99));
        rv.begin_round(&[]);
        assert!(rv.no_watchers_available());
    }

    #[test]
    fn accessors() {
        let rv = ReportVerification::new(VehicleId::new(7), VehicleId::new(8));
        assert_eq!(rv.reporter().raw(), 7);
        assert_eq!(rv.suspect().raw(), 8);
        assert_eq!(rv.round(), 1);
    }
}
