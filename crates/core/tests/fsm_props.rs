//! Property tests over the Fig. 2 automata: arbitrary event sequences
//! never panic, never reach an undeclared state, and respect terminality.

use nwade::fsm::im::{ImEvent, ImState};
use nwade::fsm::vehicle::{VehicleEvent, VehicleState};
use proptest::prelude::*;

fn im_events() -> impl Strategy<Value = ImEvent> {
    prop_oneof![
        Just(ImEvent::RequestsReceived),
        Just(ImEvent::PlansGenerated),
        Just(ImEvent::BlockPackaged),
        Just(ImEvent::BlockDisseminated),
        Just(ImEvent::IncidentReportReceived),
        Just(ImEvent::ReportDismissed),
        Just(ImEvent::ThreatConfirmed),
        Just(ImEvent::ThreatCleared),
        Just(ImEvent::RecoveryComplete),
    ]
}

fn vehicle_events() -> impl Strategy<Value = VehicleEvent> {
    prop_oneof![
        Just(VehicleEvent::BlockReceived),
        Just(VehicleEvent::BlockValid),
        Just(VehicleEvent::BlockInvalid),
        Just(VehicleEvent::AnomalyDetected),
        Just(VehicleEvent::ReportSent),
        Just(VehicleEvent::AlarmDismissed),
        Just(VehicleEvent::EvacuationOrdered),
        Just(VehicleEvent::ImTimeout),
        Just(VehicleEvent::GlobalReportsReceived),
        Just(VehicleEvent::GlobalCheckPassed),
        Just(VehicleEvent::GlobalCheckFailed),
        Just(VehicleEvent::Exited),
    ]
}

proptest! {
    /// Driving the manager automaton with arbitrary events (absorbing
    /// rejections, as the engine does) keeps it within the seven states
    /// and never double-faults.
    #[test]
    fn im_fsm_total_under_absorption(events in proptest::collection::vec(im_events(), 0..60)) {
        let mut state = ImState::Standby;
        for e in events {
            if let Ok(next) = state.step(e) {
                state = next;
            }
            // Every reachable state is operational or explicitly not.
            let _ = state.is_operational();
        }
    }

    /// Same for the vehicle automaton; additionally, once `Left` is
    /// reached it is never left.
    #[test]
    fn vehicle_fsm_left_is_terminal(events in proptest::collection::vec(vehicle_events(), 0..60)) {
        let mut state = VehicleState::Preparation;
        let mut left_at: Option<usize> = None;
        for (i, e) in events.into_iter().enumerate() {
            if let Ok(next) = state.step(e) {
                state = next;
            }
            if state == VehicleState::Left && left_at.is_none() {
                left_at = Some(i);
            }
            if left_at.is_some() {
                prop_assert_eq!(state, VehicleState::Left);
            }
        }
    }

    /// Self-evacuation is absorbing except for exiting: no event returns
    /// the vehicle to a trusting state.
    #[test]
    fn self_evacuation_never_trusts_again(events in proptest::collection::vec(vehicle_events(), 0..60)) {
        let mut state = VehicleState::SelfEvacuation;
        for e in events {
            if let Ok(next) = state.step(e) {
                state = next;
            }
            prop_assert!(matches!(state, VehicleState::SelfEvacuation | VehicleState::Left));
        }
    }
}
