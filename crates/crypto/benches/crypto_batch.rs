//! Batch vs per-signature RSA verification.
//!
//! The batch verifier shares one Montgomery context per key and checks
//! the product test ∏ sᵢᵉ ≡ ∏ EM(mᵢ) (mod n) — one big comparison
//! instead of `n` independent exponentiations' worth of bookkeeping.
//! This bench pins the crossover: per-signature cost is flat, batch
//! cost amortizes, and the split-on-failure path (one corrupted item)
//! stays sublinear in re-verification work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwade_crypto::{sha256, Digest, RsaKeyPair, RsaScheme, SignatureScheme};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn signed_items(scheme: &RsaScheme, n: usize) -> Vec<(Digest, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let digest = sha256(&(i as u64).to_be_bytes());
            let sig = scheme.sign(&digest);
            (digest, sig)
        })
        .collect()
}

fn as_refs(items: &[(Digest, Vec<u8>)]) -> Vec<(Digest, &[u8])> {
    items.iter().map(|(d, s)| (*d, s.as_slice())).collect()
}

fn bench_batch_verify(c: &mut Criterion) {
    let scheme = RsaScheme::new(RsaKeyPair::generate(1024, &mut StdRng::seed_from_u64(42)));
    let mut group = c.benchmark_group("crypto_batch_verify");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let items = signed_items(&scheme, n);
        let pairs = as_refs(&items);
        group.bench_with_input(BenchmarkId::new("per_signature", n), &pairs, |b, pairs| {
            b.iter(|| pairs.iter().all(|(digest, sig)| scheme.verify(digest, sig)))
        });
        group.bench_with_input(BenchmarkId::new("batch", n), &pairs, |b, pairs| {
            b.iter(|| scheme.verify_batch(pairs).iter().all(|&ok| ok))
        });
        // Worst realistic case: one forged signature forces the
        // split-on-failure culprit search.
        let mut corrupted = items.clone();
        corrupted[n / 2].1[0] ^= 0x01;
        let pairs = as_refs(&corrupted);
        group.bench_with_input(BenchmarkId::new("batch_one_bad", n), &pairs, |b, pairs| {
            b.iter(|| scheme.verify_batch(pairs).iter().filter(|&&ok| !ok).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_verify);
criterion_main!(benches);
