//! Measures the crypto substrate at the paper's parameters: 2048-bit
//! keygen, CRT signing and verification (the costs behind Fig. 6).
//!
//! ```text
//! cargo run --release -p nwade-crypto --example rsa_speed
//! ```

use nwade_crypto::{sha256, RsaKeyPair, RsaSignature};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let t0 = Instant::now();
    let key = RsaKeyPair::generate(2048, &mut rng);
    println!("keygen 2048-bit:     {:>12?}", t0.elapsed());

    let digest = sha256(b"one travel-plan block");
    let reps = 20u32;

    let t = Instant::now();
    let mut sig = key.sign_digest(&digest);
    for _ in 1..reps {
        sig = key.sign_digest(&digest);
    }
    println!("sign (CRT), mean:    {:>12?}", t.elapsed() / reps);

    let t = Instant::now();
    for _ in 0..reps {
        sig = key.sign_digest_plain(&digest);
    }
    println!("sign (plain), mean:  {:>12?}", t.elapsed() / reps);

    let t = Instant::now();
    for _ in 0..reps {
        let ok = key
            .public_key()
            .verify_digest(&digest, &RsaSignature::from_bytes(sig.as_bytes().to_vec()));
        assert!(ok, "verification must succeed");
    }
    println!("verify, mean:        {:>12?}", t.elapsed() / reps);
}
