//! Amortized same-key RSA batch verification.
//!
//! A vehicle catching up on the chain — and the bench's saturation sweep —
//! verifies many signatures under the *one* intersection-manager key. Per
//! signature, plain verification pays a full `s^e mod n` exponentiation:
//! with `e = 65537` that is ~19 Montgomery multiplications plus the
//! into/out-of-form conversions. The batch product test instead checks
//!
//! ```text
//! (∏ sᵢ)^e  ≡  ∏ emᵢ   (mod n)
//! ```
//!
//! which holds whenever every sᵢ^e ≡ emᵢ does. Accumulating each side
//! costs two Montgomery multiplications per item, so a k-item batch does
//! ~2k + 19 multiplications instead of ~19k — all under the key's shared
//! [`Montgomery`](crate::modular::Montgomery) context (built once per key,
//! cached in the [`RsaPublicKey`]).
//!
//! **Failure handling.** When the aggregate test fails, the batch splits
//! in half and each half re-tests recursively; a singleton is verified
//! individually. A bad signature therefore never poisons its batch: the
//! culprit search pins exactly the failing items, and every verdict
//! equals what per-item [`RsaPublicKey::verify_digest`] would return
//! (pinned by the `batch_props` proptests). Items failing the structural
//! screen (wrong length, `s ≥ n`) are rejected before the math, exactly
//! as per-item verification rejects them.
//!
//! **Threat-model caveat.** The unblinded product test is a *fault*
//! check, not a proof against an adaptive signer: an adversary holding
//! two valid signatures can multiply one by `t` and the other by `t⁻¹`
//! so the product still matches while both items are individually
//! invalid. NWADE's verifier checks signatures produced by a single
//! manager key over digests the verifier recomputes itself, so the
//! relevant failure mode is corruption (transmission faults, tampered
//! bytes), which the product test catches except with probability
//! ~2⁻ⁿ. Deployments that must resist crafted cancellation pairs should
//! add verifier-secret blinding exponents (Bellare–Garay–Rabin small
//! exponents test) — at which point the amortization narrows to ~2× and
//! per-item verification is usually simpler.

use crate::modular::MontElem;
use crate::rsa::{encode_em, RsaPublicKey, RsaSignature};
use crate::sha256::Digest;
use crate::BigUint;
use std::collections::HashMap;

/// One structurally valid batch entry, carried in Montgomery form.
struct Item {
    /// Position in the caller's slice.
    index: usize,
    /// Signature residue `s`, in Montgomery form.
    s: MontElem,
    /// Expected EMSA-PKCS1-v1_5 encoding `em`, in Montgomery form.
    em: MontElem,
}

/// Verifies `(digest, signature)` pairs under `key`, returning one
/// verdict per item in input order. Verdicts are exactly those of
/// per-item [`RsaPublicKey::verify_digest`]; the accept set does not
/// depend on batch order (each item's verdict is a property of the item
/// alone).
pub fn verify_batch(key: &RsaPublicKey, items: &[(Digest, &[u8])]) -> Vec<bool> {
    let mut verdicts = vec![false; items.len()];
    // Hand-built even-modulus test keys: no Montgomery context, nothing
    // to amortize — defer to per-item verification.
    let Some(ctx) = key.montgomery() else {
        for (i, (digest, sig)) in items.iter().enumerate() {
            verdicts[i] = key.verify_digest(digest, &RsaSignature::from_bytes(sig.to_vec()));
        }
        return verdicts;
    };
    let k = key.modulus_len();
    let mut candidates = Vec::with_capacity(items.len());
    for (i, (digest, sig)) in items.iter().enumerate() {
        // Structural screen, mirroring verify_digest's pre-modexp checks.
        if sig.len() != k {
            continue;
        }
        let s = BigUint::from_bytes_be(sig);
        if &s >= key.modulus() {
            continue;
        }
        let em = BigUint::from_bytes_be(&encode_em(digest, k));
        candidates.push(Item {
            index: i,
            s: ctx.enter(&s),
            em: ctx.enter(&em),
        });
    }
    check_group(key, &candidates, &mut verdicts);
    verdicts
}

/// Product-tests one group, splitting on failure until the culprits are
/// isolated. Comparison happens in Montgomery form: equal residues have
/// equal canonical limb vectors.
fn check_group(key: &RsaPublicKey, group: &[Item], verdicts: &mut [bool]) {
    let ctx = key.montgomery().expect("caller checked the context exists");
    match group {
        [] => {}
        [item] => {
            verdicts[item.index] = ctx.pow(&item.s, key.exponent()) == item.em;
        }
        _ => {
            let mut s_prod = ctx.one();
            let mut em_prod = ctx.one();
            for item in group {
                s_prod = ctx.mul(&s_prod, &item.s);
                em_prod = ctx.mul(&em_prod, &item.em);
            }
            if ctx.pow(&s_prod, key.exponent()) == em_prod {
                for item in group {
                    verdicts[item.index] = true;
                }
            } else {
                let mid = group.len() / 2;
                check_group(key, &group[..mid], verdicts);
                check_group(key, &group[mid..], verdicts);
            }
        }
    }
}

/// A stateful batch verifier with an accepted-pair memo.
///
/// Re-deliveries (rebroadcasts, retries, history back-fill) hit the memo
/// and skip the math entirely. **Rejections are never cached**: a pair
/// that failed is re-verified on every submission, so a transiently
/// garbled delivery of an honest signature can still be accepted when the
/// clean copy arrives, and no attacker-chosen junk occupies memo space.
/// The memo is bounded and cleared wholesale when full, like the other
/// verification caches in this workspace.
pub struct BatchVerifier {
    key: RsaPublicKey,
    capacity: usize,
    accepted: HashMap<Digest, Vec<u8>>,
    hits: u64,
    verified: u64,
}

impl BatchVerifier {
    /// Wraps a public key with the default memo bound.
    pub fn new(key: RsaPublicKey) -> Self {
        BatchVerifier::with_capacity(key, 1024)
    }

    /// Wraps a public key, remembering at most `capacity` accepted pairs.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(key: RsaPublicKey, capacity: usize) -> Self {
        assert!(capacity > 0, "memo capacity must be positive");
        BatchVerifier {
            key,
            capacity,
            accepted: HashMap::new(),
            hits: 0,
            verified: 0,
        }
    }

    /// The key verified against.
    pub fn key(&self) -> &RsaPublicKey {
        &self.key
    }

    /// `(memo_hits, freshly_verified)` so far. Every item not served by
    /// the memo counts as freshly verified — including re-submissions of
    /// previously rejected pairs, which is how tests pin the
    /// "rejections are never cached" contract.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.verified)
    }

    /// Verifies a batch, serving memoized accepts without any math and
    /// batch-verifying the rest.
    pub fn verify_batch(&mut self, items: &[(Digest, &[u8])]) -> Vec<bool> {
        let mut verdicts = vec![false; items.len()];
        let mut miss_slots = Vec::new();
        let mut misses: Vec<(Digest, &[u8])> = Vec::new();
        for (i, (digest, sig)) in items.iter().enumerate() {
            if self.accepted.get(digest).is_some_and(|s| s == sig) {
                verdicts[i] = true;
                self.hits += 1;
            } else {
                miss_slots.push(i);
                misses.push((*digest, sig));
            }
        }
        let fresh = verify_batch(&self.key, &misses);
        self.verified += fresh.len() as u64;
        for ((slot, ok), (digest, sig)) in miss_slots.iter().zip(&fresh).zip(&misses) {
            verdicts[*slot] = *ok;
            if *ok {
                if self.accepted.len() >= self.capacity {
                    self.accepted.clear();
                }
                self.accepted.insert(*digest, sig.to_vec());
            }
        }
        verdicts
    }
}

impl std::fmt::Debug for BatchVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchVerifier")
            .field("key", &self.key)
            .field("accepted", &self.accepted.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use crate::sha256::sha256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn test_key() -> &'static RsaKeyPair {
        static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
        KEY.get_or_init(|| RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(21)))
    }

    fn signed(n: usize) -> (Vec<Digest>, Vec<Vec<u8>>) {
        let key = test_key();
        let digests: Vec<Digest> = (0..n).map(|i| sha256(&(i as u64).to_be_bytes())).collect();
        let sigs = digests
            .iter()
            .map(|d| key.sign_digest(d).as_bytes().to_vec())
            .collect();
        (digests, sigs)
    }

    fn pairs<'a>(digests: &[Digest], sigs: &'a [Vec<u8>]) -> Vec<(Digest, &'a [u8])> {
        digests
            .iter()
            .zip(sigs)
            .map(|(d, s)| (*d, s.as_slice()))
            .collect()
    }

    #[test]
    fn all_valid_batch_accepts_everything() {
        let (digests, sigs) = signed(8);
        let verdicts = verify_batch(test_key().public_key(), &pairs(&digests, &sigs));
        assert_eq!(verdicts, vec![true; 8]);
    }

    #[test]
    fn single_corrupt_item_is_isolated() {
        let (digests, mut sigs) = signed(8);
        sigs[3][10] ^= 0x40;
        let verdicts = verify_batch(test_key().public_key(), &pairs(&digests, &sigs));
        let expected: Vec<bool> = (0..8).map(|i| i != 3).collect();
        assert_eq!(verdicts, expected);
    }

    #[test]
    fn structural_rejects_match_per_item() {
        let key = test_key();
        let (digests, sigs) = signed(3);
        let short = sigs[1][1..].to_vec();
        let oversized = vec![0xffu8; key.public_key().modulus_len()]; // ≥ n
        let items: Vec<(Digest, &[u8])> = vec![
            (digests[0], sigs[0].as_slice()),
            (digests[1], short.as_slice()),
            (digests[2], oversized.as_slice()),
        ];
        assert_eq!(
            verify_batch(key.public_key(), &items),
            vec![true, false, false]
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(verify_batch(test_key().public_key(), &[]).is_empty());
    }

    #[test]
    fn memo_serves_accepts_but_not_rejects() {
        let (digests, mut sigs) = signed(4);
        sigs[2][0] ^= 0x01;
        let mut v = BatchVerifier::new(test_key().public_key().clone());
        let first = v.verify_batch(&pairs(&digests, &sigs));
        assert_eq!(first, vec![true, true, false, true]);
        assert_eq!(v.stats(), (0, 4));
        // Resubmit: the three accepts hit the memo, the reject is
        // re-verified from scratch.
        let second = v.verify_batch(&pairs(&digests, &sigs));
        assert_eq!(second, first);
        assert_eq!(v.stats(), (3, 5), "reject was never cached");
    }

    #[test]
    fn memo_is_bounded() {
        let (digests, sigs) = signed(6);
        let mut v = BatchVerifier::with_capacity(test_key().public_key().clone(), 4);
        v.verify_batch(&pairs(&digests, &sigs));
        // The memo was cleared wholesale at capacity; re-verifying is a
        // fresh pass for the evicted pairs but still all-accept.
        let again = v.verify_batch(&pairs(&digests, &sigs));
        assert_eq!(again, vec![true; 6]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = BatchVerifier::with_capacity(test_key().public_key().clone(), 0);
    }
}
