//! Arbitrary-precision unsigned integers with 32-bit limbs.
//!
//! Only the operations required by RSA and Miller–Rabin are provided.
//! Values are stored little-endian with no trailing zero limbs, so the
//! representation of every value is canonical and `Eq`/`Ord` are plain
//! lexicographic comparisons.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// An arbitrary-precision unsigned integer.
///
/// ```
/// use nwade_crypto::BigUint;
/// let a = BigUint::from_u64(1u64 << 40);
/// let b = BigUint::from_u64(12345);
/// assert_eq!((&a * &b).to_string(), "13573471044894720");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![(v & 0xffff_ffff) as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Constructs from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            acc |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Big-endian bytes without leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, asked to pad to {len}",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Constructs from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u32>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// The little-endian limbs.
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` when the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` when the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// The value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Shifts left by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Shifts right by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Checked subtraction: `None` when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(limbs))
    }

    /// Decimal string representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        // Repeated division by 10^9.
        let chunk = BigUint::from_u64(1_000_000_000);
        let mut n = self.clone();
        let mut parts: Vec<u32> = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.divrem(&chunk);
            parts.push(r.to_u64().expect("remainder < 10^9") as u32);
            n = q;
        }
        let mut s = parts.pop().expect("non-zero value").to_string();
        for p in parts.iter().rev() {
            s.push_str(&format!("{p:09}"));
        }
        s
    }

    /// Parses a decimal string.
    ///
    /// # Panics
    ///
    /// Panics on non-digit characters.
    pub fn from_decimal(s: &str) -> BigUint {
        let mut n = BigUint::zero();
        let ten = BigUint::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10).expect("decimal digit");
            n = &(&n * &ten) + &BigUint::from_u64(d as u64);
        }
        n
    }

    /// Division with remainder.
    ///
    /// # Panics
    ///
    /// Panics when `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem: u64 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            return (BigUint::from_limbs(q), BigUint::from_u64(rem));
        }
        self.divrem_knuth(divisor)
    }

    /// Knuth Algorithm D for multi-limb divisors.
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor
            .limbs
            .last()
            .expect("non-zero divisor")
            .leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un: Vec<u32> = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let b: u64 = 1 << 32;
        let mut q = vec![0u32; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let top = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= b || qhat * vn[n - 2] as u64 > ((rhat << 32) | un[j + n - 2] as u64) {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // Multiply-subtract.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let sub = (un[j + i] as i64) - ((p & 0xffff_ffff) as i64) - borrow;
                if sub < 0 {
                    un[j + i] = (sub + (1 << 32)) as u32;
                    borrow = 1;
                } else {
                    un[j + i] = sub as u32;
                    borrow = 0;
                }
            }
            let sub = (un[j + n] as i64) - (carry as i64) - borrow;
            if sub < 0 {
                // q̂ was one too large: add back.
                un[j + n] = (sub + (1 << 32)) as u32;
                qhat -= 1;
                let mut c: u64 = 0;
                for i in 0..n {
                    let s = un[j + i] as u64 + vn[i] as u64 + c;
                    un[j + i] = (s & 0xffff_ffff) as u32;
                    c = s >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(c as u32);
            } else {
                un[j + n] = sub as u32;
            }
            q[j] = qhat as u32;
        }
        let quotient = BigUint::from_limbs(q);
        let remainder = BigUint::from_limbs(un[..n].to_vec()).shr(shift);
        (quotient, remainder)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.divrem(modulus).1
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(longer.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..longer.limbs.len() {
            let s = longer.limbs[i] as u64 + *shorter.limbs.get(i).unwrap_or(&0) as u64 + carry;
            limbs.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        BigUint::from_limbs(limbs)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + limbs[i + j] as u64 + carry;
                limbs[i + j] = (t & 0xffff_ffff) as u32;
                carry = t >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let t = limbs[k] as u64 + carry;
                limbs[k] = (t & 0xffff_ffff) as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_len() <= 64 {
            write!(f, "BigUint({})", self.to_decimal())
        } else {
            write!(f, "BigUint({} bits)", self.bit_len())
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_normalization() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::from_limbs(vec![5, 0, 0]), BigUint::from_u64(5));
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 0]),
            BigUint::from_u64(256)
        );
    }

    #[test]
    fn byte_round_trip() {
        let cases: [&[u8]; 4] = [&[1], &[1, 2, 3, 4, 5], &[255; 9], &[0x80, 0, 0, 0, 0]];
        for bytes in cases {
            let n = BigUint::from_bytes_be(bytes);
            assert_eq!(n.to_bytes_be(), bytes);
        }
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "pad")]
    fn padding_too_small_panics() {
        let _ = BigUint::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn addition_with_carry_chains() {
        let a = BigUint::from_bytes_be(&[0xff; 8]); // 2^64 - 1
        let one = BigUint::one();
        let sum = &a + &one;
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(&sum - &one, a);
    }

    #[test]
    fn subtraction_and_underflow() {
        let a = BigUint::from_u64(100);
        let b = BigUint::from_u64(58);
        assert_eq!((&a - &b).to_u64(), Some(42));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(a.checked_sub(&a), Some(BigUint::zero()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::from_u64(1) - &BigUint::from_u64(2);
    }

    #[test]
    fn multiplication_small_and_large() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = &a * &a;
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expected = BigUint::from_decimal("340282366920938463426481119284349108225");
        assert_eq!(sq, expected);
        assert_eq!(&BigUint::zero() * &a, BigUint::zero());
    }

    #[test]
    fn shifts() {
        let n = BigUint::from_u64(0b1011);
        assert_eq!(n.shl(4).to_u64(), Some(0b1011_0000));
        assert_eq!(n.shl(100).shr(100), n);
        assert_eq!(n.shr(10), BigUint::zero());
        assert_eq!(BigUint::zero().shl(50), BigUint::zero());
    }

    #[test]
    fn bit_access_and_len() {
        let n = BigUint::from_u64(0b1010_0000_0000_0000_0000_0000_0000_0000_0001);
        assert!(n.bit(0));
        assert!(!n.bit(1));
        assert_eq!(n.bit_len(), 36);
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert!(!n.bit(1000));
    }

    #[test]
    fn division_by_single_limb() {
        let n = BigUint::from_decimal("123456789012345678901234567890");
        let (q, r) = n.divrem(&BigUint::from_u64(97));
        assert_eq!(&(&q * &BigUint::from_u64(97)) + &r, n);
        assert!(r < BigUint::from_u64(97));
    }

    #[test]
    fn division_multi_limb_knuth() {
        let a = BigUint::from_decimal("340282366920938463463374607431768211456123456789");
        let b = BigUint::from_decimal("18446744073709551629"); // prime > 2^64
        let (q, r) = a.divrem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_equal_and_smaller() {
        let a = BigUint::from_u64(1000);
        let (q, r) = a.divrem(&a);
        assert!(q.is_one() && r.is_zero());
        let (q, r) = BigUint::from_u64(5).divrem(&a);
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().divrem(&BigUint::zero());
    }

    #[test]
    fn knuth_add_back_case() {
        // Constructed to exercise the rare "add back" branch: dividend with
        // pattern that makes q̂ overestimate.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000, 0x7fff_ffff]);
        let v = BigUint::from_limbs(vec![1, 0, 0x8000_0000]);
        let (q, r) = u.divrem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890123456789",
        ] {
            assert_eq!(BigUint::from_decimal(s).to_decimal(), s);
        }
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(500);
        let c = BigUint::from_decimal("123456789012345678901");
        assert!(a < b && b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::from_u64(7).is_even());
        assert!(BigUint::from_u64(8).is_even());
    }

    #[test]
    fn debug_display() {
        assert_eq!(format!("{:?}", BigUint::from_u64(42)), "BigUint(42)");
        let big = BigUint::one().shl(100);
        assert_eq!(format!("{big:?}"), "BigUint(101 bits)");
        assert_eq!(format!("{}", BigUint::from_u64(7)), "7");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u32>(), 0..max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn add_sub_round_trip(a in arb_biguint(12), b in arb_biguint(12)) {
            let sum = &a + &b;
            prop_assert_eq!(&sum - &b, a.clone());
            prop_assert_eq!(&sum - &a, b);
        }

        #[test]
        fn mul_matches_repeated_add_small(a in arb_biguint(6), k in 0u64..50) {
            let kb = BigUint::from_u64(k);
            let prod = &a * &kb;
            let mut acc = BigUint::zero();
            for _ in 0..k {
                acc = &acc + &a;
            }
            prop_assert_eq!(prod, acc);
        }

        #[test]
        fn divrem_invariant(a in arb_biguint(12), b in arb_biguint(6)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.divrem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn shift_round_trip(a in arb_biguint(8), s in 0usize..200) {
            prop_assert_eq!(a.shl(s).shr(s), a);
        }

        #[test]
        fn bytes_round_trip(a in arb_biguint(12)) {
            prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
        }

        #[test]
        fn decimal_round_trip_prop(a in arb_biguint(8)) {
            prop_assert_eq!(BigUint::from_decimal(&a.to_decimal()), a);
        }

        #[test]
        fn mul_commutative(a in arb_biguint(8), b in arb_biguint(8)) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn mul_distributes_over_add(a in arb_biguint(6), b in arb_biguint(6), c in arb_biguint(6)) {
            let lhs = &a * &(&b + &c);
            let rhs = &(&a * &b) + &(&a * &c);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
