//! From-scratch cryptographic substrate for the NWADE reproduction.
//!
//! The paper's travel-plan blockchain uses SHA-256 block hashes and a
//! 2048-bit signing key held by the intersection manager (§VI-A). No
//! third-party cryptography crates are on this workspace's sanctioned
//! dependency list, so this crate implements everything needed from first
//! principles:
//!
//! * [`sha256`](mod@sha256) — the FIPS 180-4 SHA-256 compression function,
//! * [`bigint`] — arbitrary-precision unsigned integers (32-bit limbs),
//! * [`modular`] — division, plain and Montgomery modular exponentiation,
//! * [`prime`] — Miller–Rabin probabilistic primality and prime generation,
//! * [`rsa`] — RSA key generation, PKCS#1 v1.5-style signing/verification
//!   with CRT acceleration,
//! * [`merkle`] — the hash tree whose root `R_i` anchors each block's
//!   travel plans (Eq. 1), with inclusion proofs,
//! * [`signature`] — a scheme abstraction so simulations can swap the real
//!   RSA signer for a cheap mock when crypto cost is not under test,
//! * [`batch`] — amortized same-key RSA batch verification (product test
//!   with a split-on-failure culprit search).
//!
//! This code is written for clarity and testability, **not** for
//! production security use: it is not constant-time and has seen no
//! side-channel hardening. It exists to reproduce the paper's measured
//! behaviour faithfully.

#![forbid(unsafe_code)]

pub mod batch;
pub mod bigint;
pub mod merkle;
pub mod modular;
pub mod prime;
pub mod rsa;
pub mod sha256;
pub mod signature;

pub use batch::BatchVerifier;
pub use bigint::BigUint;
pub use merkle::{MerkleProof, MerkleTree};
pub use rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
pub use sha256::{sha256, Digest, Sha256};
pub use signature::{CachingVerifier, MockScheme, RsaScheme, SignatureScheme};
