//! Merkle hash trees over travel plans.
//!
//! Each block of the travel-plan blockchain carries the root `R_i` of a
//! hash tree whose leaves are the travel plans generated in one processing
//! window (Eq. 1 / Fig. 3 of the paper). The tree lets a vehicle hand a
//! single plan plus an inclusion proof to a peer without shipping the
//! whole batch.
//!
//! Leaf and interior hashes are domain-separated (`0x00` / `0x01`
//! prefixes) so an interior node can never be confused with a leaf.

use crate::sha256::{Digest, Sha256};

/// Hashes a leaf payload with the leaf domain tag.
pub fn leaf_hash(data: &[u8]) -> Digest {
    Sha256::new().chain(&[0x00]).chain(data).finalize()
}

/// Hashes two child digests with the interior domain tag.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    Sha256::new()
        .chain(&[0x01])
        .chain(left.as_bytes())
        .chain(right.as_bytes())
        .finalize()
}

/// A Merkle tree retaining all levels for proof extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf row; the last level has exactly one node.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: sibling hashes from leaf to root with the side each
/// sibling sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// `(sibling, sibling_is_left)` pairs from the leaf level upward.
    pub siblings: Vec<(Digest, bool)>,
}

impl MerkleTree {
    /// Builds a tree over pre-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics when `leaves` is empty: a block always contains at least one
    /// travel plan.
    pub fn from_leaf_hashes(leaves: Vec<Digest>) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                // Odd node is paired with itself.
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Builds a tree over raw leaf payloads (hashing each with
    /// [`leaf_hash`]).
    pub fn from_leaves<T: AsRef<[u8]>>(payloads: &[T]) -> Self {
        MerkleTree::from_leaf_hashes(payloads.iter().map(|p| leaf_hash(p.as_ref())).collect())
    }

    /// The tree root.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The leaf hashes.
    pub fn leaves(&self) -> &[Digest] {
        &self.levels[0]
    }

    /// Appends one leaf hash, recomputing only the right spine —
    /// O(log n) per append instead of the O(n) full rebuild. The tree is
    /// at every moment identical to `from_leaf_hashes` over the same
    /// leaves, so a caller accumulating a processing window can read a
    /// running root (and proofs) after each plan arrives.
    pub fn push_leaf(&mut self, leaf: Digest) {
        self.levels[0].push(leaf);
        let mut k = 0;
        while self.levels[k].len() > 1 {
            // The appended child changed (only) the last parent at this
            // level; recompute it, growing the parent row or the tree
            // height where needed.
            let parent_idx = (self.levels[k].len() - 1) / 2;
            let left = self.levels[k][2 * parent_idx];
            let right = self.levels[k]
                .get(2 * parent_idx + 1)
                .copied()
                .unwrap_or(left);
            let parent = node_hash(&left, &right);
            if self.levels.len() == k + 1 {
                self.levels.push(vec![parent]);
            } else {
                let row = &mut self.levels[k + 1];
                if row.len() == parent_idx {
                    row.push(parent);
                } else {
                    row[parent_idx] = parent;
                }
            }
            k += 1;
        }
    }

    /// Appends a raw leaf payload (hashing it with [`leaf_hash`]).
    pub fn push(&mut self, payload: &[u8]) {
        self.push_leaf(leaf_hash(payload));
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut siblings = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = i ^ 1;
            // Odd tail nodes are their own sibling.
            let sibling = level.get(sibling_idx).copied().unwrap_or(level[i]);
            let sibling_is_left = sibling_idx < i;
            siblings.push((sibling, sibling_is_left));
            i /= 2;
        }
        MerkleProof {
            leaf_index: index,
            siblings,
        }
    }
}

impl MerkleProof {
    /// Verifies that `leaf` hashes up to `root` through this proof.
    pub fn verify(&self, leaf: &Digest, root: &Digest) -> bool {
        let mut acc = *leaf;
        for (sibling, sibling_is_left) in &self.siblings {
            acc = if *sibling_is_left {
                node_hash(sibling, &acc)
            } else {
                node_hash(&acc, sibling)
            };
        }
        acc == *root
    }

    /// Verifies a raw payload rather than a precomputed leaf hash.
    pub fn verify_payload(&self, payload: &[u8], root: &Digest) -> bool {
        self.verify(&leaf_hash(payload), root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("plan-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let t = MerkleTree::from_leaves(&payloads(1));
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.root(), leaf_hash(b"plan-0"));
        let proof = t.prove(0);
        assert!(proof.siblings.is_empty());
        assert!(proof.verify_payload(b"plan-0", &t.root()));
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100] {
            let ps = payloads(n);
            let t = MerkleTree::from_leaves(&ps);
            for (i, p) in ps.iter().enumerate() {
                let proof = t.prove(i);
                assert!(
                    proof.verify_payload(p, &t.root()),
                    "proof failed for leaf {i}/{n}"
                );
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_payload() {
        let ps = payloads(8);
        let t = MerkleTree::from_leaves(&ps);
        let proof = t.prove(3);
        assert!(!proof.verify_payload(b"plan-4", &t.root()));
        assert!(!proof.verify_payload(b"forged", &t.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let t1 = MerkleTree::from_leaves(&payloads(8));
        let t2 = MerkleTree::from_leaves(&payloads(9));
        let proof = t1.prove(0);
        assert!(!proof.verify_payload(b"plan-0", &t2.root()));
    }

    #[test]
    fn proof_for_wrong_position_fails() {
        let ps = payloads(8);
        let t = MerkleTree::from_leaves(&ps);
        let proof = t.prove(2);
        // Leaf 3's payload with leaf 2's proof must not verify.
        assert!(!proof.verify_payload(b"plan-3", &t.root()));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = MerkleTree::from_leaves(&payloads(10));
        for i in 0..10 {
            let mut ps = payloads(10);
            ps[i] = b"mutated".to_vec();
            let mutated = MerkleTree::from_leaves(&ps);
            assert_ne!(base.root(), mutated.root(), "leaf {i} mutation undetected");
        }
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf whose payload equals the concatenation of two digests must
        // not collide with their interior node.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(leaf_hash(&concat), node_hash(&a, &b));
    }

    #[test]
    fn incremental_append_matches_batch_build() {
        let ps = payloads(50);
        let mut tree = MerkleTree::from_leaves(&ps[..1]);
        for (n, p) in ps.iter().enumerate().skip(1) {
            tree.push(p);
            let batch = MerkleTree::from_leaves(&ps[..=n]);
            assert_eq!(tree, batch, "divergence after {} leaves", n + 1);
        }
    }

    #[test]
    fn proofs_verify_after_incremental_appends() {
        let ps = payloads(9);
        let mut tree = MerkleTree::from_leaves(&ps[..1]);
        for p in &ps[1..] {
            tree.push(p);
        }
        for (i, p) in ps.iter().enumerate() {
            assert!(tree.prove(i).verify_payload(p, &tree.root()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::from_leaves::<Vec<u8>>(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prove_out_of_range_panics() {
        let t = MerkleTree::from_leaves(&payloads(3));
        let _ = t.prove(3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every leaf of every tree proves against the root; mutated
        /// payloads never do.
        #[test]
        fn proofs_sound_and_complete(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40), 1..40),
            mutate_byte in any::<u8>(),
        ) {
            let t = MerkleTree::from_leaves(&payloads);
            for (i, p) in payloads.iter().enumerate() {
                let proof = t.prove(i);
                prop_assert!(proof.verify_payload(p, &t.root()));
                let mut bad = p.clone();
                bad.push(mutate_byte);
                prop_assert!(!proof.verify_payload(&bad, &t.root()));
            }
        }
    }
}
