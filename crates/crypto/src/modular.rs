//! Modular arithmetic: exponentiation (plain and Montgomery) and
//! modular inverse.

use crate::BigUint;

/// `base^exp mod modulus`.
///
/// Uses Montgomery multiplication when the modulus is odd (the common RSA
/// case) and falls back to division-based square-and-multiply otherwise.
///
/// # Panics
///
/// Panics when `modulus` is zero.
pub fn modpow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "modpow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if modulus.is_even() {
        modpow_plain(base, exp, modulus)
    } else {
        Montgomery::new(modulus).modpow(base, exp)
    }
}

/// Division-based square-and-multiply, correct for any modulus.
pub fn modpow_plain(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "modpow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let mut acc = base.rem(modulus);
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = (&result * &acc).rem(modulus);
        }
        acc = (&acc * &acc).rem(modulus);
    }
    result
}

/// Modular inverse: the `x` with `a·x ≡ 1 (mod m)`, or `None` when
/// `gcd(a, m) ≠ 1`.
///
/// ```
/// use nwade_crypto::{modular::mod_inverse, BigUint};
/// let inv = mod_inverse(&BigUint::from_u64(3), &BigUint::from_u64(11));
/// assert_eq!(inv.and_then(|i| i.to_u64()), Some(4)); // 3·4 ≡ 1 (mod 11)
/// ```
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    // Extended Euclid with signed Bézout coefficient tracked as
    // (magnitude, is_negative).
    let mut old_r = a.rem(m);
    let mut r = m.clone();
    let mut old_s = (BigUint::one(), false);
    let mut s = (BigUint::zero(), false);
    while !r.is_zero() {
        let (q, rem) = old_r.divrem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let qs = &q * &s.0;
        // new_s = old_s - q*s  (signed)
        let new_s = signed_sub(&old_s, &(qs, s.1));
        old_s = std::mem::replace(&mut s, new_s);
    }
    if !old_r.is_one() {
        return None;
    }
    let (mag, neg) = old_s;
    let mag = mag.rem(m);
    Some(if neg && !mag.is_zero() {
        m.checked_sub(&mag).expect("mag < m after reduction")
    } else {
        mag
    })
}

/// `a - b` on sign-magnitude pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => match a.0.checked_sub(&b.0) {
            Some(d) => (d, false),
            None => (&b.0 - &a.0, true),
        },
        // a - (-b) = a + b
        (false, true) => (&a.0 + &b.0, false),
        // -a - b = -(a + b)
        (true, false) => (&a.0 + &b.0, true),
        // -a - (-b) = b - a
        (true, true) => match b.0.checked_sub(&a.0) {
            Some(d) => (d, false),
            None => (&a.0 - &b.0, true),
        },
    }
}

/// A residue held in Montgomery form (`x·R mod n`) for one
/// [`Montgomery`] context. Opaque: produced by [`Montgomery::enter`] /
/// [`Montgomery::one`], combined with [`Montgomery::mul`] /
/// [`Montgomery::pow`], and read back with [`Montgomery::exit`].
/// Elements are only meaningful within the context that created them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontElem(Vec<u32>);

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Exponentiation through this context avoids per-step division, which is
/// what keeps 2048-bit RSA signing within the paper's timing envelope.
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: Vec<u32>,
    n0_inv: u32,
    /// R² mod n, used to convert into Montgomery form.
    r2: BigUint,
    modulus: BigUint,
}

impl Montgomery {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics when `modulus` is even or < 2 (Montgomery requires odd).
    pub fn new(modulus: &BigUint) -> Self {
        assert!(
            !modulus.is_even() && !modulus.is_one() && !modulus.is_zero(),
            "Montgomery modulus must be odd and > 1"
        );
        let n = modulus.limbs().to_vec();
        let n0_inv = inv_limb(n[0]);
        let l = n.len();
        let r2 = BigUint::one().shl(64 * l).rem(modulus);
        Montgomery {
            n,
            n0_inv,
            r2,
            modulus: modulus.clone(),
        }
        .validate()
    }

    fn validate(self) -> Self {
        debug_assert_eq!(
            self.n[0].wrapping_mul(self.n0_inv),
            u32::MAX, // n[0] * (-n^{-1}) ≡ -1 (mod 2^32)
        );
        self
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// CIOS Montgomery product: `a·b·R⁻¹ mod n` for limb vectors already
    /// reduced below n.
    // Index-based inner loops keep the carry chains legible; iterator
    // rewrites obscure the CIOS structure.
    #[allow(clippy::needless_range_loop)]
    fn mont_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let l = self.n.len();
        let mut t = vec![0u32; l + 2];
        for i in 0..l {
            let ai = *a.get(i).unwrap_or(&0) as u64;
            // t += a[i] * b
            let mut carry: u64 = 0;
            for j in 0..l {
                let sum = t[j] as u64 + ai * *b.get(j).unwrap_or(&0) as u64 + carry;
                t[j] = (sum & 0xffff_ffff) as u32;
                carry = sum >> 32;
            }
            let sum = t[l] as u64 + carry;
            t[l] = (sum & 0xffff_ffff) as u32;
            t[l + 1] = t[l + 1].wrapping_add((sum >> 32) as u32);
            // m = t[0] * n0_inv mod 2^32; t += m * n; t >>= 32
            let m = (t[0].wrapping_mul(self.n0_inv)) as u64;
            let first = t[0] as u64 + m * self.n[0] as u64;
            debug_assert_eq!(first & 0xffff_ffff, 0);
            let mut carry: u64 = first >> 32;
            for j in 1..l {
                let sum = t[j] as u64 + m * self.n[j] as u64 + carry;
                t[j - 1] = (sum & 0xffff_ffff) as u32;
                carry = sum >> 32;
            }
            let sum = t[l] as u64 + carry;
            t[l - 1] = (sum & 0xffff_ffff) as u32;
            t[l] = t[l + 1].wrapping_add((sum >> 32) as u32);
            t[l + 1] = 0;
        }
        t.truncate(l + 1);
        // Final conditional subtraction.
        let val = BigUint::from_limbs(t);
        let reduced = if val >= self.modulus {
            val.checked_sub(&self.modulus).expect("val >= modulus")
        } else {
            val
        };
        let mut limbs = reduced.limbs().to_vec();
        limbs.resize(l, 0);
        limbs
    }

    /// Converts `x` into Montgomery form (`x·R mod n`), reducing first.
    pub fn enter(&self, x: &BigUint) -> MontElem {
        let l = self.n.len();
        let mut limbs = x.rem(&self.modulus).limbs().to_vec();
        limbs.resize(l, 0);
        let mut r2 = self.r2.limbs().to_vec();
        r2.resize(l, 0);
        MontElem(self.mont_mul(&limbs, &r2))
    }

    /// Converts a Montgomery-form element back to an ordinary residue.
    pub fn exit(&self, x: &MontElem) -> BigUint {
        let mut one = vec![0u32; self.n.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(&x.0, &one))
    }

    /// The multiplicative identity in Montgomery form (`R mod n`).
    pub fn one(&self) -> MontElem {
        let l = self.n.len();
        let mut one = vec![0u32; l];
        one[0] = 1;
        let mut r2 = self.r2.limbs().to_vec();
        r2.resize(l, 0);
        MontElem(self.mont_mul(&one, &r2))
    }

    /// Montgomery product of two elements already in Montgomery form —
    /// the amortized unit of work batch verification counts in: one call
    /// is one CIOS pass, versus ~`e.bit_len()` of them per full modexp.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem(self.mont_mul(&a.0, &b.0))
    }

    /// `base^exp` with base and result in Montgomery form.
    pub fn pow(&self, base: &MontElem, exp: &BigUint) -> MontElem {
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// `base^exp mod n` via left-to-right binary exponentiation in
    /// Montgomery form.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let l = self.n.len();
        let base_red = base.rem(&self.modulus);
        let mut base_limbs = base_red.limbs().to_vec();
        base_limbs.resize(l, 0);
        let mut r2_limbs = self.r2.limbs().to_vec();
        r2_limbs.resize(l, 0);
        // into Montgomery form: a·R mod n = montmul(a, R²)
        let base_m = self.mont_mul(&base_limbs, &r2_limbs);
        // one in Montgomery form: R mod n = montmul(1, R²)
        let mut one = vec![0u32; l];
        one[0] = 1;
        let mut acc = self.mont_mul(&one, &r2_limbs);
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        // out of Montgomery form: montmul(acc, 1)
        let out = self.mont_mul(&acc, &one);
        BigUint::from_limbs(out)
    }
}

/// Inverse of `-n` modulo 2^32 for odd `n`, by Newton–Hensel lifting.
fn inv_limb(n: u32) -> u32 {
    debug_assert!(n & 1 == 1);
    // x := n^{-1} mod 2^32
    let mut x: u32 = n; // correct mod 2^3 for odd n? use standard trick:
    x = x.wrapping_mul(2u32.wrapping_sub(n.wrapping_mul(x))); // mod 2^6... iterate
    x = x.wrapping_mul(2u32.wrapping_sub(n.wrapping_mul(x)));
    x = x.wrapping_mul(2u32.wrapping_sub(n.wrapping_mul(x)));
    x = x.wrapping_mul(2u32.wrapping_sub(n.wrapping_mul(x)));
    x = x.wrapping_mul(2u32.wrapping_sub(n.wrapping_mul(x)));
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_modpow() {
        assert_eq!(modpow(&n(2), &n(10), &n(1000)).to_u64(), Some(24));
        assert_eq!(modpow(&n(3), &n(0), &n(7)).to_u64(), Some(1));
        assert_eq!(modpow(&n(0), &n(5), &n(7)).to_u64(), Some(0));
        assert_eq!(modpow(&n(5), &n(117), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p not dividing a.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 999_999_937, 123_456_789] {
            assert!(
                modpow(&n(a), &n(1_000_000_006), &p).is_one(),
                "Fermat failed for a={a}"
            );
        }
    }

    #[test]
    fn montgomery_matches_plain_small() {
        let m = n(1_000_000_007);
        for (b, e) in [(2u64, 1000u64), (12345, 67890), (999_999_999, 3)] {
            assert_eq!(
                modpow_plain(&n(b), &n(e), &m),
                Montgomery::new(&m).modpow(&n(b), &n(e)),
                "mismatch for {b}^{e}"
            );
        }
    }

    #[test]
    fn montgomery_matches_plain_multi_limb() {
        // 2^127 - 1 (Mersenne prime, odd, 4 limbs).
        let m = BigUint::from_decimal("170141183460469231731687303715884105727");
        let b = BigUint::from_decimal("123456789012345678901234567890");
        let e = BigUint::from_decimal("98765432109876543210");
        assert_eq!(modpow_plain(&b, &e, &m), Montgomery::new(&m).modpow(&b, &e));
    }

    #[test]
    fn even_modulus_falls_back() {
        let m = n(1 << 20);
        assert_eq!(modpow(&n(3), &n(100), &m), modpow_plain(&n(3), &n(100), &m));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn montgomery_even_modulus_panics() {
        let _ = Montgomery::new(&n(100));
    }

    #[test]
    fn inv_limb_all_odd_patterns() {
        for v in [1u32, 3, 5, 0xffff_ffff, 0x8000_0001, 12345_u32 | 1] {
            let x = inv_limb(v);
            assert_eq!(v.wrapping_mul(x.wrapping_neg()), 1, "v={v:#x}");
        }
    }

    #[test]
    fn mont_elem_round_trip_and_products() {
        let m = BigUint::from_decimal("170141183460469231731687303715884105727");
        let ctx = Montgomery::new(&m);
        let a = BigUint::from_decimal("123456789012345678901234567890");
        let b = BigUint::from_decimal("98765432109876543210");
        // enter/exit round-trips.
        assert_eq!(ctx.exit(&ctx.enter(&a)), a.rem(&m));
        // mul matches plain multiplication mod m.
        let prod = ctx.exit(&ctx.mul(&ctx.enter(&a), &ctx.enter(&b)));
        assert_eq!(prod, (&a * &b).rem(&m));
        // one is the identity.
        assert_eq!(ctx.exit(&ctx.mul(&ctx.enter(&a), &ctx.one())), a.rem(&m));
        // pow in Montgomery form matches modpow.
        let e = BigUint::from_u64(65_537);
        assert_eq!(ctx.exit(&ctx.pow(&ctx.enter(&a), &e)), ctx.modpow(&a, &e));
    }

    #[test]
    fn mod_inverse_small_cases() {
        assert_eq!(mod_inverse(&n(3), &n(11)).unwrap().to_u64(), Some(4));
        assert_eq!(mod_inverse(&n(7), &n(26)).unwrap().to_u64(), Some(15));
        // gcd(6, 9) = 3 → no inverse.
        assert!(mod_inverse(&n(6), &n(9)).is_none());
        assert!(mod_inverse(&n(5), &BigUint::one()).is_none());
    }

    #[test]
    fn mod_inverse_large() {
        let m = BigUint::from_decimal("170141183460469231731687303715884105727");
        let a = BigUint::from_decimal("123456789012345678901234567890");
        let inv = mod_inverse(&a, &m).expect("coprime with a prime modulus");
        assert!((&a * &inv).rem(&m).is_one());
    }

    #[test]
    fn mod_inverse_of_reduced_and_unreduced_agree() {
        let m = n(1_000_003);
        let a = n(1_000_003 * 7 + 17);
        assert_eq!(mod_inverse(&a, &m), mod_inverse(&n(17), &m));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u32>(), 0..max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        /// Montgomery and plain modpow always agree for odd moduli.
        #[test]
        fn montgomery_equals_plain(
            b in arb_biguint(5),
            e in arb_biguint(3),
            m_seed in arb_biguint(5),
        ) {
            // Force the modulus odd and > 1.
            let m = &(&m_seed + &m_seed) + &BigUint::from_u64(3);
            prop_assert_eq!(
                Montgomery::new(&m).modpow(&b, &e),
                modpow_plain(&b, &e, &m)
            );
        }

        /// (a^x · a^y) mod m == a^(x+y) mod m.
        #[test]
        fn exponent_addition_law(
            a in arb_biguint(3),
            x in 0u64..2000,
            y in 0u64..2000,
            m_seed in arb_biguint(3),
        ) {
            let m = &(&m_seed + &m_seed) + &BigUint::from_u64(3);
            let lhs = (&modpow(&a, &BigUint::from_u64(x), &m)
                * &modpow(&a, &BigUint::from_u64(y), &m)).rem(&m);
            let rhs = modpow(&a, &BigUint::from_u64(x + y), &m);
            prop_assert_eq!(lhs, rhs);
        }

        /// mod_inverse really inverts.
        #[test]
        fn inverse_inverts(a in arb_biguint(4), m_seed in arb_biguint(4)) {
            let m = &(&m_seed + &m_seed) + &BigUint::from_u64(3);
            if let Some(inv) = mod_inverse(&a, &m) {
                prop_assert!((&a.rem(&m) * &inv).rem(&m).is_one());
                prop_assert!(inv < m);
            }
        }
    }
}
