//! Probabilistic primality testing and prime generation.

use crate::modular::modpow;
use crate::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Uniformly random value in `[0, bound)`.
///
/// # Panics
///
/// Panics when `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "random_below with zero bound");
    let bytes = bound.bit_len().div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Mask the top byte so the rejection rate stays below 50%.
        let excess_bits = bytes * 8 - bound.bit_len();
        buf[0] &= 0xffu8 >> excess_bits;
        let candidate = BigUint::from_bytes_be(&buf);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Random integer with exactly `bits` bits (top bit set).
pub fn random_with_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "need at least 2 bits");
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    buf[0] |= 0x80u8 >> excess; // force the top bit
    BigUint::from_bytes_be(&buf)
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// A composite passes all rounds with probability at most `4^-rounds`.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    if n < &BigUint::from_u64(2) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p as u64);
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n-1 = d · 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let mut d = n_minus_1.clone();
    let mut s = 0u32;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let two = BigUint::from_u64(2);
    let bound = n - &BigUint::from_u64(4); // bases in [2, n-2]
    'witness: for _ in 0..rounds {
        let a = &random_below(rng, &bound) + &two;
        let mut x = modpow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = modpow(&x, &two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// Candidates are random odd numbers with the top bit set (so products of
/// two such primes have exactly `2·bits` bits), screened by trial division
/// and confirmed with `rounds` Miller–Rabin rounds.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rounds: u32, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    loop {
        let mut candidate = random_with_bits(rng, bits);
        if candidate.is_even() {
            candidate = &candidate + &BigUint::one();
        }
        // Also set the second-highest bit so p·q keeps full width.
        let top2 = BigUint::one().shl(bits - 2);
        if !candidate.bit(bits - 2) {
            candidate = &candidate + &top2;
        }
        if is_probable_prime(&candidate, rounds, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn small_primes_pass() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 251, 257, 65_537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_fail() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 255, 65_535, 1_000_000_008] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_fail() {
        // Fermat pseudoprimes that fool a^(n-1) ≡ 1; Miller–Rabin must
        // reject them.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "Carmichael {c} slipped through"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is prime (Mersenne).
        let m127 = BigUint::from_decimal("170141183460469231731687303715884105727");
        let mut r = rng();
        assert!(is_probable_prime(&m127, 12, &mut r));
        // 2^128 - 1 = 3 · 5 · 17 · 257 · ... is composite.
        let c = BigUint::from_decimal("340282366920938463463374607431768211455");
        assert!(!is_probable_prime(&c, 12, &mut r));
    }

    #[test]
    fn generated_primes_have_requested_width() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, 12, &mut r);
            assert_eq!(p.bit_len(), bits, "asked for {bits} bits");
            assert!(!p.is_even());
        }
    }

    #[test]
    fn product_of_two_generated_primes_has_full_width() {
        let mut r = rng();
        for _ in 0..5 {
            let p = gen_prime(64, 8, &mut r);
            let q = gen_prime(64, 8, &mut r);
            assert_eq!((&p * &q).bit_len(), 128);
        }
    }

    #[test]
    fn random_below_stays_below() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_with_bits_sets_top_bit() {
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(random_with_bits(&mut r, 37).bit_len(), 37);
        }
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn random_below_zero_panics() {
        let mut r = rng();
        let _ = random_below(&mut r, &BigUint::zero());
    }
}
