//! RSA signatures in the PKCS#1 v1.5 style, with CRT-accelerated signing.
//!
//! The paper states the intersection manager signs blocks with a 2048-bit
//! private key and hashes with SHA-256 (§VI-A). [`RsaKeyPair::generate`]
//! produces keys of any even size ≥ 128 bits; tests use small keys for
//! speed while the benchmark harness measures the full 2048-bit regime.

use crate::modular::{mod_inverse, modpow, Montgomery};
use crate::prime::gen_prime;
use crate::sha256::{sha256, Digest};
use crate::BigUint;
use rand::Rng;
use std::fmt;
use std::sync::OnceLock;

/// ASN.1 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// The public half of an RSA key: modulus and public exponent.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    /// Montgomery context for `n`, built on the first verification and
    /// reused for every later one. The setup (limb inverse, R² mod n)
    /// costs several multiplications per call when rebuilt each time —
    /// pure overhead for a verifier checking many signatures under one
    /// manager key.
    ctx: OnceLock<Montgomery>,
}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RsaPublicKey({} bits)", self.modulus_bits())
    }
}

/// Key identity is the (n, e) pair; the lazily built Montgomery context
/// is derived state and never participates in comparisons.
impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

/// An RSA signature (big-endian, exactly the modulus width).
#[derive(Clone, PartialEq, Eq)]
pub struct RsaSignature(Vec<u8>);

impl RsaSignature {
    /// The raw signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Wraps raw bytes as a signature (for deserialization).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        RsaSignature(bytes)
    }
}

impl fmt::Debug for RsaSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RsaSignature({} bytes)", self.0.len())
    }
}

impl RsaPublicKey {
    /// Modulus size in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Verifies `signature` over `message` (hashed with SHA-256).
    pub fn verify(&self, message: &[u8], signature: &RsaSignature) -> bool {
        self.verify_digest(&sha256(message), signature)
    }

    /// The modulus `n`.
    pub(crate) fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub(crate) fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// The shared Montgomery context for `n`, building it on first use.
    /// `None` for hand-built even-modulus test keys, which Montgomery
    /// arithmetic cannot serve.
    pub(crate) fn montgomery(&self) -> Option<&Montgomery> {
        if self.n.is_even() {
            None
        } else {
            Some(self.ctx.get_or_init(|| Montgomery::new(&self.n)))
        }
    }

    /// Verifies a batch of `(digest, signature)` pairs under this key at
    /// once. Verdicts are exactly those of per-item
    /// [`RsaPublicKey::verify_digest`]; see [`crate::batch`] for the
    /// amortization and failure-handling strategy.
    pub fn verify_digest_batch(&self, items: &[(Digest, &[u8])]) -> Vec<bool> {
        crate::batch::verify_batch(self, items)
    }

    /// Verifies a signature over a precomputed digest.
    pub fn verify_digest(&self, digest: &Digest, signature: &RsaSignature) -> bool {
        if signature.0.len() != self.modulus_len() {
            return false;
        }
        let s = BigUint::from_bytes_be(&signature.0);
        if s >= self.n {
            return false;
        }
        // RSA moduli are odd (products of odd primes); the even branch
        // only guards hand-built test keys.
        let em = if self.n.is_even() {
            modpow(&s, &self.e, &self.n)
        } else {
            self.ctx
                .get_or_init(|| Montgomery::new(&self.n))
                .modpow(&s, &self.e)
        };
        em.to_bytes_be_padded(self.modulus_len()) == encode_em(digest, self.modulus_len())
    }
}

/// A full RSA key pair with CRT parameters.
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
    /// Montgomery contexts for p and q, precomputed at generation so
    /// every CRT signature skips the per-prime modexp setup.
    mont_p: Montgomery,
    mont_q: Montgomery,
}

impl fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print private material.
        write!(f, "RsaKeyPair({} bits)", self.public.modulus_bits())
    }
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of exactly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is odd or below 128.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(
            bits >= 128 && bits.is_multiple_of(2),
            "key size must be even and >= 128"
        );
        let e = BigUint::from_u64(65_537);
        let rounds = 16;
        loop {
            let p = gen_prime(bits / 2, rounds, rng);
            let q = gen_prime(bits / 2, rounds, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = &(&p - &one) * &(&q - &one);
            let Some(d) = mod_inverse(&e, &phi) else {
                continue;
            };
            let d_p = d.rem(&(&p - &one));
            let d_q = d.rem(&(&q - &one));
            let q_inv = mod_inverse(&q, &p).expect("p, q distinct primes");
            let mont_p = Montgomery::new(&p);
            let mont_q = Montgomery::new(&q);
            return RsaKeyPair {
                public: RsaPublicKey {
                    n,
                    e,
                    ctx: OnceLock::new(),
                },
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
                mont_p,
                mont_q,
            };
        }
    }

    /// The public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs `message` (hashed with SHA-256).
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        self.sign_digest(&sha256(message))
    }

    /// Signs a precomputed digest using the CRT.
    pub fn sign_digest(&self, digest: &Digest) -> RsaSignature {
        let k = self.public.modulus_len();
        let em = BigUint::from_bytes_be(&encode_em(digest, k));
        // CRT: m1 = em^dP mod p, m2 = em^dQ mod q,
        //      h = qInv (m1 − m2) mod p, s = m2 + q h.
        let m1 = self.mont_p.modpow(&em, &self.d_p);
        let m2 = self.mont_q.modpow(&em, &self.d_q);
        let diff = if m1 >= m2.rem(&self.p) {
            (&m1 - &m2.rem(&self.p)).rem(&self.p)
        } else {
            (&(&m1 + &self.p) - &m2.rem(&self.p)).rem(&self.p)
        };
        let h = (&self.q_inv * &diff).rem(&self.p);
        let s = &m2 + &(&self.q * &h);
        RsaSignature(s.to_bytes_be_padded(k))
    }

    /// Signs without the CRT (reference implementation used in tests and
    /// the ablation bench to quantify the CRT speed-up).
    pub fn sign_digest_plain(&self, digest: &Digest) -> RsaSignature {
        let k = self.public.modulus_len();
        let em = BigUint::from_bytes_be(&encode_em(digest, k));
        let s = modpow(&em, &self.d, &self.public.n);
        RsaSignature(s.to_bytes_be_padded(k))
    }
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `k` bytes.
///
/// # Panics
///
/// Panics if `k` is too small to hold the padding and digest (k < 62).
pub(crate) fn encode_em(digest: &Digest, k: usize) -> Vec<u8> {
    let t_len = SHA256_PREFIX.len() + 32;
    assert!(k >= t_len + 11, "modulus too small for PKCS#1 v1.5 SHA-256");
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_PREFIX);
    em.extend_from_slice(digest.as_bytes());
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// A 512-bit key generated once and shared across tests: big enough to
    /// exercise multi-limb arithmetic, small enough for debug-build speed.
    fn test_key() -> &'static RsaKeyPair {
        static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
        KEY.get_or_init(|| RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(7)))
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = test_key();
        let sig = key.sign(b"travel plan batch 42");
        assert!(key.public_key().verify(b"travel plan batch 42", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key();
        let sig = key.sign(b"original");
        assert!(!key.public_key().verify(b"tampered", &sig));
    }

    #[test]
    fn verify_rejects_corrupted_signature() {
        let key = test_key();
        let sig = key.sign(b"message");
        let mut bytes = sig.as_bytes().to_vec();
        bytes[10] ^= 0x01;
        assert!(!key
            .public_key()
            .verify(b"message", &RsaSignature::from_bytes(bytes)));
    }

    #[test]
    fn verify_rejects_wrong_length_signature() {
        let key = test_key();
        let sig = key.sign(b"message");
        let short = RsaSignature::from_bytes(sig.as_bytes()[1..].to_vec());
        assert!(!key.public_key().verify(b"message", &short));
    }

    #[test]
    fn verify_rejects_signature_from_other_key() {
        let key = test_key();
        let other = RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(8));
        let sig = other.sign(b"message");
        assert!(!key.public_key().verify(b"message", &sig));
        assert!(other.public_key().verify(b"message", &sig));
    }

    #[test]
    fn crt_matches_plain_signing() {
        let key = test_key();
        let d = sha256(b"same digest both ways");
        assert_eq!(
            key.sign_digest(&d).as_bytes(),
            key.sign_digest_plain(&d).as_bytes()
        );
    }

    #[test]
    fn signature_width_equals_modulus() {
        let key = test_key();
        assert_eq!(
            key.sign(b"x").as_bytes().len(),
            key.public_key().modulus_len()
        );
        assert_eq!(key.public_key().modulus_bits(), 512);
    }

    #[test]
    fn generate_produces_distinct_keys() {
        let a = RsaKeyPair::generate(256, &mut StdRng::seed_from_u64(1));
        let b = RsaKeyPair::generate(256, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn small_keys_work_end_to_end() {
        let key = RsaKeyPair::generate(640, &mut StdRng::seed_from_u64(3));
        let sig = key.sign(b"block");
        assert!(key.public_key().verify(b"block", &sig));
    }

    #[test]
    fn debug_hides_private_material() {
        let key = test_key();
        let s = format!("{key:?}");
        assert_eq!(s, "RsaKeyPair(512 bits)");
    }

    #[test]
    fn cached_montgomery_context_is_stable_across_verifies() {
        let key = test_key();
        let public = key.public_key().clone();
        let sig = key.sign(b"repeat");
        // Repeated verifies share one lazily built context.
        for _ in 0..3 {
            assert!(public.verify(b"repeat", &sig));
        }
        assert!(!public.verify(b"other", &sig));
        // The context is derived state: clones and equality ignore it
        // (`public` has verified, the original key may not have).
        assert_eq!(&public, key.public_key());
        assert_eq!(public.clone(), public);
    }

    #[test]
    #[should_panic(expected = "even and >= 128")]
    fn tiny_key_request_panics() {
        let _ = RsaKeyPair::generate(64, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn em_encoding_structure() {
        let d = sha256(b"x");
        let em = encode_em(&d, 128);
        assert_eq!(em.len(), 128);
        assert_eq!(&em[..2], &[0x00, 0x01]);
        // Padding then 0x00 separator then DigestInfo.
        let sep = em.iter().skip(2).position(|&b| b == 0x00).unwrap() + 2;
        assert!(em[2..sep].iter().all(|&b| b == 0xff));
        assert_eq!(&em[sep + 1..sep + 1 + 19], &SHA256_PREFIX);
        assert_eq!(&em[em.len() - 32..], d.as_bytes());
    }
}
