//! Signature-scheme abstraction.
//!
//! The blockchain layer signs and verifies through this trait so that
//! large-scale simulations can swap the real RSA signer for a cheap
//! hash-based mock when cryptographic cost is not the quantity under test
//! (the paper's Fig. 6 measures real signing; Figs. 4/5/7/8 do not depend
//! on it).

use crate::rsa::{RsaKeyPair, RsaSignature};
use crate::sha256::{Digest, Sha256};

/// A detached-signature scheme over 32-byte digests.
pub trait SignatureScheme: Send + Sync {
    /// Signs a digest, returning the signature bytes.
    fn sign(&self, digest: &Digest) -> Vec<u8>;

    /// Verifies signature bytes over a digest.
    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool;

    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;
}

/// The real RSA scheme (PKCS#1 v1.5 style with SHA-256).
#[derive(Debug, Clone)]
pub struct RsaScheme {
    key: RsaKeyPair,
}

impl RsaScheme {
    /// Wraps a key pair.
    pub fn new(key: RsaKeyPair) -> Self {
        RsaScheme { key }
    }

    /// The underlying key pair.
    pub fn key(&self) -> &RsaKeyPair {
        &self.key
    }
}

impl SignatureScheme for RsaScheme {
    fn sign(&self, digest: &Digest) -> Vec<u8> {
        self.key.sign_digest(digest).as_bytes().to_vec()
    }

    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool {
        self.key
            .public_key()
            .verify_digest(digest, &RsaSignature::from_bytes(signature.to_vec()))
    }

    fn name(&self) -> &'static str {
        "rsa-pkcs1-sha256"
    }
}

/// A deterministic keyed-hash mock: `sig = SHA-256(key ‖ digest)`.
///
/// Unforgeable only against parties that do not know `key`; in the
/// simulator the attacker model controls which parties hold the key, so
/// the mock preserves the *detectability* semantics (a party without the
/// key cannot fabricate a block that verifies) at a tiny fraction of RSA's
/// cost. **Never** use outside simulation.
#[derive(Debug, Clone)]
pub struct MockScheme {
    key: [u8; 32],
}

impl MockScheme {
    /// Creates a mock scheme from a 32-byte key.
    pub fn new(key: [u8; 32]) -> Self {
        MockScheme { key }
    }

    /// Creates a mock scheme from a seed integer (testing convenience).
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_be_bytes());
        MockScheme { key }
    }
}

impl SignatureScheme for MockScheme {
    fn sign(&self, digest: &Digest) -> Vec<u8> {
        Sha256::new()
            .chain(&self.key)
            .chain(digest.as_bytes())
            .finalize()
            .as_bytes()
            .to_vec()
    }

    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool {
        self.sign(digest) == signature
    }

    fn name(&self) -> &'static str {
        "mock-keyed-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mock_round_trip() {
        let scheme = MockScheme::from_seed(42);
        let d = sha256(b"block");
        let sig = scheme.sign(&d);
        assert!(scheme.verify(&d, &sig));
        assert!(!scheme.verify(&sha256(b"other"), &sig));
        assert_eq!(scheme.name(), "mock-keyed-hash");
    }

    #[test]
    fn mock_with_different_keys_disagree() {
        let a = MockScheme::from_seed(1);
        let b = MockScheme::from_seed(2);
        let d = sha256(b"block");
        assert!(!b.verify(&d, &a.sign(&d)));
    }

    #[test]
    fn rsa_scheme_through_trait() {
        let key = RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(99));
        let scheme = RsaScheme::new(key);
        let d = sha256(b"block");
        let sig = scheme.sign(&d);
        assert!(scheme.verify(&d, &sig));
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(!scheme.verify(&d, &bad));
        assert_eq!(scheme.name(), "rsa-pkcs1-sha256");
    }

    #[test]
    fn trait_objects_are_usable() {
        let schemes: Vec<Box<dyn SignatureScheme>> = vec![
            Box::new(MockScheme::from_seed(7)),
            Box::new(RsaScheme::new(RsaKeyPair::generate(
                512,
                &mut StdRng::seed_from_u64(7),
            ))),
        ];
        let d = sha256(b"payload");
        for s in &schemes {
            let sig = s.sign(&d);
            assert!(s.verify(&d, &sig), "{} failed round trip", s.name());
        }
    }
}
