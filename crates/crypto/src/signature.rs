//! Signature-scheme abstraction.
//!
//! The blockchain layer signs and verifies through this trait so that
//! large-scale simulations can swap the real RSA signer for a cheap
//! hash-based mock when cryptographic cost is not the quantity under test
//! (the paper's Fig. 6 measures real signing; Figs. 4/5/7/8 do not depend
//! on it).

use crate::rsa::{RsaKeyPair, RsaSignature};
use crate::sha256::{Digest, Sha256};
use std::collections::HashMap;
use std::sync::Mutex;

/// A detached-signature scheme over 32-byte digests.
pub trait SignatureScheme: Send + Sync {
    /// Signs a digest, returning the signature bytes.
    fn sign(&self, digest: &Digest) -> Vec<u8>;

    /// Verifies signature bytes over a digest.
    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool;

    /// Verifies many `(digest, signature)` pairs at once, returning one
    /// verdict per item in input order. Verdicts must be exactly those of
    /// per-item [`SignatureScheme::verify`]; schemes with an amortizable
    /// structure (same-key RSA) override the default per-item loop.
    fn verify_batch(&self, items: &[(Digest, &[u8])]) -> Vec<bool> {
        items
            .iter()
            .map(|(digest, sig)| self.verify(digest, sig))
            .collect()
    }

    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;
}

/// The real RSA scheme (PKCS#1 v1.5 style with SHA-256).
#[derive(Debug, Clone)]
pub struct RsaScheme {
    key: RsaKeyPair,
}

impl RsaScheme {
    /// Wraps a key pair.
    pub fn new(key: RsaKeyPair) -> Self {
        RsaScheme { key }
    }

    /// The underlying key pair.
    pub fn key(&self) -> &RsaKeyPair {
        &self.key
    }
}

impl SignatureScheme for RsaScheme {
    fn sign(&self, digest: &Digest) -> Vec<u8> {
        self.key.sign_digest(digest).as_bytes().to_vec()
    }

    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool {
        self.key
            .public_key()
            .verify_digest(digest, &RsaSignature::from_bytes(signature.to_vec()))
    }

    fn verify_batch(&self, items: &[(Digest, &[u8])]) -> Vec<bool> {
        self.key.public_key().verify_digest_batch(items)
    }

    fn name(&self) -> &'static str {
        "rsa-pkcs1-sha256"
    }
}

/// A deterministic keyed-hash mock: `sig = SHA-256(key ‖ digest)`.
///
/// Unforgeable only against parties that do not know `key`; in the
/// simulator the attacker model controls which parties hold the key, so
/// the mock preserves the *detectability* semantics (a party without the
/// key cannot fabricate a block that verifies) at a tiny fraction of RSA's
/// cost. **Never** use outside simulation.
#[derive(Debug, Clone)]
pub struct MockScheme {
    key: [u8; 32],
}

impl MockScheme {
    /// Creates a mock scheme from a 32-byte key.
    pub fn new(key: [u8; 32]) -> Self {
        MockScheme { key }
    }

    /// Creates a mock scheme from a seed integer (testing convenience).
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_be_bytes());
        MockScheme { key }
    }
}

impl SignatureScheme for MockScheme {
    fn sign(&self, digest: &Digest) -> Vec<u8> {
        Sha256::new()
            .chain(&self.key)
            .chain(digest.as_bytes())
            .finalize()
            .as_bytes()
            .to_vec()
    }

    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool {
        self.sign(digest) == signature
    }

    fn name(&self) -> &'static str {
        "mock-keyed-hash"
    }
}

/// A digest-keyed verification cache around any [`SignatureScheme`].
///
/// The manager broadcasts each block to every vehicle and each vehicle
/// verifies it — N identical public-key operations over the same
/// `(digest, signature)` pair per window. Parties that share one
/// verifier handle (all honest vehicles check the same manager key) pay
/// the modexp once; every later check is a table lookup. Verification
/// of a fixed pair is deterministic, so caching negative verdicts is
/// sound too.
///
/// Signing is delegated uncached. The cache is bounded: when full it is
/// cleared wholesale — hits cluster around the most recent blocks, so a
/// periodic cold restart costs a handful of re-verifications.
pub struct CachingVerifier<S> {
    inner: S,
    capacity: usize,
    state: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    map: HashMap<(Digest, Vec<u8>), bool>,
    hits: u64,
    misses: u64,
}

impl<S: SignatureScheme> CachingVerifier<S> {
    /// Wraps a scheme with the default cache bound.
    pub fn new(inner: S) -> Self {
        CachingVerifier::with_capacity(inner, 1024)
    }

    /// Wraps a scheme, keeping at most `capacity` cached verdicts.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(inner: S, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CachingVerifier {
            inner,
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// `(hits, misses)` so far — for perf diagnostics and tests.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.state.lock().expect("verifier cache lock");
        (s.hits, s.misses)
    }
}

impl<S: SignatureScheme> SignatureScheme for CachingVerifier<S> {
    fn sign(&self, digest: &Digest) -> Vec<u8> {
        self.inner.sign(digest)
    }

    fn verify(&self, digest: &Digest, signature: &[u8]) -> bool {
        let key = (*digest, signature.to_vec());
        {
            let mut s = self.state.lock().expect("verifier cache lock");
            if let Some(&verdict) = s.map.get(&key) {
                s.hits += 1;
                return verdict;
            }
        }
        // Verify outside the lock: a 2048-bit modexp must not serialize
        // concurrent verifiers of different blocks.
        let verdict = self.inner.verify(digest, signature);
        let mut s = self.state.lock().expect("verifier cache lock");
        s.misses += 1;
        if s.map.len() >= self.capacity {
            s.map.clear();
        }
        s.map.insert(key, verdict);
        verdict
    }

    /// Resolves memoized pairs from the cache, forwards the rest to the
    /// wrapped scheme's batch path in one call, and memoizes the fresh
    /// verdicts (caching negatives is sound here for the same reason as
    /// in [`CachingVerifier::verify`]: verification of a fixed pair is
    /// deterministic).
    fn verify_batch(&self, items: &[(Digest, &[u8])]) -> Vec<bool> {
        let mut verdicts = vec![false; items.len()];
        let mut miss_slots = Vec::new();
        let mut misses: Vec<(Digest, &[u8])> = Vec::new();
        {
            let mut s = self.state.lock().expect("verifier cache lock");
            for (i, (digest, sig)) in items.iter().enumerate() {
                match s.map.get(&(*digest, sig.to_vec())) {
                    Some(&verdict) => {
                        s.hits += 1;
                        verdicts[i] = verdict;
                    }
                    None => {
                        miss_slots.push(i);
                        misses.push((*digest, sig));
                    }
                }
            }
        }
        if misses.is_empty() {
            return verdicts;
        }
        // Batch-verify outside the lock, mirroring `verify`.
        let fresh = self.inner.verify_batch(&misses);
        let mut s = self.state.lock().expect("verifier cache lock");
        for ((slot, ok), (digest, sig)) in miss_slots.iter().zip(&fresh).zip(&misses) {
            verdicts[*slot] = *ok;
            s.misses += 1;
            if s.map.len() >= self.capacity {
                s.map.clear();
            }
            s.map.insert((*digest, sig.to_vec()), *ok);
        }
        verdicts
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mock_round_trip() {
        let scheme = MockScheme::from_seed(42);
        let d = sha256(b"block");
        let sig = scheme.sign(&d);
        assert!(scheme.verify(&d, &sig));
        assert!(!scheme.verify(&sha256(b"other"), &sig));
        assert_eq!(scheme.name(), "mock-keyed-hash");
    }

    #[test]
    fn mock_with_different_keys_disagree() {
        let a = MockScheme::from_seed(1);
        let b = MockScheme::from_seed(2);
        let d = sha256(b"block");
        assert!(!b.verify(&d, &a.sign(&d)));
    }

    #[test]
    fn rsa_scheme_through_trait() {
        let key = RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(99));
        let scheme = RsaScheme::new(key);
        let d = sha256(b"block");
        let sig = scheme.sign(&d);
        assert!(scheme.verify(&d, &sig));
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(!scheme.verify(&d, &bad));
        assert_eq!(scheme.name(), "rsa-pkcs1-sha256");
    }

    #[test]
    fn caching_verifier_caches_both_verdicts() {
        let scheme = CachingVerifier::new(MockScheme::from_seed(3));
        let d = sha256(b"block");
        let sig = scheme.sign(&d);
        let mut bad = sig.clone();
        bad[0] ^= 1;
        for _ in 0..3 {
            assert!(scheme.verify(&d, &sig));
            assert!(!scheme.verify(&d, &bad));
        }
        let (hits, misses) = scheme.stats();
        assert_eq!(misses, 2, "one modexp per distinct (digest, sig)");
        assert_eq!(hits, 4);
        assert_eq!(scheme.name(), "mock-keyed-hash");
    }

    #[test]
    fn caching_verifier_bounded_cache_restarts_cold() {
        let scheme = CachingVerifier::with_capacity(MockScheme::from_seed(4), 2);
        for i in 0u64..5 {
            let d = sha256(&i.to_be_bytes());
            let sig = scheme.sign(&d);
            assert!(scheme.verify(&d, &sig));
        }
        let (hits, misses) = scheme.stats();
        assert_eq!(misses, 5, "distinct digests never hit");
        assert_eq!(hits, 0);
        // Earlier entries were evicted wholesale; re-verifying one is a
        // miss again but still correct.
        let d = sha256(&0u64.to_be_bytes());
        let sig = scheme.sign(&d);
        assert!(scheme.verify(&d, &sig));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn caching_verifier_zero_capacity_panics() {
        let _ = CachingVerifier::with_capacity(MockScheme::from_seed(0), 0);
    }

    #[test]
    fn trait_objects_are_usable() {
        let schemes: Vec<Box<dyn SignatureScheme>> = vec![
            Box::new(MockScheme::from_seed(7)),
            Box::new(RsaScheme::new(RsaKeyPair::generate(
                512,
                &mut StdRng::seed_from_u64(7),
            ))),
        ];
        let d = sha256(b"payload");
        for s in &schemes {
            let sig = s.sign(&d);
            assert!(s.verify(&d, &sig), "{} failed round trip", s.name());
        }
    }
}
