//! Property tests pinning batch verification to per-signature
//! verification: identical accept sets on random valid/invalid mixes,
//! exact culprit identification, order independence, and the
//! rejections-are-never-cached memo contract.

use nwade_crypto::{sha256, BatchVerifier, Digest, RsaKeyPair, RsaSignature, SignatureScheme};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared 512-bit key: big enough for multi-limb arithmetic, small
/// enough for a debug-build property sweep.
fn key() -> &'static RsaKeyPair {
    static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
    KEY.get_or_init(|| RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(0xBA7C4)))
}

/// How one batch item is mangled (or not).
#[derive(Debug, Clone)]
enum Mangle {
    /// Honest signature over the item's digest.
    Valid,
    /// One bit of the signature flipped.
    FlipBit { byte: usize, bit: u8 },
    /// Signature over a different digest.
    WrongDigest,
    /// First byte dropped (structural length reject).
    Truncated,
    /// All-0xff bytes of modulus width (s ≥ n structural reject).
    Oversized,
}

fn arb_mangle() -> impl Strategy<Value = Mangle> {
    // The vendored proptest's `prop_oneof!` is uniform; repeating the
    // Valid arm weights batches toward mostly-honest mixes.
    prop_oneof![
        Just(Mangle::Valid),
        Just(Mangle::Valid),
        Just(Mangle::Valid),
        Just(Mangle::Valid),
        (any::<usize>(), 0u8..8).prop_map(|(byte, bit)| Mangle::FlipBit { byte, bit }),
        (any::<usize>(), 0u8..8).prop_map(|(byte, bit)| Mangle::FlipBit { byte, bit }),
        Just(Mangle::WrongDigest),
        Just(Mangle::Truncated),
        Just(Mangle::Oversized),
    ]
}

/// Builds the batch: per item a digest derived from its index plus a
/// signature mangled per the recipe.
fn build(mangles: &[Mangle]) -> (Vec<Digest>, Vec<Vec<u8>>) {
    let k = key();
    let mut digests = Vec::with_capacity(mangles.len());
    let mut sigs = Vec::with_capacity(mangles.len());
    for (i, m) in mangles.iter().enumerate() {
        let digest = sha256(&(i as u64).to_be_bytes());
        let honest = k.sign_digest(&digest).as_bytes().to_vec();
        let sig = match m {
            Mangle::Valid => honest,
            Mangle::FlipBit { byte, bit } => {
                let mut bad = honest;
                let at = byte % bad.len();
                bad[at] ^= 1 << bit;
                bad
            }
            Mangle::WrongDigest => k
                .sign_digest(&sha256(&(i as u64 ^ 0xDEAD).to_be_bytes()))
                .as_bytes()
                .to_vec(),
            Mangle::Truncated => honest[1..].to_vec(),
            Mangle::Oversized => vec![0xffu8; k.public_key().modulus_len()],
        };
        digests.push(digest);
        sigs.push(sig);
    }
    (digests, sigs)
}

fn pairs<'a>(digests: &[Digest], sigs: &'a [Vec<u8>]) -> Vec<(Digest, &'a [u8])> {
    digests
        .iter()
        .zip(sigs)
        .map(|(d, s)| (*d, s.as_slice()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch verdicts equal per-signature `RsaPublicKey::verify_digest`
    /// on every random valid/invalid mix: each corrupt signature is
    /// identified exactly, no valid one is dragged down with it.
    #[test]
    fn batch_equals_per_item(mangles in proptest::collection::vec(arb_mangle(), 0..14)) {
        let (digests, sigs) = build(&mangles);
        let items = pairs(&digests, &sigs);
        let batch = key().public_key().verify_digest_batch(&items);
        let individual: Vec<bool> = items
            .iter()
            .map(|(d, s)| {
                key().public_key().verify_digest(d, &RsaSignature::from_bytes(s.to_vec()))
            })
            .collect();
        prop_assert_eq!(batch, individual);
    }

    /// Reordering the batch never changes any item's verdict.
    #[test]
    fn batch_order_never_changes_accept_set(
        mangles in proptest::collection::vec(arb_mangle(), 2..12),
        rot in any::<usize>(),
    ) {
        let (digests, sigs) = build(&mangles);
        let items = pairs(&digests, &sigs);
        let forward = key().public_key().verify_digest_batch(&items);
        let mut rotated = items.clone();
        rotated.rotate_left(rot % items.len());
        let mut verdicts = key().public_key().verify_digest_batch(&rotated);
        verdicts.rotate_right(rot % items.len());
        prop_assert_eq!(forward, verdicts);
    }

    /// The stateful memo serves accepts, re-verifies rejects every time,
    /// and never flips a verdict across resubmissions.
    #[test]
    fn memo_never_caches_rejections(
        mangles in proptest::collection::vec(arb_mangle(), 1..10),
    ) {
        let (digests, sigs) = build(&mangles);
        let items = pairs(&digests, &sigs);
        let mut v = BatchVerifier::new(key().public_key().clone());
        let first = v.verify_batch(&items);
        let (hits0, fresh0) = v.stats();
        prop_assert_eq!(hits0, 0);
        prop_assert_eq!(fresh0, items.len() as u64);
        let second = v.verify_batch(&items);
        prop_assert_eq!(&second, &first);
        let accepted = first.iter().filter(|ok| **ok).count() as u64;
        let rejected = items.len() as u64 - accepted;
        let (hits1, fresh1) = v.stats();
        prop_assert_eq!(hits1, accepted, "every accept memoized");
        prop_assert_eq!(
            fresh1,
            items.len() as u64 + rejected,
            "every rejection re-verified from scratch"
        );
    }

    /// The `SignatureScheme::verify_batch` trait path (the RSA override)
    /// agrees with trait-level per-item `verify`.
    #[test]
    fn trait_batch_matches_trait_verify(
        mangles in proptest::collection::vec(arb_mangle(), 0..10),
    ) {
        let scheme = nwade_crypto::RsaScheme::new(key().clone());
        let (digests, sigs) = build(&mangles);
        let items = pairs(&digests, &sigs);
        let batch = scheme.verify_batch(&items);
        let individual: Vec<bool> =
            items.iter().map(|(d, s)| scheme.verify(d, s)).collect();
        prop_assert_eq!(batch, individual);
    }
}
