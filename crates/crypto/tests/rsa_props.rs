//! Property tests over the crypto crate's public API.

use nwade_crypto::merkle::leaf_hash;
use nwade_crypto::{sha256, MerkleTree, RsaKeyPair, RsaSignature};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared 512-bit key: big enough for multi-limb arithmetic, small
/// enough for a debug-build property sweep.
fn key() -> &'static RsaKeyPair {
    static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
    KEY.get_or_init(|| RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(0xBEEF)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sign/verify round-trips for arbitrary messages; any single-byte
    /// corruption of the signature fails.
    #[test]
    fn rsa_round_trip_and_corruption(
        message in proptest::collection::vec(any::<u8>(), 0..200),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let sig = key().sign(&message);
        prop_assert!(key().public_key().verify(&message, &sig));
        let mut bad = sig.as_bytes().to_vec();
        let i = flip_at % bad.len();
        bad[i] ^= 1 << flip_bit;
        prop_assert!(!key()
            .public_key()
            .verify(&message, &RsaSignature::from_bytes(bad)));
    }

    /// Signing commits to the message: different messages never share a
    /// signature.
    #[test]
    fn rsa_signatures_are_message_bound(
        a in proptest::collection::vec(any::<u8>(), 0..100),
        b in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assume!(a != b);
        let sig_a = key().sign(&a);
        prop_assert!(!key().public_key().verify(&b, &sig_a));
    }

    /// SHA-256 incremental hashing over arbitrary chunkings equals the
    /// one-shot digest.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
        boundaries.sort_unstable();
        let mut h = nwade_crypto::Sha256::new();
        let mut prev = 0;
        for b in boundaries {
            h.update(&data[prev..b]);
            prev = b;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// A Merkle proof transplanted to a different leaf index never
    /// verifies (binding to position, not just content).
    #[test]
    fn merkle_proofs_bind_position(
        n in 2usize..32,
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        let payloads: Vec<Vec<u8>> = (0..n).map(|k| format!("leaf-{k}").into_bytes()).collect();
        let tree = MerkleTree::from_leaves(&payloads);
        let i = i % n;
        let j = j % n;
        prop_assume!(i != j);
        let proof = tree.prove(i);
        prop_assert!(proof.verify(&leaf_hash(&payloads[i]), &tree.root()));
        prop_assert!(!proof.verify(&leaf_hash(&payloads[j]), &tree.root()));
    }
}
