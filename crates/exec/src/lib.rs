//! Deterministic chunked fan-out primitives.
//!
//! Both the tick engine (`nwade-sim`) and the AIM scheduler pre-pass
//! (`nwade-aim`) decompose work into *element-wise maps*: for every item
//! independently, compute a small result. Such a map can run over
//! contiguous chunks of the item list on worker threads and concatenate
//! the chunk results in chunk order — which is the original iteration
//! order — so the output is **bit-identical** to the serial loop. All
//! side effects stay serial in the reduction step.
//!
//! The helpers here encode that contract: the closure passed to
//! [`fan_out`] / [`fan_out_mut`] / [`fan_out_indices`] must be
//! element-wise, i.e. `f(a ++ b) == f(a) ++ f(b)`. Under that contract
//! the thread count is unobservable.

/// Below this many items a phase runs inline: spawning threads costs
/// more than the work itself.
pub const PARALLEL_CUTOFF: usize = 64;

/// The host's available parallelism (never 0).
pub fn host_threads() -> usize {
    rayon::current_num_threads().max(1)
}

/// Splits `0..n` into at most `threads` contiguous ranges.
fn ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = n.div_ceil(threads).max(1);
    (0..n.div_ceil(chunk))
        .map(|t| (t * chunk)..((t + 1) * chunk).min(n))
        .collect()
}

/// Runs an element-wise map over index ranges of `0..n`, concatenating
/// per-range results in range order. With `threads <= 1` (or few items)
/// this is exactly `f(0..n)`.
pub fn fan_out_indices<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    if threads <= 1 || n < PARALLEL_CUTOFF {
        return f(0..n);
    }
    let ranges = ranges(n, threads);
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(ranges.len(), Vec::new);
    rayon::scope(|s| {
        for (slot, range) in parts.iter_mut().zip(ranges) {
            let f = &f;
            s.spawn(move || *slot = f(range));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs an element-wise map over chunks of a shared slice.
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    if threads <= 1 || items.len() < PARALLEL_CUTOFF {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let pieces: Vec<&[T]> = items.chunks(chunk).collect();
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(pieces.len(), Vec::new);
    rayon::scope(|s| {
        for (slot, piece) in parts.iter_mut().zip(pieces) {
            let f = &f;
            s.spawn(move || *slot = f(piece));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs an element-wise map over disjoint mutable chunks of a slice —
/// the shape of phases that advance vehicle state or drive the guards.
pub fn fan_out_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut [T]) -> Vec<R> + Sync,
{
    fan_out_mut_with_cutoff(items, threads, PARALLEL_CUTOFF, f)
}

/// [`fan_out_mut`] with an explicit inline cutoff. Per-vehicle phases
/// keep [`PARALLEL_CUTOFF`] (thousands of cheap items), but coarse
/// units of work — one city shard's whole tick — are worth a thread
/// each even when there are only a handful of them.
pub fn fan_out_mut_with_cutoff<T, R, F>(
    items: &mut [T],
    threads: usize,
    cutoff: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut [T]) -> Vec<R> + Sync,
{
    if threads <= 1 || items.len() < cutoff {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let pieces: Vec<&mut [T]> = items.chunks_mut(chunk).collect();
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(pieces.len(), Vec::new);
    rayon::scope(|s| {
        for (slot, piece) in parts.iter_mut().zip(pieces) {
            let f = &f;
            s.spawn(move || *slot = f(piece));
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_indices_matches_serial_map() {
        for n in [0usize, 1, 5, PARALLEL_CUTOFF, 1000, 1001] {
            for threads in [1usize, 2, 3, 8] {
                let out = fan_out_indices(n, threads, |range| {
                    range.map(|i| i * 3 + 1).collect::<Vec<_>>()
                });
                let expected: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
                assert_eq!(out, expected, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn fan_out_preserves_order_and_filtering() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1usize, 4] {
            let out = fan_out(&items, threads, |chunk| {
                chunk.iter().filter(|x| **x % 7 == 0).copied().collect()
            });
            let expected: Vec<u64> = items.iter().filter(|x| **x % 7 == 0).copied().collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn fan_out_mut_applies_every_element_once() {
        let mut items: Vec<u64> = vec![1; 999];
        let echoed = fan_out_mut(&mut items, 5, |chunk| {
            chunk
                .iter_mut()
                .map(|x| {
                    *x += 1;
                    *x
                })
                .collect()
        });
        assert!(items.iter().all(|x| *x == 2));
        assert_eq!(echoed, items);
    }

    #[test]
    fn host_threads_is_positive() {
        assert!(host_threads() >= 1);
    }

    #[test]
    fn cutoff_variant_matches_serial_at_any_cutoff() {
        for n in [0usize, 1, 2, 7, 16] {
            for threads in [1usize, 2, 8] {
                for cutoff in [1usize, 2, PARALLEL_CUTOFF] {
                    let mut items: Vec<u64> = (0..n as u64).collect();
                    let mut expected = items.clone();
                    let serial: Vec<u64> = expected
                        .iter_mut()
                        .map(|x| {
                            *x = *x * 2 + 1;
                            *x
                        })
                        .collect();
                    let out = fan_out_mut_with_cutoff(&mut items, threads, cutoff, |chunk| {
                        chunk
                            .iter_mut()
                            .map(|x| {
                                *x = *x * 2 + 1;
                                *x
                            })
                            .collect()
                    });
                    assert_eq!(items, expected, "n={n} threads={threads} cutoff={cutoff}");
                    assert_eq!(out, serial);
                }
            }
        }
    }
}
