//! Circular arcs, used for turning movements and roundabout lanes.

use crate::Vec2;
use serde::{Deserialize, Serialize};

/// A circular arc defined by center, radius, start angle and signed sweep.
///
/// A positive sweep runs counter-clockwise. Angles are radians from +x.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    center: Vec2,
    radius: f64,
    start_angle: f64,
    sweep: f64,
}

impl Arc {
    /// Creates an arc.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn new(center: Vec2, radius: f64, start_angle: f64, sweep: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "arc radius must be positive and finite, got {radius}"
        );
        Arc {
            center,
            radius,
            start_angle,
            sweep,
        }
    }

    /// Center of curvature.
    pub fn center(&self) -> Vec2 {
        self.center
    }

    /// Radius of curvature.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Start angle in radians.
    pub fn start_angle(&self) -> f64 {
        self.start_angle
    }

    /// Signed sweep in radians (positive = counter-clockwise).
    pub fn sweep(&self) -> f64 {
        self.sweep
    }

    /// Arc length.
    pub fn length(&self) -> f64 {
        self.radius * self.sweep.abs()
    }

    /// Point at arclength `s` from the start, clamped to the arc.
    pub fn point_at(&self, s: f64) -> Vec2 {
        let len = self.length();
        let t = if len < crate::EPSILON {
            0.0
        } else {
            (s / len).clamp(0.0, 1.0)
        };
        let angle = self.start_angle + self.sweep * t;
        self.center + Vec2::from_angle(angle) * self.radius
    }

    /// Unit tangent at arclength `s` (direction of travel).
    pub fn heading_at(&self, s: f64) -> Vec2 {
        let len = self.length();
        let t = if len < crate::EPSILON {
            0.0
        } else {
            (s / len).clamp(0.0, 1.0)
        };
        let angle = self.start_angle + self.sweep * t;
        let radial = Vec2::from_angle(angle);
        if self.sweep >= 0.0 {
            radial.perp()
        } else {
            -radial.perp()
        }
    }

    /// Start point of the arc.
    pub fn start(&self) -> Vec2 {
        self.point_at(0.0)
    }

    /// End point of the arc.
    pub fn end(&self) -> Vec2 {
        self.point_at(self.length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn quarter_circle_length_and_endpoints() {
        let arc = Arc::new(Vec2::ZERO, 10.0, 0.0, FRAC_PI_2);
        assert!((arc.length() - 10.0 * FRAC_PI_2).abs() < 1e-12);
        assert!(arc.start().distance(Vec2::new(10.0, 0.0)) < 1e-12);
        assert!(arc.end().distance(Vec2::new(0.0, 10.0)) < 1e-12);
    }

    #[test]
    fn clockwise_sweep_reverses_direction() {
        let arc = Arc::new(Vec2::ZERO, 5.0, FRAC_PI_2, -FRAC_PI_2);
        assert!(arc.start().distance(Vec2::new(0.0, 5.0)) < 1e-12);
        assert!(arc.end().distance(Vec2::new(5.0, 0.0)) < 1e-12);
    }

    #[test]
    fn heading_is_tangential() {
        let arc = Arc::new(Vec2::ZERO, 10.0, 0.0, PI);
        // At the start (point (10,0)) a CCW arc heads in +y.
        assert!(arc.heading_at(0.0).distance(Vec2::new(0.0, 1.0)) < 1e-12);
        // Halfway (point (0,10)) it heads in -x.
        assert!(
            arc.heading_at(arc.length() / 2.0)
                .distance(Vec2::new(-1.0, 0.0))
                < 1e-12
        );
    }

    #[test]
    fn heading_clockwise() {
        let arc = Arc::new(Vec2::ZERO, 10.0, FRAC_PI_2, -FRAC_PI_2);
        // Start at (0,10), moving clockwise → +x direction.
        assert!(arc.heading_at(0.0).distance(Vec2::new(1.0, 0.0)) < 1e-12);
    }

    #[test]
    fn point_at_clamps() {
        let arc = Arc::new(Vec2::ZERO, 10.0, 0.0, FRAC_PI_2);
        assert!(arc.point_at(-1.0).distance(arc.start()) < 1e-12);
        assert!(arc.point_at(1e9).distance(arc.end()) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        let _ = Arc::new(Vec2::ZERO, 0.0, 0.0, 1.0);
    }
}
