//! Spatio-temporal conflict detection between trajectories.
//!
//! A *trajectory* is a (path, motion profile, footprint) triple. Two
//! trajectories conflict when the moving footprints come closer than their
//! combined collision distance at any common instant. This is the check a
//! vehicle runs on a received block of travel plans (Algorithm 1 step ii)
//! and the invariant the AIM scheduler must maintain.

use crate::{Footprint, MotionProfile, Path};
use serde::{Deserialize, Serialize};

/// A closed time interval `[start, end]` in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Interval start (inclusive).
    pub start: f64,
    /// Interval end (inclusive). May be `f64::INFINITY` for "never exits".
    pub end: f64,
}

impl TimeInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        TimeInterval { start, end }
    }

    /// `true` when the two intervals overlap, treating each as padded by
    /// `gap / 2` on both sides (i.e. requiring a temporal buffer of `gap`).
    pub fn overlaps_with_gap(&self, other: &TimeInterval, gap: f64) -> bool {
        self.start <= other.end + gap && other.start <= self.end + gap
    }

    /// `true` when the two intervals overlap at all.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.overlaps_with_gap(other, 0.0)
    }

    /// Duration of the interval.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The time interval during which `profile` occupies arclength positions
/// `[s0, s1]` of its path, or `None` if it never enters.
///
/// `s1` may lie beyond the reachable range, in which case the exit time is
/// `f64::INFINITY` only if the vehicle stops inside the zone; otherwise it
/// is the crossing time of `s1`.
pub fn occupancy_interval(profile: &MotionProfile, s0: f64, s1: f64) -> Option<TimeInterval> {
    assert!(s1 >= s0, "zone exit {s1} precedes entry {s0}");
    let entry = profile.time_at_position(s0)?;
    let exit = profile.time_at_position(s1).unwrap_or(f64::INFINITY);
    Some(TimeInterval::new(entry, exit.max(entry)))
}

/// Configuration of the sampling conflict checker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConflictCheck {
    /// Sampling period in seconds.
    pub dt: f64,
    /// How far into the future to check, from the later profile start.
    pub horizon: f64,
}

impl Default for ConflictCheck {
    fn default() -> Self {
        // 100 ms sampling over a two-minute horizon covers any crossing of
        // a single intersection at the paper's speeds.
        ConflictCheck {
            dt: 0.1,
            horizon: 120.0,
        }
    }
}

impl ConflictCheck {
    /// Creates a checker with the given sampling period and horizon.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(dt: f64, horizon: f64) -> Self {
        assert!(dt > 0.0 && horizon > 0.0, "dt and horizon must be positive");
        ConflictCheck { dt, horizon }
    }

    /// Returns the first time at which the two trajectories come within
    /// collision distance, or `None` when they never do within the horizon.
    pub fn first_conflict(
        &self,
        a: (&Path, &MotionProfile, &Footprint),
        b: (&Path, &MotionProfile, &Footprint),
    ) -> Option<f64> {
        let (path_a, prof_a, fp_a) = a;
        let (path_b, prof_b, fp_b) = b;
        let min_dist = fp_a.collision_distance(fp_b);
        let min_dist_sq = min_dist * min_dist;
        let t0 = prof_a.start_time().max(prof_b.start_time());
        // A vehicle that has travelled past the end of its path has left
        // the conflict area entirely; stop checking once either exits.
        let exit_a = prof_a
            .time_at_position(path_a.length())
            .unwrap_or(f64::INFINITY);
        let exit_b = prof_b
            .time_at_position(path_b.length())
            .unwrap_or(f64::INFINITY);
        let t_end = (t0 + self.horizon).min(exit_a).min(exit_b);
        let mut t = t0;
        while t <= t_end {
            let pa = path_a.point_at(prof_a.position_at(t));
            let pb = path_b.point_at(prof_b.position_at(t));
            if pa.distance_sq(pb) < min_dist_sq {
                return Some(t);
            }
            // Skip ahead proportionally to the separation: the gap closes
            // at most at twice the speed limit (~45 m/s), so a large gap
            // cannot vanish within one coarse step.
            let gap = pa.distance(pb) - min_dist;
            let skip = (gap / 90.0).max(self.dt);
            t += skip;
        }
        None
    }

    /// `true` when the trajectories conflict within the horizon.
    pub fn conflicts(
        &self,
        a: (&Path, &MotionProfile, &Footprint),
        b: (&Path, &MotionProfile, &Footprint),
    ) -> bool {
        self.first_conflict(a, b).is_some()
    }
}

/// Convenience wrapper: checks two trajectories with the default
/// [`ConflictCheck`].
pub fn trajectories_conflict(
    a: (&Path, &MotionProfile, &Footprint),
    b: (&Path, &MotionProfile, &Footprint),
) -> bool {
    ConflictCheck::default().conflicts(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec2;

    fn east_path() -> Path {
        Path::line(Vec2::new(-100.0, 0.0), Vec2::new(100.0, 0.0))
    }

    fn north_path() -> Path {
        Path::line(Vec2::new(0.0, -100.0), Vec2::new(0.0, 100.0))
    }

    #[test]
    fn interval_overlap_rules() {
        let a = TimeInterval::new(0.0, 5.0);
        let b = TimeInterval::new(4.0, 8.0);
        let c = TimeInterval::new(6.0, 8.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        // With a 2-second required gap, a and c are too close.
        assert!(a.overlaps_with_gap(&c, 2.0));
        assert!((a.duration() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn inverted_interval_panics() {
        let _ = TimeInterval::new(5.0, 1.0);
    }

    #[test]
    fn occupancy_of_cruising_vehicle() {
        // 10 m/s along a 200 m path; zone is [100, 120] from path start.
        let prof = MotionProfile::cruise(0.0, 10.0, 200.0);
        let iv = occupancy_interval(&prof, 100.0, 120.0).expect("enters zone");
        assert!((iv.start - 10.0).abs() < 1e-9);
        assert!((iv.end - 12.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_of_stopping_vehicle() {
        // Brakes from 10 m/s at 2 m/s²: stops after 25 m, never reaches 30.
        let prof = MotionProfile::brake_to_stop(0.0, 0.0, 10.0, 2.0);
        assert!(occupancy_interval(&prof, 30.0, 40.0).is_none());
        // Stops *inside* [20, 40]: exit is infinite.
        let iv = occupancy_interval(&prof, 20.0, 40.0).expect("enters zone");
        assert!(iv.end.is_infinite());
    }

    #[test]
    fn crossing_vehicles_meeting_at_center_conflict() {
        // Both arrive at the origin at t = 10 s.
        let a = (east_path(), MotionProfile::cruise(0.0, 10.0, 200.0));
        let b = (north_path(), MotionProfile::cruise(0.0, 10.0, 200.0));
        let fp = Footprint::CAR;
        assert!(trajectories_conflict((&a.0, &a.1, &fp), (&b.0, &b.1, &fp)));
    }

    #[test]
    fn staggered_vehicles_do_not_conflict() {
        // Second vehicle starts 8 s later: they miss each other at the
        // origin by 80 m.
        let a = (east_path(), MotionProfile::cruise(0.0, 10.0, 200.0));
        let b = (north_path(), MotionProfile::cruise(8.0, 10.0, 200.0));
        let fp = Footprint::CAR;
        assert!(!trajectories_conflict((&a.0, &a.1, &fp), (&b.0, &b.1, &fp)));
    }

    #[test]
    fn same_lane_followers_with_headway_do_not_conflict() {
        let path = east_path();
        let lead = MotionProfile::cruise(0.0, 10.0, 200.0);
        // Follower starts 3 s behind: 30 m headway at equal speed.
        let follow = MotionProfile::cruise(3.0, 10.0, 200.0);
        let fp = Footprint::CAR;
        assert!(!trajectories_conflict(
            (&path, &lead, &fp),
            (&path, &follow, &fp)
        ));
    }

    #[test]
    fn rear_end_collision_detected() {
        let path = east_path();
        let lead = MotionProfile::brake_to_stop(0.0, 50.0, 10.0, 3.0);
        // Follower cruises from the path start and plows into the stopped
        // leader.
        let follow = MotionProfile::cruise(0.0, 15.0, 200.0);
        let fp = Footprint::CAR;
        let t = ConflictCheck::default()
            .first_conflict((&path, &follow, &fp), (&path, &lead, &fp))
            .expect("rear-end collision");
        assert!(t > 0.0 && t < 20.0, "collision at t={t}");
    }

    #[test]
    fn first_conflict_time_is_accurate() {
        // Head-on: A eastbound from -100 at 10 m/s, B westbound... our
        // paths only move forward, so emulate with two east paths offset.
        let pa = Path::line(Vec2::new(0.0, 0.0), Vec2::new(200.0, 0.0));
        let pb = Path::line(Vec2::new(100.0, 0.0), Vec2::new(100.0, 0.001));
        let a = MotionProfile::cruise(0.0, 10.0, 200.0);
        let b = MotionProfile::stopped(0.0, 0.0);
        let fp = Footprint::CAR;
        let t = ConflictCheck::default()
            .first_conflict((&pa, &a, &fp), (&pb, &b, &fp))
            .expect("collides with the parked car");
        // Collision distance for two cars ≈ 5.16 m; reaching x≈94.8 m at
        // 10 m/s happens at ≈ 9.5 s.
        assert!((t - 9.48).abs() < 0.2, "collision at t={t}");
    }

    #[test]
    fn checker_respects_horizon() {
        let a = (east_path(), MotionProfile::cruise(0.0, 1.0, 200.0));
        let b = (north_path(), MotionProfile::cruise(0.0, 1.0, 200.0));
        let fp = Footprint::CAR;
        // Meeting at t=100 s; a 10 s horizon cannot see it.
        let short = ConflictCheck::new(0.1, 10.0);
        assert!(!short.conflicts((&a.0, &a.1, &fp), (&b.0, &b.1, &fp)));
        let long = ConflictCheck::new(0.1, 150.0);
        assert!(long.conflicts((&a.0, &a.1, &fp), (&b.0, &b.1, &fp)));
    }
}
