//! Vehicle footprints used in conflict detection.

use serde::{Deserialize, Serialize};

/// The physical extent of a vehicle, approximated for conflict tests by
/// a bounding disc around its reference point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    length: f64,
    width: f64,
}

impl Footprint {
    /// A typical passenger car: 4.8 m × 1.9 m.
    pub const CAR: Footprint = Footprint {
        length: 4.8,
        width: 1.9,
    };

    /// Creates a footprint.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive or not finite.
    pub fn new(length: f64, width: f64) -> Self {
        assert!(
            length.is_finite() && length > 0.0 && width.is_finite() && width > 0.0,
            "footprint dimensions must be positive, got {length} x {width}"
        );
        Footprint { length, width }
    }

    /// Vehicle length in meters.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Vehicle width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Radius of the bounding disc (half diagonal).
    pub fn bounding_radius(&self) -> f64 {
        0.5 * (self.length * self.length + self.width * self.width).sqrt()
    }

    /// Conservative clearance: two footprints collide when their reference
    /// points come closer than the sum of bounding radii.
    pub fn collision_distance(&self, other: &Footprint) -> f64 {
        self.bounding_radius() + other.bounding_radius()
    }
}

impl Default for Footprint {
    fn default() -> Self {
        Footprint::CAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn car_constants() {
        let c = Footprint::CAR;
        assert_eq!(c.length(), 4.8);
        assert_eq!(c.width(), 1.9);
        assert_eq!(Footprint::default(), c);
    }

    #[test]
    fn bounding_radius_is_half_diagonal() {
        let f = Footprint::new(3.0, 4.0);
        assert!((f.bounding_radius() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn collision_distance_is_symmetric() {
        let a = Footprint::new(4.0, 2.0);
        let b = Footprint::new(6.0, 2.5);
        assert_eq!(a.collision_distance(&b), b.collision_distance(&a));
        assert!(a.collision_distance(&b) > a.bounding_radius());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_panics() {
        let _ = Footprint::new(0.0, 2.0);
    }
}
