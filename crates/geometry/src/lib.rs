//! 2-D geometry, kinematic motion profiles and trajectory conflict detection
//! for the NWADE reproduction.
//!
//! This crate is the lowest-level substrate of the workspace. It knows
//! nothing about vehicles, intersections or security — it provides:
//!
//! * [`Vec2`] and unit conversions ([`units`]) used everywhere above,
//! * composable paths ([`Path`]) made of line segments and circular arcs,
//! * piecewise-constant-acceleration [`MotionProfile`]s along a path,
//! * spatio-temporal [`conflict`] detection between two moving footprints,
//! * brute-force and grid-based [`range`] queries used for sensing.
//!
//! # Example
//!
//! ```
//! use nwade_geometry::{Path, Vec2, MotionProfile};
//!
//! let path = Path::line(Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0));
//! let profile = MotionProfile::cruise(0.0, 10.0, path.length());
//! let (pos, speed) = (profile.position_at(2.0), profile.speed_at(2.0));
//! assert_eq!(pos, 20.0);
//! assert_eq!(speed, 10.0);
//! let world = path.point_at(pos);
//! assert!((world.x - 20.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod arc;
pub mod conflict;
pub mod footprint;
pub mod path;
pub mod profile;
pub mod range;
pub mod segment;
pub mod units;
pub mod vec2;

pub use arc::Arc;
pub use conflict::{occupancy_interval, trajectories_conflict, ConflictCheck, TimeInterval};
pub use footprint::Footprint;
pub use path::{Path, PathBuilder, PathElement};
pub use profile::{MotionProfile, ProfileSegment};
pub use range::{within_radius, GridIndex};
pub use segment::LineSegment;
pub use units::{feet_to_meters, meters_to_feet, mph_to_mps, mps_to_mph};
pub use vec2::Vec2;

/// Numerical tolerance used by geometric comparisons in this crate.
pub const EPSILON: f64 = 1e-9;
