//! Composite paths built from line segments and arcs.

use crate::{Arc, LineSegment, Vec2};
use serde::{Deserialize, Serialize};

/// One element of a composite [`Path`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathElement {
    /// A straight piece.
    Line(LineSegment),
    /// A circular piece.
    Arc(Arc),
}

impl PathElement {
    /// Arc length of the element.
    pub fn length(&self) -> f64 {
        match self {
            PathElement::Line(s) => s.length(),
            PathElement::Arc(a) => a.length(),
        }
    }

    /// Point at arclength `s` within the element.
    pub fn point_at(&self, s: f64) -> Vec2 {
        match self {
            PathElement::Line(l) => l.point_at(s),
            PathElement::Arc(a) => a.point_at(s),
        }
    }

    /// Unit tangent at arclength `s` within the element.
    pub fn heading_at(&self, s: f64) -> Vec2 {
        match self {
            PathElement::Line(l) => l.heading_at(s),
            PathElement::Arc(a) => a.heading_at(s),
        }
    }

    /// Start point of the element.
    pub fn start(&self) -> Vec2 {
        self.point_at(0.0)
    }

    /// End point of the element.
    pub fn end(&self) -> Vec2 {
        self.point_at(self.length())
    }
}

/// A connected sequence of path elements with precomputed cumulative
/// arclengths, supporting O(log n) point lookup.
///
/// Paths represent lane center lines: an approach segment, a turning arc
/// through the intersection box, and an exit segment, for example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    elements: Vec<PathElement>,
    /// `cumulative[i]` is the arclength at the *end* of element `i`.
    cumulative: Vec<f64>,
}

impl Path {
    /// Builds a path from elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty or consecutive elements are not
    /// connected end-to-start (within 1 cm).
    pub fn new(elements: Vec<PathElement>) -> Self {
        assert!(
            !elements.is_empty(),
            "path must contain at least one element"
        );
        for w in elements.windows(2) {
            let gap = w[0].end().distance(w[1].start());
            assert!(
                gap < 0.01,
                "path elements must be connected; found a gap of {gap} m"
            );
        }
        let mut cumulative = Vec::with_capacity(elements.len());
        let mut total = 0.0;
        for e in &elements {
            total += e.length();
            cumulative.push(total);
        }
        Path {
            elements,
            cumulative,
        }
    }

    /// Convenience constructor: a single straight path.
    pub fn line(start: Vec2, end: Vec2) -> Self {
        Path::new(vec![PathElement::Line(LineSegment::new(start, end))])
    }

    /// The elements of the path.
    pub fn elements(&self) -> &[PathElement] {
        &self.elements
    }

    /// Total arclength.
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("path is non-empty")
    }

    /// Start point.
    pub fn start(&self) -> Vec2 {
        self.elements[0].start()
    }

    /// End point.
    pub fn end(&self) -> Vec2 {
        self.elements[self.elements.len() - 1].end()
    }

    fn locate(&self, s: f64) -> (usize, f64) {
        let s = s.clamp(0.0, self.length());
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arclength"))
        {
            Ok(i) => (i + 1).min(self.elements.len() - 1),
            Err(i) => i.min(self.elements.len() - 1),
        };
        let elem_start = if idx == 0 {
            0.0
        } else {
            self.cumulative[idx - 1]
        };
        (idx, s - elem_start)
    }

    /// World point at arclength `s` from the start (clamped to the path).
    pub fn point_at(&self, s: f64) -> Vec2 {
        let (i, local) = self.locate(s);
        self.elements[i].point_at(local)
    }

    /// Unit tangent at arclength `s` (clamped).
    pub fn heading_at(&self, s: f64) -> Vec2 {
        let (i, local) = self.locate(s);
        self.elements[i].heading_at(local)
    }

    /// Arclength of the point on the path closest to `p`, found by
    /// sampling every `step` meters and refining around the best sample.
    pub fn project(&self, p: Vec2, step: f64) -> f64 {
        let step = step.max(0.01);
        let len = self.length();
        let mut best_s = 0.0;
        let mut best_d = f64::INFINITY;
        let mut s = 0.0;
        while s <= len {
            let d = self.point_at(s).distance_sq(p);
            if d < best_d {
                best_d = d;
                best_s = s;
            }
            s += step;
        }
        // Golden-section style refinement around the best sample.
        let mut lo = (best_s - step).max(0.0);
        let mut hi = (best_s + step).min(len);
        for _ in 0..32 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if self.point_at(m1).distance_sq(p) < self.point_at(m2).distance_sq(p) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        (lo + hi) / 2.0
    }

    /// Samples the path every `step` meters (including both endpoints).
    pub fn sample(&self, step: f64) -> Vec<Vec2> {
        let step = step.max(0.01);
        let len = self.length();
        let mut out = Vec::new();
        let mut s = 0.0;
        while s < len {
            out.push(self.point_at(s));
            s += step;
        }
        out.push(self.end());
        out
    }
}

/// Incremental builder for [`Path`]s: start somewhere and append straight
/// and curved pieces; each piece starts where the previous ended.
#[derive(Debug, Clone)]
pub struct PathBuilder {
    elements: Vec<PathElement>,
    cursor: Vec2,
    heading: Vec2,
}

impl PathBuilder {
    /// Starts a path at `start` heading toward `heading` (normalized).
    pub fn new(start: Vec2, heading: Vec2) -> Self {
        PathBuilder {
            elements: Vec::new(),
            cursor: start,
            heading: heading.normalized(),
        }
    }

    /// Appends a straight piece of `distance` meters.
    pub fn forward(&mut self, distance: f64) -> &mut Self {
        let end = self.cursor + self.heading * distance;
        self.elements
            .push(PathElement::Line(LineSegment::new(self.cursor, end)));
        self.cursor = end;
        self
    }

    /// Appends an arc turning left (counter-clockwise) through `angle`
    /// radians with the given `radius`.
    pub fn turn_left(&mut self, radius: f64, angle: f64) -> &mut Self {
        self.turn(radius, angle, true)
    }

    /// Appends an arc turning right (clockwise) through `angle` radians.
    pub fn turn_right(&mut self, radius: f64, angle: f64) -> &mut Self {
        self.turn(radius, angle, false)
    }

    fn turn(&mut self, radius: f64, angle: f64, left: bool) -> &mut Self {
        let center = if left {
            self.cursor + self.heading.perp() * radius
        } else {
            self.cursor - self.heading.perp() * radius
        };
        let start_angle = (self.cursor - center).angle();
        let sweep = if left { angle } else { -angle };
        let arc = Arc::new(center, radius, start_angle, sweep);
        self.cursor = arc.end();
        self.heading = arc.heading_at(arc.length());
        self.elements.push(PathElement::Arc(arc));
        self
    }

    /// Current cursor position (end of the path so far).
    pub fn cursor(&self) -> Vec2 {
        self.cursor
    }

    /// Current heading.
    pub fn heading(&self) -> Vec2 {
        self.heading
    }

    /// Finishes the path.
    ///
    /// # Panics
    ///
    /// Panics if no element was appended.
    pub fn build(&self) -> Path {
        Path::new(self.elements.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn l_path() -> Path {
        // 100 m east, quarter-turn left with r=10, then 50 m north.
        let mut b = PathBuilder::new(Vec2::ZERO, Vec2::new(1.0, 0.0));
        b.forward(100.0).turn_left(10.0, FRAC_PI_2).forward(50.0);
        b.build()
    }

    #[test]
    fn builder_produces_connected_path() {
        let p = l_path();
        assert_eq!(p.elements().len(), 3);
        let expected_len = 100.0 + 10.0 * FRAC_PI_2 + 50.0;
        assert!((p.length() - expected_len).abs() < 1e-9);
        // End point: (110, 60) — turn center at (100,10), arc ends (110,10),
        // then 50 m north.
        assert!(p.end().distance(Vec2::new(110.0, 60.0)) < 1e-9);
    }

    #[test]
    fn point_at_crosses_element_boundaries() {
        let p = l_path();
        assert!(p.point_at(50.0).distance(Vec2::new(50.0, 0.0)) < 1e-9);
        // Halfway around the quarter arc of r=10 centered at (100, 10):
        // radial angle goes from -π/2 to -π/4, landing at
        // (100 + 10·cos(-π/4), 10 + 10·sin(-π/4)).
        let on_arc = p.point_at(100.0 + 5.0 * FRAC_PI_2);
        let expected = Vec2::new(100.0, 10.0) + Vec2::from_angle(-FRAC_PI_2 / 2.0) * 10.0;
        assert!(
            on_arc.distance(expected) < 1e-9,
            "got {on_arc}, want {expected}"
        );
    }

    #[test]
    fn heading_changes_after_turn() {
        let p = l_path();
        assert!(p.heading_at(10.0).distance(Vec2::new(1.0, 0.0)) < 1e-9);
        assert!(p.heading_at(p.length() - 1.0).distance(Vec2::new(0.0, 1.0)) < 1e-9);
    }

    #[test]
    fn project_recovers_arclength() {
        let p = l_path();
        for s in [0.0, 25.0, 100.0, 130.0, p.length()] {
            let q = p.point_at(s);
            let s2 = p.project(q, 1.0);
            assert!(
                p.point_at(s2).distance(q) < 0.05,
                "projection of point at s={s} landed {} m away",
                p.point_at(s2).distance(q)
            );
        }
    }

    #[test]
    fn sample_covers_endpoints() {
        let p = Path::line(Vec2::ZERO, Vec2::new(10.0, 0.0));
        let pts = p.sample(3.0);
        assert_eq!(pts.first().copied(), Some(Vec2::ZERO));
        assert_eq!(pts.last().copied(), Some(Vec2::new(10.0, 0.0)));
        assert!(pts.len() >= 4);
    }

    #[test]
    fn line_constructor() {
        let p = Path::line(Vec2::ZERO, Vec2::new(3.0, 4.0));
        assert_eq!(p.length(), 5.0);
        assert_eq!(p.start(), Vec2::ZERO);
        assert_eq!(p.end(), Vec2::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn disconnected_elements_panic() {
        let a = PathElement::Line(LineSegment::new(Vec2::ZERO, Vec2::new(1.0, 0.0)));
        let b = PathElement::Line(LineSegment::new(Vec2::new(5.0, 5.0), Vec2::new(6.0, 5.0)));
        let _ = Path::new(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_path_panics() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn turn_right_mirrors_turn_left() {
        let mut b = PathBuilder::new(Vec2::ZERO, Vec2::new(1.0, 0.0));
        b.turn_right(10.0, FRAC_PI_2);
        let p = b.build();
        assert!(p.end().distance(Vec2::new(10.0, -10.0)) < 1e-9);
        assert!(p.heading_at(p.length()).distance(Vec2::new(0.0, -1.0)) < 1e-9);
    }
}
