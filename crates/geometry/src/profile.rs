//! Piecewise-constant-acceleration motion profiles along a path.
//!
//! A [`MotionProfile`] maps simulation time to (arclength position, speed)
//! along some [`crate::Path`]. Travel-plan instructions in the AIM layer
//! are exactly such profiles, so a watcher vehicle can compute the
//! *expected* status of a neighbour at any time (Algorithm 2 of the paper)
//! by evaluating the profile.

use serde::{Deserialize, Serialize};

/// One constant-acceleration piece of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSegment {
    /// Duration of the piece in seconds (non-negative).
    pub duration: f64,
    /// Signed acceleration in m/s².
    pub accel: f64,
}

impl ProfileSegment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or not finite.
    pub fn new(duration: f64, accel: f64) -> Self {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "segment duration must be non-negative, got {duration}"
        );
        ProfileSegment { duration, accel }
    }
}

/// A motion profile: start state plus acceleration segments.
///
/// After the last segment the vehicle continues at its final speed
/// indefinitely (a vehicle that braked to zero stays stopped).
///
/// Speeds are clamped at zero: a deceleration segment never produces
/// negative speed, matching real vehicles which do not reverse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionProfile {
    start_time: f64,
    start_position: f64,
    start_speed: f64,
    segments: Vec<ProfileSegment>,
}

impl MotionProfile {
    /// Creates a profile from a start state and segments.
    ///
    /// # Panics
    ///
    /// Panics if `start_speed` is negative.
    pub fn new(
        start_time: f64,
        start_position: f64,
        start_speed: f64,
        segments: Vec<ProfileSegment>,
    ) -> Self {
        assert!(
            start_speed >= 0.0,
            "start speed must be non-negative, got {start_speed}"
        );
        MotionProfile {
            start_time,
            start_position,
            start_speed,
            segments,
        }
    }

    /// A constant-speed profile starting at position 0 covering `distance`.
    pub fn cruise(start_time: f64, speed: f64, distance: f64) -> Self {
        assert!(speed >= 0.0, "cruise speed must be non-negative");
        let duration = if speed > 0.0 { distance / speed } else { 0.0 };
        MotionProfile::new(
            start_time,
            0.0,
            speed,
            vec![ProfileSegment::new(duration, 0.0)],
        )
    }

    /// A profile standing still at `position`.
    pub fn stopped(start_time: f64, position: f64) -> Self {
        MotionProfile::new(start_time, position, 0.0, Vec::new())
    }

    /// Time at which the profile begins.
    pub fn start_time(&self) -> f64 {
        self.start_time
    }

    /// Position at the profile start.
    pub fn start_position(&self) -> f64 {
        self.start_position
    }

    /// Speed at the profile start.
    pub fn start_speed(&self) -> f64 {
        self.start_speed
    }

    /// The acceleration segments.
    pub fn segments(&self) -> &[ProfileSegment] {
        &self.segments
    }

    /// Time at which the last segment ends.
    pub fn end_time(&self) -> f64 {
        self.start_time + self.segments.iter().map(|s| s.duration).sum::<f64>()
    }

    /// Speed after the last segment.
    pub fn final_speed(&self) -> f64 {
        self.state_at(self.end_time()).1
    }

    /// Position at the end of the last segment.
    pub fn end_position(&self) -> f64 {
        self.state_at(self.end_time()).0
    }

    /// (position, speed) at absolute time `t`.
    ///
    /// Before `start_time` the start state is returned; after the last
    /// segment the vehicle cruises at its final speed.
    pub fn state_at(&self, t: f64) -> (f64, f64) {
        if t <= self.start_time {
            return (self.start_position, self.start_speed);
        }
        let mut pos = self.start_position;
        let mut speed = self.start_speed;
        let mut clock = self.start_time;
        for seg in &self.segments {
            let seg_end = clock + seg.duration;
            let dt_full = seg.duration;
            let dt = (t - clock).min(dt_full);
            let (p, v) = integrate(pos, speed, seg.accel, dt);
            if t <= seg_end {
                return (p, v);
            }
            let (p_full, v_full) = integrate(pos, speed, seg.accel, dt_full);
            pos = p_full;
            speed = v_full;
            clock = seg_end;
        }
        // Cruise at the final speed beyond the profile.
        (pos + speed * (t - clock), speed)
    }

    /// Position along the path at absolute time `t`.
    pub fn position_at(&self, t: f64) -> f64 {
        self.state_at(t).0
    }

    /// Speed at absolute time `t`.
    pub fn speed_at(&self, t: f64) -> f64 {
        self.state_at(t).1
    }

    /// Absolute time at which the profile first reaches position `s`.
    ///
    /// Returns `None` if the profile never reaches `s` (for example it
    /// brakes to a stop first). Positions are monotone non-decreasing, so
    /// this is the unique crossing time when it exists.
    pub fn time_at_position(&self, s: f64) -> Option<f64> {
        if s <= self.start_position {
            return Some(self.start_time);
        }
        let mut pos = self.start_position;
        let mut speed = self.start_speed;
        let mut clock = self.start_time;
        for seg in &self.segments {
            let (end_pos, end_speed) = integrate(pos, speed, seg.accel, seg.duration);
            if end_pos >= s {
                let dt = solve_crossing(pos, speed, seg.accel, s - pos, seg.duration)?;
                return Some(clock + dt);
            }
            pos = end_pos;
            speed = end_speed;
            clock += seg.duration;
        }
        if speed > crate::EPSILON {
            Some(clock + (s - pos) / speed)
        } else {
            None
        }
    }

    /// Appends a segment, returning the modified profile (builder style).
    pub fn with_segment(mut self, duration: f64, accel: f64) -> Self {
        self.segments.push(ProfileSegment::new(duration, accel));
        self
    }

    /// Rebases the profile to start at `position`, keeping time, speed
    /// and segments (builder style). The planners build profiles with
    /// [`MotionProfile::arrive_at`] — which starts at position 0 — and
    /// rebase them onto the vehicle's current arclength; this avoids
    /// cloning the segment vector for that.
    pub fn with_start_position(mut self, position: f64) -> Self {
        self.start_position = position;
        self
    }

    /// The earliest time a vehicle with these limits can reach `distance`.
    ///
    /// The vehicle starts at speed `v0`, accelerates at `a_max` up to
    /// `v_max`, then cruises.
    pub fn earliest_arrival(v0: f64, v_max: f64, a_max: f64, distance: f64) -> f64 {
        assert!(v_max > 0.0 && a_max > 0.0, "limits must be positive");
        let v0 = v0.min(v_max);
        if distance <= 0.0 {
            return 0.0;
        }
        // Accelerate from v0 to v_max: covers x_acc in t_acc.
        let t_acc = (v_max - v0) / a_max;
        let x_acc = v0 * t_acc + 0.5 * a_max * t_acc * t_acc;
        if x_acc >= distance {
            // Never reaches v_max: solve 0.5 a t² + v0 t - d = 0.
            let disc = v0 * v0 + 2.0 * a_max * distance;
            (-v0 + disc.sqrt()) / a_max
        } else {
            t_acc + (distance - x_acc) / v_max
        }
    }

    /// Builds a profile that reaches `distance` as early as possible:
    /// accelerate at `a_max` to `v_max`, then cruise.
    pub fn fastest(start_time: f64, v0: f64, v_max: f64, a_max: f64, distance: f64) -> Self {
        let v0 = v0.min(v_max);
        let t_acc = (v_max - v0) / a_max;
        let x_acc = v0 * t_acc + 0.5 * a_max * t_acc * t_acc;
        if x_acc >= distance {
            let total = MotionProfile::earliest_arrival(v0, v_max, a_max, distance);
            MotionProfile::new(start_time, 0.0, v0, vec![ProfileSegment::new(total, a_max)])
        } else {
            let t_cruise = (distance - x_acc) / v_max;
            MotionProfile::new(
                start_time,
                0.0,
                v0,
                vec![
                    ProfileSegment::new(t_acc, a_max),
                    ProfileSegment::new(t_cruise, 0.0),
                ],
            )
        }
    }

    /// Builds a profile that reaches `distance` at exactly
    /// `start_time + horizon` (when feasible) by adjusting to a single
    /// target speed and holding it.
    ///
    /// The profile first accelerates or decelerates from `v0` to a target
    /// speed `v` (bounded by `v_max`, rates bounded by `a_max`/`d_max`),
    /// then cruises at `v`. The target speed is found by bisection so the
    /// distance covered over `horizon` equals `distance`.
    ///
    /// If the requested arrival is earlier than physically possible, the
    /// fastest profile is returned instead (arriving late); callers detect
    /// this by comparing arrival times.
    pub fn arrive_at(
        start_time: f64,
        v0: f64,
        v_max: f64,
        a_max: f64,
        d_max: f64,
        distance: f64,
        horizon: f64,
    ) -> Self {
        assert!(d_max > 0.0, "deceleration limit must be positive");
        let v0 = v0.min(v_max);
        if distance <= 0.0 {
            return MotionProfile::new(start_time, 0.0, v0, Vec::new());
        }
        if horizon <= 0.0 {
            return MotionProfile::fastest(start_time, v0, v_max, a_max, distance);
        }
        let covered = |v: f64| -> f64 {
            // Distance covered in `horizon` if we ramp from v0 to v then hold.
            let rate = if v >= v0 { a_max } else { d_max };
            let t_ramp = ((v - v0).abs() / rate).min(horizon);
            let a_signed = if v >= v0 { rate } else { -rate };
            let x_ramp = v0 * t_ramp + 0.5 * a_signed * t_ramp * t_ramp;
            let v_end = v0 + a_signed * t_ramp;
            x_ramp + v_end * (horizon - t_ramp)
        };
        if covered(v_max) < distance - 1e-9 {
            // Even flat-out we arrive late.
            return MotionProfile::fastest(start_time, v0, v_max, a_max, distance);
        }
        // Bisection for v in [0, v_max] (covered is monotone in v).
        let (mut lo, mut hi) = (0.0_f64, v_max);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if covered(mid) < distance {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let v = 0.5 * (lo + hi);
        let rate = if v >= v0 { a_max } else { d_max };
        let a_signed = if v >= v0 { rate } else { -rate };
        let t_ramp = ((v - v0).abs() / rate).min(horizon);
        let mut segments = Vec::new();
        if t_ramp > 0.0 {
            segments.push(ProfileSegment::new(t_ramp, a_signed));
        }
        if horizon - t_ramp > 0.0 {
            segments.push(ProfileSegment::new(horizon - t_ramp, 0.0));
        }
        MotionProfile::new(start_time, 0.0, v0, segments)
    }

    /// Builds a braking profile: decelerate at `d_max` from `v0` to a stop.
    pub fn brake_to_stop(start_time: f64, position: f64, v0: f64, d_max: f64) -> Self {
        assert!(d_max > 0.0, "deceleration limit must be positive");
        let t = v0 / d_max;
        MotionProfile::new(
            start_time,
            position,
            v0,
            vec![ProfileSegment::new(t, -d_max)],
        )
    }
}

/// Integrates constant-acceleration motion for `dt` seconds with speed
/// clamped at zero (a braking vehicle stops rather than reversing).
fn integrate(pos: f64, speed: f64, accel: f64, dt: f64) -> (f64, f64) {
    if accel < 0.0 {
        let t_stop = speed / (-accel);
        if dt >= t_stop {
            // Stops within the interval and stays stopped.
            let p = pos + speed * t_stop + 0.5 * accel * t_stop * t_stop;
            return (p, 0.0);
        }
    }
    let v = speed + accel * dt;
    let p = pos + speed * dt + 0.5 * accel * dt * dt;
    (p, v.max(0.0))
}

/// Solves for the time within `[0, duration]` at which constant-accel
/// motion from (0, `v0`) covers `target` meters. Returns `None` when the
/// target is never reached within the segment.
fn solve_crossing(_pos: f64, v0: f64, accel: f64, target: f64, duration: f64) -> Option<f64> {
    if target <= 0.0 {
        return Some(0.0);
    }
    if accel.abs() < crate::EPSILON {
        if v0 < crate::EPSILON {
            return None;
        }
        let t = target / v0;
        return (t <= duration + crate::EPSILON).then_some(t.min(duration));
    }
    // 0.5 a t² + v0 t − target = 0; take the smallest non-negative root.
    let disc = v0 * v0 + 2.0 * accel * target;
    if disc < 0.0 {
        return None;
    }
    let sqrt_d = disc.sqrt();
    let candidates = [(-v0 + sqrt_d) / accel, (-v0 - sqrt_d) / accel];
    let mut best: Option<f64> = None;
    for t in candidates {
        if t >= -crate::EPSILON && t <= duration + crate::EPSILON {
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
    }
    best.map(|t| t.clamp(0.0, duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cruise_kinematics() {
        let p = MotionProfile::cruise(10.0, 20.0, 100.0);
        assert_eq!(p.position_at(10.0), 0.0);
        assert_eq!(p.position_at(12.0), 40.0);
        assert_eq!(p.speed_at(11.0), 20.0);
        assert_eq!(p.end_time(), 15.0);
        // Continues past the end at the same speed.
        assert_eq!(p.position_at(16.0), 120.0);
    }

    #[test]
    fn stopped_profile_never_moves() {
        let p = MotionProfile::stopped(0.0, 42.0);
        assert_eq!(p.position_at(100.0), 42.0);
        assert_eq!(p.speed_at(100.0), 0.0);
        assert_eq!(p.time_at_position(43.0), None);
        assert_eq!(p.time_at_position(42.0), Some(0.0));
    }

    #[test]
    fn acceleration_segment() {
        // From rest, 2 m/s² for 5 s → v=10, x=25.
        let p = MotionProfile::new(0.0, 0.0, 0.0, vec![ProfileSegment::new(5.0, 2.0)]);
        assert!((p.position_at(5.0) - 25.0).abs() < 1e-12);
        assert!((p.speed_at(5.0) - 10.0).abs() < 1e-12);
        // Midpoint: t=2.5 → x = 0.5·2·6.25 = 6.25.
        assert!((p.position_at(2.5) - 6.25).abs() < 1e-12);
    }

    #[test]
    fn braking_clamps_at_zero_speed() {
        let p = MotionProfile::brake_to_stop(0.0, 0.0, 10.0, 2.0);
        // Stops after 5 s having covered 25 m.
        assert!((p.position_at(5.0) - 25.0).abs() < 1e-12);
        assert_eq!(p.speed_at(5.0), 0.0);
        // Stays stopped.
        assert!((p.position_at(50.0) - 25.0).abs() < 1e-12);
        assert_eq!(p.speed_at(50.0), 0.0);
    }

    #[test]
    fn over_long_brake_segment_still_clamps() {
        // A 100 s segment at −2 m/s² from 10 m/s: stops at t=5.
        let p = MotionProfile::new(0.0, 0.0, 10.0, vec![ProfileSegment::new(100.0, -2.0)]);
        assert!((p.position_at(100.0) - 25.0).abs() < 1e-9);
        assert_eq!(p.final_speed(), 0.0);
    }

    #[test]
    fn time_at_position_inverts_position_at() {
        let p = MotionProfile::new(
            5.0,
            0.0,
            5.0,
            vec![
                ProfileSegment::new(4.0, 2.0),
                ProfileSegment::new(10.0, 0.0),
                ProfileSegment::new(2.0, -3.0),
            ],
        );
        for s in [0.0, 10.0, 36.0, 100.0, 150.0] {
            if let Some(t) = p.time_at_position(s) {
                assert!(
                    (p.position_at(t) - s).abs() < 1e-6,
                    "round trip failed at s={s}: t={t} gives {}",
                    p.position_at(t)
                );
            }
        }
    }

    #[test]
    fn time_at_position_before_start_returns_start() {
        let p = MotionProfile::new(3.0, 50.0, 10.0, vec![]);
        assert_eq!(p.time_at_position(10.0), Some(3.0));
    }

    #[test]
    fn with_start_position_equals_rebuilt_profile() {
        let p = MotionProfile::arrive_at(2.0, 12.0, 22.0, 2.0, 3.0, 150.0, 14.0);
        let rebuilt =
            MotionProfile::new(p.start_time(), 37.5, p.start_speed(), p.segments().to_vec());
        assert_eq!(p.clone().with_start_position(37.5), rebuilt);
    }

    #[test]
    fn earliest_arrival_matches_fastest_profile() {
        for (v0, d) in [(0.0, 50.0), (10.0, 200.0), (22.0, 30.0)] {
            let t = MotionProfile::earliest_arrival(v0, 22.352, 2.0, d);
            let p = MotionProfile::fastest(0.0, v0, 22.352, 2.0, d);
            let arrive = p.time_at_position(d).expect("fastest profile reaches d");
            assert!(
                (arrive - t).abs() < 1e-6,
                "v0={v0} d={d}: earliest={t}, profile arrives {arrive}"
            );
        }
    }

    #[test]
    fn arrive_at_hits_requested_time() {
        // 200 m in 20 s starting at 15 m/s: must slow to 10 m/s.
        let p = MotionProfile::arrive_at(0.0, 15.0, 22.0, 2.0, 3.0, 200.0, 20.0);
        let t = p.time_at_position(200.0).expect("reaches the stop line");
        assert!((t - 20.0).abs() < 0.01, "arrived at {t}, wanted 20.0");
        // Never exceeds the speed limit.
        for i in 0..200 {
            assert!(p.speed_at(i as f64 * 0.1) <= 22.0 + 1e-9);
        }
    }

    #[test]
    fn arrive_at_infeasible_falls_back_to_fastest() {
        // 1000 m in 1 s is impossible; we get the fastest profile.
        let p = MotionProfile::arrive_at(0.0, 0.0, 22.0, 2.0, 3.0, 1000.0, 1.0);
        let fastest = MotionProfile::earliest_arrival(0.0, 22.0, 2.0, 1000.0);
        let t = p.time_at_position(1000.0).expect("eventually arrives");
        assert!((t - fastest).abs() < 1e-6);
    }

    #[test]
    fn arrive_at_needing_acceleration() {
        // 150 m in 15 s starting from rest needs ramping up to ~11 m/s.
        let p = MotionProfile::arrive_at(0.0, 0.0, 22.352, 2.0, 3.0, 150.0, 15.0);
        let t = p.time_at_position(150.0).expect("arrives");
        assert!((t - 15.0).abs() < 0.05, "arrived at {t}");
        assert!(p.final_speed() > 10.0, "final speed {}", p.final_speed());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_start_speed_panics() {
        let _ = MotionProfile::new(0.0, 0.0, -1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = ProfileSegment::new(-1.0, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Position is monotone non-decreasing in time.
        #[test]
        fn position_monotone(
            v0 in 0.0..30.0f64,
            a1 in -3.0..2.0f64,
            d1 in 0.0..20.0f64,
            a2 in -3.0..2.0f64,
            d2 in 0.0..20.0f64,
        ) {
            let p = MotionProfile::new(0.0, 0.0, v0, vec![
                ProfileSegment::new(d1, a1),
                ProfileSegment::new(d2, a2),
            ]);
            let mut prev = p.position_at(0.0);
            for i in 1..200 {
                let cur = p.position_at(i as f64 * 0.25);
                prop_assert!(cur >= prev - 1e-9, "position decreased: {prev} -> {cur}");
                prev = cur;
            }
        }

        /// Speed never goes negative even under sustained braking.
        #[test]
        fn speed_nonnegative(
            v0 in 0.0..30.0f64,
            d1 in 0.0..60.0f64,
        ) {
            let p = MotionProfile::new(0.0, 0.0, v0, vec![ProfileSegment::new(d1, -3.0)]);
            for i in 0..300 {
                prop_assert!(p.speed_at(i as f64 * 0.25) >= 0.0);
            }
        }

        /// time_at_position and position_at are inverse where defined.
        #[test]
        fn inverse_round_trip(
            v0 in 0.5..30.0f64,
            a in -2.9..2.0f64,
            dur in 0.1..30.0f64,
            frac in 0.0..1.0f64,
        ) {
            let p = MotionProfile::new(0.0, 0.0, v0, vec![ProfileSegment::new(dur, a)]);
            let target = p.end_position() * frac;
            if let Some(t) = p.time_at_position(target) {
                prop_assert!((p.position_at(t) - target).abs() < 1e-6);
            }
        }

        /// arrive_at respects the speed limit everywhere.
        #[test]
        fn arrive_at_respects_vmax(
            v0 in 0.0..22.0f64,
            dist in 10.0..500.0f64,
            horizon in 1.0..120.0f64,
        ) {
            let vmax = 22.352;
            let p = MotionProfile::arrive_at(0.0, v0, vmax, 2.0, 3.0, dist, horizon);
            for i in 0..400 {
                prop_assert!(p.speed_at(i as f64 * 0.5) <= vmax + 1e-6);
            }
        }

        /// earliest_arrival is a true lower bound for arrive_at.
        #[test]
        fn earliest_is_lower_bound(
            v0 in 0.0..22.0f64,
            dist in 10.0..500.0f64,
            horizon in 1.0..120.0f64,
        ) {
            let vmax = 22.352;
            let p = MotionProfile::arrive_at(0.0, v0, vmax, 2.0, 3.0, dist, horizon);
            let earliest = MotionProfile::earliest_arrival(v0, vmax, 2.0, dist);
            if let Some(t) = p.time_at_position(dist) {
                prop_assert!(t >= earliest - 1e-6, "arrived {t} before earliest {earliest}");
            }
        }
    }
}
