//! Range queries for vehicle sensing and communication reachability.

use crate::Vec2;
use std::collections::HashMap;

/// Returns the indices of every point in `points` lying within `radius`
/// of `center` (inclusive of the boundary).
///
/// ```
/// use nwade_geometry::{within_radius, Vec2};
/// let pts = [Vec2::new(0.0, 0.0), Vec2::new(3.0, 4.0), Vec2::new(30.0, 0.0)];
/// assert_eq!(within_radius(Vec2::ZERO, 10.0, &pts), vec![0, 1]);
/// ```
pub fn within_radius(center: Vec2, radius: f64, points: &[Vec2]) -> Vec<usize> {
    let r_sq = radius * radius;
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.distance_sq(center) <= r_sq)
        .map(|(i, _)| i)
        .collect()
}

/// A uniform-grid spatial index for repeated neighbourhood queries over a
/// moving set of points (vehicles at an intersection).
///
/// Cell size should be on the order of the query radius; queries then touch
/// only the 3×3 neighbourhood of cells (or more for larger radii).
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    points: Vec<Vec2>,
}

impl GridIndex {
    /// Builds an index over `points` with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is non-positive.
    pub fn build(cell: f64, points: &[Vec2]) -> Self {
        assert!(cell > 0.0, "cell size must be positive, got {cell}");
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::key(cell, *p)).or_default().push(i);
        }
        GridIndex {
            cell,
            cells,
            points: points.to_vec(),
        }
    }

    /// An empty index with the given cell size, meant for repeated
    /// [`GridIndex::rebuild`] calls over a moving point set.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is non-positive.
    pub fn with_cell(cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive, got {cell}");
        GridIndex {
            cell,
            cells: HashMap::new(),
            points: Vec::new(),
        }
    }

    /// Re-indexes `points` in place, keeping bucket and point-buffer
    /// allocations warm across calls — the per-tick path of a simulation
    /// that re-indexes every frame. Buckets that held points last call
    /// stay allocated (empty) so steady-state rebuilds allocate nothing.
    pub fn rebuild(&mut self, points: &[Vec2]) {
        for bucket in self.cells.values_mut() {
            bucket.clear();
        }
        self.points.clear();
        self.points.extend_from_slice(points);
        let cell = self.cell;
        for (i, p) in points.iter().enumerate() {
            self.cells.entry(Self::key(cell, *p)).or_default().push(i);
        }
    }

    fn key(cell: f64, p: Vec2) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` of `center`, in ascending
    /// order.
    pub fn query(&self, center: Vec2, radius: f64) -> Vec<usize> {
        let r_sq = radius * radius;
        let reach = (radius / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(self.cell, center);
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        if self.points[i].distance_sq(center) <= r_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(5.0, 0.0),
            Vec2::new(0.0, 5.0),
            Vec2::new(50.0, 50.0),
            Vec2::new(-8.0, 0.0),
            Vec2::new(10.0, 0.0),
        ]
    }

    #[test]
    fn brute_force_within_radius() {
        let pts = cluster();
        let hits = within_radius(Vec2::ZERO, 8.0, &pts);
        assert_eq!(hits, vec![0, 1, 2, 4]);
        // Boundary point at exactly the radius is included.
        let hits = within_radius(Vec2::ZERO, 10.0, &pts);
        assert_eq!(hits, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn grid_matches_brute_force() {
        let pts = cluster();
        let idx = GridIndex::build(7.0, &pts);
        for r in [1.0, 5.0, 8.0, 100.0] {
            for center in [Vec2::ZERO, Vec2::new(50.0, 50.0), Vec2::new(-20.0, 3.0)] {
                assert_eq!(
                    idx.query(center, r),
                    within_radius(center, r, &pts),
                    "mismatch at r={r}, center={center}"
                );
            }
        }
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(10.0, &[]);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.query(Vec2::ZERO, 1000.0).is_empty());
    }

    #[test]
    fn radius_larger_than_cell() {
        let pts: Vec<Vec2> = (0..100)
            .map(|i| Vec2::new((i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0))
            .collect();
        let idx = GridIndex::build(5.0, &pts);
        assert_eq!(idx.query(Vec2::new(45.0, 45.0), 200.0).len(), 100);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cell_panics() {
        let _ = GridIndex::build(0.0, &[]);
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let mut idx = GridIndex::with_cell(7.0);
        assert!(idx.is_empty());
        // First fill, then move every point and refill: queries must
        // always agree with a fresh index over the same points.
        for shift in [0.0, 13.0, -40.0] {
            let pts: Vec<Vec2> = cluster()
                .into_iter()
                .map(|p| p + Vec2::new(shift, shift))
                .collect();
            idx.rebuild(&pts);
            let fresh = GridIndex::build(7.0, &pts);
            assert_eq!(idx.len(), pts.len());
            for r in [1.0, 8.0, 100.0] {
                for center in [Vec2::ZERO, Vec2::new(shift, shift)] {
                    assert_eq!(idx.query(center, r), fresh.query(center, r));
                }
            }
        }
    }

    #[test]
    fn rebuild_to_empty() {
        let mut idx = GridIndex::with_cell(5.0);
        idx.rebuild(&cluster());
        idx.rebuild(&[]);
        assert!(idx.is_empty());
        assert!(idx.query(Vec2::ZERO, 1000.0).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The grid index always agrees with the brute-force scan.
        #[test]
        fn grid_equals_brute_force(
            pts in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 0..60),
            cx in -500.0..500.0f64,
            cy in -500.0..500.0f64,
            radius in 0.1..600.0f64,
            cell in 1.0..100.0f64,
        ) {
            let pts: Vec<Vec2> = pts.into_iter().map(Vec2::from).collect();
            let idx = GridIndex::build(cell, &pts);
            let center = Vec2::new(cx, cy);
            prop_assert_eq!(idx.query(center, radius), within_radius(center, radius, &pts));
        }
    }
}
