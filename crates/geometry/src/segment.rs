//! Straight line segments.

use crate::Vec2;
use serde::{Deserialize, Serialize};

/// A straight segment from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineSegment {
    start: Vec2,
    end: Vec2,
}

impl LineSegment {
    /// Creates a segment between two points.
    pub fn new(start: Vec2, end: Vec2) -> Self {
        LineSegment { start, end }
    }

    /// Start point.
    pub fn start(&self) -> Vec2 {
        self.start
    }

    /// End point.
    pub fn end(&self) -> Vec2 {
        self.end
    }

    /// Arc length of the segment.
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }

    /// Point at arclength `s` from the start, clamped to the segment.
    pub fn point_at(&self, s: f64) -> Vec2 {
        let len = self.length();
        if len < crate::EPSILON {
            return self.start;
        }
        let t = (s / len).clamp(0.0, 1.0);
        self.start.lerp(self.end, t)
    }

    /// Unit tangent direction (constant along the segment).
    pub fn heading_at(&self, _s: f64) -> Vec2 {
        (self.end - self.start).normalized()
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let d = self.end - self.start;
        let len_sq = d.norm_sq();
        if len_sq < crate::EPSILON {
            return self.start;
        }
        let t = ((p - self.start).dot(d) / len_sq).clamp(0.0, 1.0);
        self.start.lerp(self.end, t)
    }

    /// Distance from `p` to the segment.
    pub fn distance_to(&self, p: Vec2) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// `true` when the two segments intersect (including endpoints).
    pub fn intersects(&self, other: &LineSegment) -> bool {
        fn orient(a: Vec2, b: Vec2, c: Vec2) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(a: Vec2, b: Vec2, p: Vec2) -> bool {
            p.x >= a.x.min(b.x) - crate::EPSILON
                && p.x <= a.x.max(b.x) + crate::EPSILON
                && p.y >= a.y.min(b.y) - crate::EPSILON
                && p.y <= a.y.max(b.y) + crate::EPSILON
        }
        let (a, b) = (self.start, self.end);
        let (c, d) = (other.start, other.end);
        let o1 = orient(a, b, c);
        let o2 = orient(a, b, d);
        let o3 = orient(c, d, a);
        let o4 = orient(c, d, b);
        if (o1 * o2 < 0.0) && (o3 * o4 < 0.0) {
            return true;
        }
        (o1.abs() < crate::EPSILON && on_segment(a, b, c))
            || (o2.abs() < crate::EPSILON && on_segment(a, b, d))
            || (o3.abs() < crate::EPSILON && on_segment(c, d, a))
            || (o4.abs() < crate::EPSILON && on_segment(c, d, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64) -> LineSegment {
        LineSegment::new(Vec2::new(x0, y0), Vec2::new(x1, y1))
    }

    #[test]
    fn length_and_point_at() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.point_at(4.0), Vec2::new(4.0, 0.0));
        // Clamped at both ends.
        assert_eq!(s.point_at(-5.0), Vec2::new(0.0, 0.0));
        assert_eq!(s.point_at(20.0), Vec2::new(10.0, 0.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.point_at(3.0), Vec2::new(1.0, 1.0));
        assert_eq!(s.closest_point(Vec2::new(5.0, 5.0)), Vec2::new(1.0, 1.0));
    }

    #[test]
    fn heading_is_unit_tangent() {
        let s = seg(0.0, 0.0, 0.0, 5.0);
        assert!(s.heading_at(2.0).distance(Vec2::new(0.0, 1.0)) < 1e-12);
    }

    #[test]
    fn closest_point_projection_and_clamp() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Vec2::new(3.0, 4.0)), Vec2::new(3.0, 0.0));
        assert_eq!(s.closest_point(Vec2::new(-3.0, 4.0)), Vec2::new(0.0, 0.0));
        assert_eq!(s.closest_point(Vec2::new(13.0, 4.0)), Vec2::new(10.0, 0.0));
        assert_eq!(s.distance_to(Vec2::new(3.0, 4.0)), 4.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(seg(0.0, 0.0, 10.0, 10.0).intersects(&seg(0.0, 10.0, 10.0, 0.0)));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        assert!(!seg(0.0, 0.0, 10.0, 0.0).intersects(&seg(0.0, 1.0, 10.0, 1.0)));
    }

    #[test]
    fn touching_endpoint_counts_as_intersection() {
        assert!(seg(0.0, 0.0, 5.0, 0.0).intersects(&seg(5.0, 0.0, 5.0, 5.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        assert!(seg(0.0, 0.0, 10.0, 0.0).intersects(&seg(5.0, 0.0, 15.0, 0.0)));
        assert!(!seg(0.0, 0.0, 4.0, 0.0).intersects(&seg(5.0, 0.0, 15.0, 0.0)));
    }
}
