//! Unit conversions between the paper's imperial figures and SI.
//!
//! All internal computation in this workspace uses SI units (meters,
//! seconds, m/s). The paper quotes distances in feet and speeds in mph;
//! these helpers convert at the boundaries so the experiment harness can
//! print the paper's numbers.

/// Meters per foot.
pub const METERS_PER_FOOT: f64 = 0.3048;

/// Meters per mile.
pub const METERS_PER_MILE: f64 = 1609.344;

/// Seconds per hour.
pub const SECONDS_PER_HOUR: f64 = 3600.0;

/// Converts feet to meters.
///
/// ```
/// assert!((nwade_geometry::feet_to_meters(1000.0) - 304.8).abs() < 1e-9);
/// ```
pub fn feet_to_meters(feet: f64) -> f64 {
    feet * METERS_PER_FOOT
}

/// Converts meters to feet.
pub fn meters_to_feet(meters: f64) -> f64 {
    meters / METERS_PER_FOOT
}

/// Converts miles per hour to meters per second.
///
/// ```
/// // The paper's 50 mph speed limit is roughly 22.35 m/s (~80 km/h).
/// assert!((nwade_geometry::mph_to_mps(50.0) - 22.352).abs() < 1e-3);
/// ```
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * METERS_PER_MILE / SECONDS_PER_HOUR
}

/// Converts meters per second to miles per hour.
pub fn mps_to_mph(mps: f64) -> f64 {
    mps * SECONDS_PER_HOUR / METERS_PER_MILE
}

/// Default parameters quoted in §VI-A of the paper, in SI units.
pub mod paper {
    use super::*;

    /// Speed limit: 50 mph.
    pub fn speed_limit_mps() -> f64 {
        mph_to_mps(50.0)
    }

    /// Maximum acceleration: 2 m/s².
    pub const MAX_ACCEL: f64 = 2.0;

    /// Maximum deceleration: 3 m/s² (magnitude).
    pub const MAX_DECEL: f64 = 3.0;

    /// Maximum communication radius: 1500 ft.
    pub fn comm_radius_m() -> f64 {
        feet_to_meters(1500.0)
    }

    /// Default sensing radius: 1000 ft.
    pub fn sensing_radius_m() -> f64 {
        feet_to_meters(1000.0)
    }

    /// Minimum sensing radius evaluated: 300 ft.
    pub fn sensing_radius_min_m() -> f64 {
        feet_to_meters(300.0)
    }

    /// Network latency: 30 ms.
    pub const NETWORK_LATENCY_S: f64 = 0.030;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feet_round_trip() {
        for f in [0.0, 1.0, 300.0, 1000.0, 1500.0] {
            assert!((meters_to_feet(feet_to_meters(f)) - f).abs() < 1e-9);
        }
    }

    #[test]
    fn mph_round_trip() {
        for v in [0.0, 25.0, 50.0, 120.0] {
            assert!((mps_to_mph(mph_to_mps(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_figures_match_stated_metric_equivalents() {
        // §VI-A quotes 50 mph (80 km/h), 1500 ft (457 m), 1000 ft (305 m),
        // 300 ft (91 m).
        assert!((paper::speed_limit_mps() * 3.6 - 80.0).abs() < 1.0);
        assert!((paper::comm_radius_m() - 457.0).abs() < 1.0);
        assert!((paper::sensing_radius_m() - 305.0).abs() < 1.0);
        assert!((paper::sensing_radius_min_m() - 91.0).abs() < 1.0);
    }

    #[test]
    fn paper_displacement_bounds() {
        // §VI-C: at 50 mph, 360 ms of travel is ~26.2 ft (8 m) and 20 ms is
        // under 1.5 ft (0.45 m). Our conversions must reproduce those.
        let v = paper::speed_limit_mps();
        assert!((meters_to_feet(v * 0.360) - 26.2).abs() < 0.5);
        assert!(meters_to_feet(v * 0.020) < 1.5);
    }
}
