//! Two-dimensional vectors in meters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point in meters.
///
/// ```
/// use nwade_geometry::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians counter-clockwise from +x.
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns a vector with the same direction and unit length.
    ///
    /// Returns [`Vec2::ZERO`] for the zero vector instead of dividing by
    /// zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < crate::EPSILON {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// The vector rotated 90° counter-clockwise.
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle in radians from +x, in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// `true` when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(v), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(v), 25.0);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let n = Vec2::new(0.0, 2.0).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -5.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!(v.distance(Vec2::new(0.0, 1.0)) < 1e-12);
        assert!(
            Vec2::new(1.0, 0.0)
                .rotated(PI)
                .distance(Vec2::new(-1.0, 0.0))
                < 1e-12
        );
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
        assert_eq!(Vec2::new(0.0, 1.0).perp(), Vec2::new(-1.0, 0.0));
    }

    #[test]
    fn angle_of_axes() {
        assert!((Vec2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Vec2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn from_angle_round_trip() {
        for k in 0..8 {
            let a = -PI + (k as f64 + 0.5) * PI / 4.0;
            let v = Vec2::from_angle(a);
            assert!((v.angle() - a).abs() < 1e-12);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conversion_from_tuple_and_display() {
        let v: Vec2 = (1.0, 2.0).into();
        assert_eq!(v, Vec2::new(1.0, 2.0));
        assert_eq!(format!("{v}"), "(1.000, 2.000)");
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
