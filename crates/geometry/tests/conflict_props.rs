//! Property tests for the conflict checker's public API.

use nwade_geometry::{
    occupancy_interval, trajectories_conflict, Footprint, MotionProfile, Path, Vec2,
};
use proptest::prelude::*;

proptest! {
    /// Conflict is symmetric.
    #[test]
    fn conflict_is_symmetric(
        speed_a in 3.0..25.0f64,
        speed_b in 3.0..25.0f64,
        start_b in 0.0..20.0f64,
    ) {
        let pa = Path::line(Vec2::new(-150.0, 0.0), Vec2::new(150.0, 0.0));
        let pb = Path::line(Vec2::new(0.0, -150.0), Vec2::new(0.0, 150.0));
        let a = MotionProfile::cruise(0.0, speed_a, pa.length());
        let b = MotionProfile::cruise(start_b, speed_b, pb.length());
        let fp = Footprint::CAR;
        prop_assert_eq!(
            trajectories_conflict((&pa, &a, &fp), (&pb, &b, &fp)),
            trajectories_conflict((&pb, &b, &fp), (&pa, &a, &fp))
        );
    }

    /// Two vehicles on the same line, same speed, sufficiently staggered:
    /// never a conflict; insufficient stagger: always a conflict.
    #[test]
    fn stagger_threshold(speed in 5.0..25.0f64, stagger in 0.0..10.0f64) {
        let p = Path::line(Vec2::new(0.0, 0.0), Vec2::new(300.0, 0.0));
        let lead = MotionProfile::cruise(0.0, speed, p.length());
        let follow = MotionProfile::cruise(stagger, speed, p.length());
        let fp = Footprint::CAR;
        let spatial_gap = speed * stagger;
        let collision = fp.collision_distance(&fp);
        let conflict = trajectories_conflict((&p, &lead, &fp), (&p, &follow, &fp));
        if spatial_gap > collision + 1.0 {
            prop_assert!(!conflict, "gap {spatial_gap:.1} m should be safe");
        }
        if spatial_gap < collision - 1.0 {
            prop_assert!(conflict, "gap {spatial_gap:.1} m should collide");
        }
    }

    /// Occupancy intervals nest: a sub-range's interval lies within the
    /// full range's interval.
    #[test]
    fn occupancy_nesting(
        v0 in 1.0..20.0f64,
        accel_time in 0.0..10.0f64,
        lo in 10.0..80.0f64,
        width in 5.0..40.0f64,
    ) {
        let profile = MotionProfile::new(0.0, 0.0, v0, vec![
            nwade_geometry::ProfileSegment::new(accel_time, 1.5),
            nwade_geometry::ProfileSegment::new(60.0, 0.0),
        ]);
        let hi = lo + width;
        let mid_lo = lo + width * 0.25;
        let mid_hi = lo + width * 0.75;
        let outer = occupancy_interval(&profile, lo, hi);
        let inner = occupancy_interval(&profile, mid_lo, mid_hi);
        if let (Some(o), Some(i)) = (outer, inner) {
            prop_assert!(i.start >= o.start - 1e-9);
            prop_assert!(i.end <= o.end + 1e-9);
        }
    }
}
