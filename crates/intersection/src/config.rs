//! Geometry parameters shared by every intersection builder.

use serde::{Deserialize, Serialize};

/// Tunable geometry of a generated intersection.
///
/// Defaults follow §VI-A of the paper where stated (1000 ft ≈ 305 m
/// perception range; the approach length is set a little beyond it so a
/// vehicle's whole journey from communication-zone entry to exit lies on
/// one path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometryConfig {
    /// Incoming lanes per leg.
    pub lanes_in: usize,
    /// Outgoing lanes per leg.
    pub lanes_out: usize,
    /// Lane width in meters.
    pub lane_width: f64,
    /// Length of the approach segment before the intersection box, meters.
    pub approach_len: f64,
    /// Length of the exit segment after the box, meters.
    pub exit_len: f64,
    /// Side of a conflict-zone grid cell, meters. Must stay below the lane
    /// width so parallel lanes never share a cell.
    pub zone_cell: f64,
    /// Path sampling step used when rasterizing movements into zones.
    pub zone_sample_step: f64,
}

impl Default for GeometryConfig {
    fn default() -> Self {
        GeometryConfig {
            lanes_in: 2,
            lanes_out: 2,
            lane_width: 3.7,
            approach_len: 350.0,
            exit_len: 120.0,
            zone_cell: 3.0,
            zone_sample_step: 0.5,
        }
    }
}

impl GeometryConfig {
    /// Config with `n` incoming lanes per leg (outgoing matches).
    pub fn with_lanes(n: usize) -> Self {
        GeometryConfig {
            lanes_in: n,
            lanes_out: n,
            ..GeometryConfig::default()
        }
    }

    /// Radius of the central intersection box for `max_lanes` lanes per
    /// direction: both travel directions plus clearance.
    pub fn box_radius(&self) -> f64 {
        let lanes = self.lanes_in.max(self.lanes_out) as f64;
        (lanes * self.lane_width + 4.0).max(12.0)
    }

    /// Validates invariants the builders rely on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.lanes_in == 0 || self.lanes_out == 0 {
            return Err("lane counts must be non-zero".into());
        }
        if !(self.lane_width > 0.0) {
            return Err("lane width must be positive".into());
        }
        if self.zone_cell >= self.lane_width {
            return Err(format!(
                "zone cell ({}) must be smaller than lane width ({})",
                self.zone_cell, self.lane_width
            ));
        }
        if !(self.approach_len > 0.0 && self.exit_len > 0.0) {
            return Err("approach and exit lengths must be positive".into());
        }
        if !(self.zone_sample_step > 0.0 && self.zone_sample_step < self.zone_cell) {
            return Err("sample step must be positive and below the cell size".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        GeometryConfig::default().validate().expect("default valid");
    }

    #[test]
    fn with_lanes_sets_both_directions() {
        let c = GeometryConfig::with_lanes(3);
        assert_eq!(c.lanes_in, 3);
        assert_eq!(c.lanes_out, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn box_radius_grows_with_lanes() {
        assert!(
            GeometryConfig::with_lanes(4).box_radius() > GeometryConfig::with_lanes(1).box_radius()
        );
        // Minimum clamp for a single narrow lane.
        let mut tiny = GeometryConfig::with_lanes(1);
        tiny.lane_width = 3.0;
        assert!(tiny.box_radius() >= 12.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = GeometryConfig::default();
        c.lanes_in = 0;
        assert!(c.validate().is_err());

        let mut c = GeometryConfig::default();
        c.zone_cell = 10.0;
        assert!(c.validate().is_err());

        let mut c = GeometryConfig::default();
        c.zone_sample_step = 5.0;
        assert!(c.validate().is_err());

        let mut c = GeometryConfig::default();
        c.approach_len = 0.0;
        assert!(c.validate().is_err());
    }
}
