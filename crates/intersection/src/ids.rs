//! Identifier newtypes for topology entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a leg (approach road) of an intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LegId(u8);

impl LegId {
    /// Creates a leg id.
    pub const fn new(index: u8) -> Self {
        LegId(index)
    }

    /// The numeric index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leg{}", self.0)
    }
}

/// Identifies a movement (an origin-lane → destination-leg path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MovementId(u16);

impl MovementId {
    /// Creates a movement id.
    pub const fn new(index: u16) -> Self {
        MovementId(index)
    }

    /// The numeric index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MovementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mv{}", self.0)
    }
}

/// A cell of the uniform conflict-zone grid laid over the intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZoneId {
    /// Grid column (east).
    pub col: i32,
    /// Grid row (north).
    pub row: i32,
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z({},{})", self.col, self.row)
    }
}

/// The three turning movements the paper's traffic mix distinguishes
/// (25% left / 50% straight / 25% right, §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TurnKind {
    /// Turn left (counter-clockwise exit).
    Left,
    /// Continue straight (or nearly so).
    Straight,
    /// Turn right (clockwise exit).
    Right,
}

impl fmt::Display for TurnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TurnKind::Left => "left",
            TurnKind::Straight => "straight",
            TurnKind::Right => "right",
        })
    }
}

impl TurnKind {
    /// Classifies the exit-direction change `delta` (radians, in
    /// `(-π, π]`): near zero is straight, positive is left, negative is
    /// right.
    pub fn from_delta(delta: f64) -> TurnKind {
        let threshold = 30f64.to_radians();
        if delta.abs() <= threshold {
            TurnKind::Straight
        } else if delta > 0.0 {
            TurnKind::Left
        } else {
            TurnKind::Right
        }
    }
}

/// Normalizes an angle to `(-π, π]`.
pub fn normalize_angle(a: f64) -> f64 {
    let mut x = a % std::f64::consts::TAU;
    if x <= -std::f64::consts::PI {
        x += std::f64::consts::TAU;
    } else if x > std::f64::consts::PI {
        x -= std::f64::consts::TAU;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn id_accessors_and_display() {
        assert_eq!(LegId::new(2).index(), 2);
        assert_eq!(LegId::new(2).to_string(), "leg2");
        assert_eq!(MovementId::new(17).index(), 17);
        assert_eq!(MovementId::new(17).to_string(), "mv17");
        assert_eq!(ZoneId { col: -1, row: 3 }.to_string(), "z(-1,3)");
    }

    #[test]
    fn turn_classification() {
        assert_eq!(TurnKind::from_delta(0.0), TurnKind::Straight);
        assert_eq!(TurnKind::from_delta(0.3), TurnKind::Straight);
        assert_eq!(TurnKind::from_delta(FRAC_PI_2), TurnKind::Left);
        assert_eq!(TurnKind::from_delta(-FRAC_PI_2), TurnKind::Right);
        assert_eq!(TurnKind::from_delta(2.8), TurnKind::Left);
        assert_eq!(TurnKind::from_delta(-2.8), TurnKind::Right);
    }

    #[test]
    fn angle_normalization() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(FRAC_PI_2) - FRAC_PI_2).abs() < 1e-12);
        assert!(normalize_angle(-PI) > 0.0); // maps to +π
    }

    #[test]
    fn turn_display() {
        assert_eq!(TurnKind::Left.to_string(), "left");
        assert_eq!(TurnKind::Straight.to_string(), "straight");
        assert_eq!(TurnKind::Right.to_string(), "right");
    }
}
