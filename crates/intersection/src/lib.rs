//! Intersection topologies for the NWADE reproduction.
//!
//! The paper evaluates five intersection geometries (§VI-A): a 3-way
//! roundabout, a 4-way cross, a 5-way irregular intersection, a 4-way
//! continuous-flow intersection (CFI) and a 4-way diverging diamond
//! interchange (DDI). This crate builds each as a [`Topology`]: a set of
//! legs, a set of [`Movement`]s (lane-to-lane paths through the
//! intersection), and per-movement *zone intervals* — the ordered grid
//! cells a movement occupies, which the AIM scheduler reserves in time.
//!
//! # Example
//!
//! ```
//! use nwade_intersection::{build, GeometryConfig, IntersectionKind};
//!
//! let topo = build(IntersectionKind::FourWayCross, &GeometryConfig::default());
//! assert_eq!(topo.legs().len(), 4);
//! assert!(topo.movements().len() >= 12); // ≥ L/S/R from each leg
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod ids;
pub mod movement;
pub mod topology;
pub mod types;

pub use config::GeometryConfig;
pub use ids::{LegId, MovementId, TurnKind, ZoneId};
pub use movement::{Movement, ZoneInterval};
pub use topology::{Leg, Topology};

use serde::{Deserialize, Serialize};

/// The five intersection geometries evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntersectionKind {
    /// 3-way roundabout.
    ThreeWayRoundabout,
    /// Common 4-way cross.
    FourWayCross,
    /// 5-way intersection with unevenly spaced legs.
    FiveWayIrregular,
    /// 4-way continuous flow intersection (displaced left turns).
    FourWayCfi,
    /// 4-way diverging diamond interchange.
    FourWayDdi,
}

impl IntersectionKind {
    /// All five kinds, in the order the paper lists them.
    pub const ALL: [IntersectionKind; 5] = [
        IntersectionKind::ThreeWayRoundabout,
        IntersectionKind::FourWayCross,
        IntersectionKind::FiveWayIrregular,
        IntersectionKind::FourWayCfi,
        IntersectionKind::FourWayDdi,
    ];

    /// Short label used in experiment output (matches Fig. 6/8 labels).
    pub fn label(&self) -> &'static str {
        match self {
            IntersectionKind::ThreeWayRoundabout => "3-way roundabout",
            IntersectionKind::FourWayCross => "4-way cross",
            IntersectionKind::FiveWayIrregular => "5-way irregular",
            IntersectionKind::FourWayCfi => "4-way CFI",
            IntersectionKind::FourWayDdi => "4-way DDI",
        }
    }
}

impl std::fmt::Display for IntersectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the topology for a given intersection kind.
pub fn build(kind: IntersectionKind, config: &GeometryConfig) -> Topology {
    match kind {
        IntersectionKind::ThreeWayRoundabout => types::roundabout::build(config),
        IntersectionKind::FourWayCross => types::cross::build_cross(config),
        IntersectionKind::FiveWayIrregular => types::cross::build_irregular(config),
        IntersectionKind::FourWayCfi => types::cfi::build(config),
        IntersectionKind::FourWayDdi => types::ddi::build(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_valid_topologies() {
        let cfg = GeometryConfig::default();
        for kind in IntersectionKind::ALL {
            let topo = build(kind, &cfg);
            topo.validate().unwrap_or_else(|e| {
                panic!("{kind} failed validation: {e}");
            });
            assert!(!topo.movements().is_empty(), "{kind} has no movements");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = IntersectionKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(IntersectionKind::FourWayCross.to_string(), "4-way cross");
    }
}
