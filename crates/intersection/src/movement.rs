//! Movements: lane-to-lane paths through an intersection.

use crate::ids::{LegId, MovementId, TurnKind, ZoneId};
use nwade_geometry::Path;
use serde::{Deserialize, Serialize};

/// The arclength interval a movement spends inside one conflict-zone cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneInterval {
    /// The grid cell.
    pub zone: ZoneId,
    /// Arclength at which the movement enters the cell.
    pub enter: f64,
    /// Arclength at which it leaves the cell.
    pub exit: f64,
}

/// A movement: the full path a vehicle follows from its spawn point on an
/// incoming lane, through the intersection, to the end of an outgoing
/// lane, together with the conflict-zone cells the path occupies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Movement {
    id: MovementId,
    from_leg: LegId,
    from_lane: usize,
    to_leg: LegId,
    turn: TurnKind,
    path: Path,
    box_entry: f64,
    box_exit: f64,
    zones: Vec<ZoneInterval>,
}

impl Movement {
    /// Assembles a movement. Zone intervals are attached later by the
    /// topology constructor during rasterization.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: MovementId,
        from_leg: LegId,
        from_lane: usize,
        to_leg: LegId,
        turn: TurnKind,
        path: Path,
        box_entry: f64,
        box_exit: f64,
    ) -> Self {
        assert!(
            box_entry >= 0.0 && box_exit >= box_entry && box_exit <= path.length() + 1e-6,
            "box interval [{box_entry}, {box_exit}] outside path of length {}",
            path.length()
        );
        Movement {
            id,
            from_leg,
            from_lane,
            to_leg,
            turn,
            path,
            box_entry,
            box_exit,
            zones: Vec::new(),
        }
    }

    /// Movement id.
    pub fn id(&self) -> MovementId {
        self.id
    }

    /// Originating leg.
    pub fn from_leg(&self) -> LegId {
        self.from_leg
    }

    /// Index of the incoming lane on the originating leg.
    pub fn from_lane(&self) -> usize {
        self.from_lane
    }

    /// Destination leg.
    pub fn to_leg(&self) -> LegId {
        self.to_leg
    }

    /// Turn classification.
    pub fn turn(&self) -> TurnKind {
        self.turn
    }

    /// The full spawn-to-exit path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Arclength at which the path crosses into the intersection box.
    pub fn box_entry(&self) -> f64 {
        self.box_entry
    }

    /// Arclength at which the path leaves the intersection box.
    pub fn box_exit(&self) -> f64 {
        self.box_exit
    }

    /// The zone intervals, ordered by entry arclength.
    pub fn zones(&self) -> &[ZoneInterval] {
        &self.zones
    }

    /// Attaches rasterized zone intervals (topology construction only).
    pub(crate) fn set_zones(&mut self, zones: Vec<ZoneInterval>) {
        debug_assert!(
            zones.windows(2).all(|w| w[0].enter <= w[1].enter),
            "zone intervals must be ordered by entry arclength"
        );
        self.zones = zones;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_geometry::Vec2;

    fn movement() -> Movement {
        Movement::new(
            MovementId::new(0),
            LegId::new(0),
            1,
            LegId::new(2),
            TurnKind::Straight,
            Path::line(Vec2::ZERO, Vec2::new(100.0, 0.0)),
            30.0,
            70.0,
        )
    }

    #[test]
    fn accessors() {
        let m = movement();
        assert_eq!(m.id().index(), 0);
        assert_eq!(m.from_leg().index(), 0);
        assert_eq!(m.from_lane(), 1);
        assert_eq!(m.to_leg().index(), 2);
        assert_eq!(m.turn(), TurnKind::Straight);
        assert_eq!(m.path().length(), 100.0);
        assert_eq!(m.box_entry(), 30.0);
        assert_eq!(m.box_exit(), 70.0);
        assert!(m.zones().is_empty());
    }

    #[test]
    fn set_zones_orders() {
        let mut m = movement();
        m.set_zones(vec![
            ZoneInterval {
                zone: ZoneId { col: 0, row: 0 },
                enter: 0.0,
                exit: 3.0,
            },
            ZoneInterval {
                zone: ZoneId { col: 1, row: 0 },
                enter: 3.0,
                exit: 6.0,
            },
        ]);
        assert_eq!(m.zones().len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside path")]
    fn invalid_box_interval_panics() {
        let _ = Movement::new(
            MovementId::new(0),
            LegId::new(0),
            0,
            LegId::new(1),
            TurnKind::Left,
            Path::line(Vec2::ZERO, Vec2::new(10.0, 0.0)),
            5.0,
            50.0,
        );
    }
}
