//! The assembled intersection topology.

use crate::config::GeometryConfig;
use crate::ids::{LegId, MovementId, TurnKind, ZoneId};
use crate::movement::{Movement, ZoneInterval};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One approach road of the intersection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Leg {
    id: LegId,
    /// Angle of the leg's outward direction from the intersection center.
    angle: f64,
    lanes_in: usize,
    lanes_out: usize,
}

impl Leg {
    /// Creates a leg.
    pub fn new(id: LegId, angle: f64, lanes_in: usize, lanes_out: usize) -> Self {
        Leg {
            id,
            angle,
            lanes_in,
            lanes_out,
        }
    }

    /// Leg id.
    pub fn id(&self) -> LegId {
        self.id
    }

    /// Outward angle in radians.
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// Number of incoming lanes.
    pub fn lanes_in(&self) -> usize {
        self.lanes_in
    }

    /// Number of outgoing lanes.
    pub fn lanes_out(&self) -> usize {
        self.lanes_out
    }
}

/// A complete intersection: legs, movements, and the conflict-zone grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    legs: Vec<Leg>,
    movements: Vec<Movement>,
    zone_cell: f64,
    /// Movements indexed by origin leg.
    #[serde(skip)]
    by_leg: HashMap<usize, Vec<MovementId>>,
}

impl Topology {
    /// Assembles a topology, rasterizing every movement into zone
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if movement ids do not match their indices.
    pub fn assemble(
        name: impl Into<String>,
        legs: Vec<Leg>,
        mut movements: Vec<Movement>,
        config: &GeometryConfig,
    ) -> Self {
        for (i, m) in movements.iter().enumerate() {
            assert_eq!(m.id().index(), i, "movement ids must be dense indices");
        }
        for m in &mut movements {
            let zones = rasterize(m, config.zone_cell, config.zone_sample_step);
            m.set_zones(zones);
        }
        let mut by_leg: HashMap<usize, Vec<MovementId>> = HashMap::new();
        for m in &movements {
            by_leg.entry(m.from_leg().index()).or_default().push(m.id());
        }
        Topology {
            name: name.into(),
            legs,
            movements,
            zone_cell: config.zone_cell,
            by_leg,
        }
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The legs.
    pub fn legs(&self) -> &[Leg] {
        &self.legs
    }

    /// All movements.
    pub fn movements(&self) -> &[Movement] {
        &self.movements
    }

    /// A movement by id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn movement(&self, id: MovementId) -> &Movement {
        &self.movements[id.index()]
    }

    /// Side length of the conflict-zone grid cells.
    pub fn zone_cell(&self) -> f64 {
        self.zone_cell
    }

    /// Movements originating from `leg`.
    pub fn movements_from(&self, leg: LegId) -> Vec<&Movement> {
        self.by_leg
            .get(&leg.index())
            .map(|ids| ids.iter().map(|id| self.movement(*id)).collect())
            .unwrap_or_default()
    }

    /// Movements terminating at `leg` — the flows a connected road link
    /// drains from this intersection toward a neighbour.
    pub fn movements_to(&self, leg: LegId) -> Vec<&Movement> {
        self.movements
            .iter()
            .filter(|m| m.to_leg() == leg)
            .collect()
    }

    /// Movements from `leg` with the given turn kind.
    pub fn movements_with_turn(&self, leg: LegId, turn: TurnKind) -> Vec<&Movement> {
        self.movements_from(leg)
            .into_iter()
            .filter(|m| m.turn() == turn)
            .collect()
    }

    /// Pairs of distinct movements that share at least one zone cell
    /// (and therefore can conflict in time).
    pub fn conflicting_pairs(&self) -> Vec<(MovementId, MovementId)> {
        let mut zone_users: HashMap<ZoneId, Vec<MovementId>> = HashMap::new();
        for m in &self.movements {
            let mut seen = HashSet::new();
            for z in m.zones() {
                if seen.insert(z.zone) {
                    zone_users.entry(z.zone).or_default().push(m.id());
                }
            }
        }
        let mut pairs = HashSet::new();
        for users in zone_users.values() {
            for i in 0..users.len() {
                for j in i + 1..users.len() {
                    let (a, b) = (users[i].min(users[j]), users[i].max(users[j]));
                    if a != b {
                        pairs.insert((a, b));
                    }
                }
            }
        }
        let mut v: Vec<_> = pairs.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.legs.is_empty() {
            return Err("topology has no legs".into());
        }
        if self.movements.is_empty() {
            return Err("topology has no movements".into());
        }
        for leg in &self.legs {
            if self.movements_from(leg.id()).is_empty() {
                return Err(format!("{} has no outgoing movements", leg.id()));
            }
        }
        for m in &self.movements {
            if m.zones().is_empty() {
                return Err(format!("{} has no zone intervals", m.id()));
            }
            if m.path().length() <= 0.0 {
                return Err(format!("{} has an empty path", m.id()));
            }
            if m.from_leg() == m.to_leg() {
                return Err(format!("{} is a U-turn, which is not modeled", m.id()));
            }
            // Zone intervals must cover the box portion of the path.
            let first = m.zones().first().expect("non-empty");
            let last = m.zones().last().expect("non-empty");
            if first.enter > m.box_entry() + self.zone_cell
                || last.exit < m.box_exit() - self.zone_cell
            {
                return Err(format!(
                    "{} zones [{:.1}, {:.1}] do not cover box [{:.1}, {:.1}]",
                    m.id(),
                    first.enter,
                    last.exit,
                    m.box_entry(),
                    m.box_exit()
                ));
            }
        }
        // Crossing movements from different legs must share a zone
        // somewhere, otherwise the scheduler would not serialize them.
        if self.conflicting_pairs().is_empty() {
            return Err("no two movements conflict; geometry is degenerate".into());
        }
        Ok(())
    }
}

/// Rasterizes a movement path into grid-cell intervals.
fn rasterize(movement: &Movement, cell: f64, step: f64) -> Vec<ZoneInterval> {
    let path = movement.path();
    let len = path.length();
    let mut out: Vec<ZoneInterval> = Vec::new();
    let mut current: Option<(ZoneId, f64)> = None;
    let mut s: f64 = 0.0;
    loop {
        let clamped = s.min(len);
        let p = path.point_at(clamped);
        let zone = ZoneId {
            col: (p.x / cell).floor() as i32,
            row: (p.y / cell).floor() as i32,
        };
        match current {
            Some((z, _)) if z == zone => {}
            Some((z, enter)) => {
                out.push(ZoneInterval {
                    zone: z,
                    enter,
                    exit: clamped,
                });
                current = Some((zone, clamped));
            }
            None => current = Some((zone, clamped)),
        }
        if s >= len {
            break;
        }
        s += step;
    }
    if let Some((z, enter)) = current {
        out.push(ZoneInterval {
            zone: z,
            enter,
            exit: len,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_geometry::{Path, Vec2};

    fn simple_topology() -> Topology {
        let cfg = GeometryConfig::default();
        let legs = vec![
            Leg::new(LegId::new(0), 0.0, 1, 1),
            Leg::new(LegId::new(1), std::f64::consts::FRAC_PI_2, 1, 1),
        ];
        // Two crossing straight movements through the origin.
        let m0 = Movement::new(
            MovementId::new(0),
            LegId::new(0),
            0,
            LegId::new(1),
            TurnKind::Straight,
            Path::line(Vec2::new(-100.0, 0.0), Vec2::new(100.0, 0.0)),
            80.0,
            120.0,
        );
        let m1 = Movement::new(
            MovementId::new(1),
            LegId::new(1),
            0,
            LegId::new(0),
            TurnKind::Straight,
            Path::line(Vec2::new(0.0, -100.0), Vec2::new(0.0, 100.0)),
            80.0,
            120.0,
        );
        Topology::assemble("test-cross", legs, vec![m0, m1], &cfg)
    }

    #[test]
    fn assemble_rasterizes_zones() {
        let t = simple_topology();
        assert_eq!(t.name(), "test-cross");
        for m in t.movements() {
            assert!(!m.zones().is_empty());
            // Intervals tile the path: consecutive entries touch.
            for w in m.zones().windows(2) {
                assert!((w[0].exit - w[1].enter).abs() < 1e-9);
            }
            assert_eq!(m.zones().first().unwrap().enter, 0.0);
            assert!((m.zones().last().unwrap().exit - m.path().length()).abs() < 1e-9);
        }
    }

    #[test]
    fn crossing_movements_conflict() {
        let t = simple_topology();
        let pairs = t.conflicting_pairs();
        assert_eq!(pairs, vec![(MovementId::new(0), MovementId::new(1))]);
    }

    #[test]
    fn validate_accepts_simple_topology() {
        simple_topology().validate().expect("valid");
    }

    #[test]
    fn movements_from_and_turn_queries() {
        let t = simple_topology();
        assert_eq!(t.movements_from(LegId::new(0)).len(), 1);
        assert_eq!(t.movements_to(LegId::new(1)).len(), 1);
        assert_eq!(
            t.movements_to(LegId::new(1))[0].id(),
            MovementId::new(0),
            "movement 0 ends at leg 1"
        );
        assert!(t.movements_to(LegId::new(9)).is_empty());
        assert_eq!(
            t.movements_with_turn(LegId::new(0), TurnKind::Straight)
                .len(),
            1
        );
        assert!(t
            .movements_with_turn(LegId::new(0), TurnKind::Left)
            .is_empty());
        assert!(t.movements_from(LegId::new(9)).is_empty());
    }

    #[test]
    fn zone_count_scales_with_path_length() {
        let t = simple_topology();
        let m = t.movement(MovementId::new(0));
        // 200 m path with 3 m cells: roughly 67 zones.
        let n = m.zones().len();
        assert!((60..=75).contains(&n), "unexpected zone count {n}");
    }

    #[test]
    #[should_panic(expected = "dense indices")]
    fn wrong_ids_panic() {
        let cfg = GeometryConfig::default();
        let m = Movement::new(
            MovementId::new(5),
            LegId::new(0),
            0,
            LegId::new(1),
            TurnKind::Straight,
            Path::line(Vec2::ZERO, Vec2::new(10.0, 0.0)),
            0.0,
            10.0,
        );
        let _ = Topology::assemble("bad", vec![], vec![m], &cfg);
    }
}
