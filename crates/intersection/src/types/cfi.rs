//! The 4-way continuous flow intersection (CFI).
//!
//! A CFI removes the conflict between left turns and the *opposing
//! through* movement by crossing left-turning traffic over to a displaced
//! lane upstream of the main box. The displaced lane runs outside the
//! opposing lanes, so at the main box the left turn only crosses the
//! cross-street — which moves in a different signal phase anyway.
//!
//! We model the crossover explicitly: the left-turn path leaves its lane
//! `CROSSOVER_FAR` meters before the box, cuts diagonally across the
//! opposing lanes (creating the CFI's characteristic upstream conflict
//! zone), proceeds on the displaced lane, and turns left from the box
//! edge.

use crate::config::GeometryConfig;
use crate::ids::{LegId, MovementId, TurnKind};
use crate::movement::Movement;
use crate::topology::{Leg, Topology};
use crate::types::util;
use nwade_geometry::{LineSegment, Path, PathElement};
use std::f64::consts::FRAC_PI_2;

/// Distance before the box at which the crossover begins.
const CROSSOVER_FAR: f64 = 80.0;
/// Distance before the box at which the crossover completes.
const CROSSOVER_NEAR: f64 = 45.0;

/// Builds the 4-way CFI.
pub fn build(cfg: &GeometryConfig) -> Topology {
    cfg.validate().expect("geometry config must be valid");
    assert!(
        cfg.approach_len > CROSSOVER_FAR + 20.0,
        "approach too short for the CFI crossover"
    );
    let angles = [0.0, FRAC_PI_2, 2.0 * FRAC_PI_2, 3.0 * FRAC_PI_2];
    let box_r = cfg.box_radius();
    let legs: Vec<Leg> = angles
        .iter()
        .enumerate()
        .map(|(i, &a)| Leg::new(LegId::new(i as u8), a, cfg.lanes_in, cfg.lanes_out))
        .collect();

    let mut movements = Vec::new();
    for (ai, &theta_a) in angles.iter().enumerate() {
        let u_a = util::leg_dir(theta_a);
        for (bi, &theta_b) in angles.iter().enumerate() {
            if ai == bi {
                continue;
            }
            let turn = TurnKind::from_delta(util::turn_delta(theta_a, theta_b));
            let u_b = util::leg_dir(theta_b);
            for lane in util::lanes_for_turn(turn, cfg.lanes_in) {
                let out = util::exit_lane(turn, lane, cfg.lanes_out);
                let exit_start = util::exit_start(u_b, cfg, box_r, out);
                let exit_end = util::exit_end(u_b, cfg, box_r, out);
                let spawn = util::spawn_point(u_a, cfg, box_r, lane);

                let (elements, box_entry) = if turn == TurnKind::Left {
                    // Displaced left: lane offset beyond the outgoing side.
                    let disp = -u_a.perp() * (cfg.lane_width * (cfg.lanes_out as f64 + 0.7));
                    let p1 =
                        u_a * (box_r + CROSSOVER_FAR) + util::in_offset(u_a, cfg.lane_width, lane);
                    let p2 = u_a * (box_r + CROSSOVER_NEAR) + disp;
                    let p3 = u_a * box_r + disp;
                    let elements = vec![
                        PathElement::Line(LineSegment::new(spawn, p1)),
                        PathElement::Line(LineSegment::new(p1, p2)),
                        PathElement::Line(LineSegment::new(p2, p3)),
                        PathElement::Line(LineSegment::new(p3, exit_start)),
                        PathElement::Line(LineSegment::new(exit_start, exit_end)),
                    ];
                    let box_entry = spawn.distance(p1) + p1.distance(p2) + p2.distance(p3);
                    (elements, box_entry)
                } else {
                    let stop = util::stop_point(u_a, cfg, box_r, lane);
                    let elements = vec![
                        PathElement::Line(LineSegment::new(spawn, stop)),
                        PathElement::Line(LineSegment::new(stop, exit_start)),
                        PathElement::Line(LineSegment::new(exit_start, exit_end)),
                    ];
                    (elements, spawn.distance(stop))
                };
                let path = Path::new(elements);
                let box_exit = path.length() - cfg.exit_len;
                movements.push(Movement::new(
                    MovementId::new(movements.len() as u16),
                    LegId::new(ai as u8),
                    lane,
                    LegId::new(bi as u8),
                    turn,
                    path,
                    box_entry,
                    box_exit,
                ));
            }
        }
    }
    Topology::assemble("4-way CFI", legs, movements, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left_from(topo: &Topology, leg: usize) -> MovementId {
        topo.movements()
            .iter()
            .find(|m| m.from_leg().index() == leg && m.turn() == TurnKind::Left)
            .expect("left movement")
            .id()
    }

    fn straight(topo: &Topology, from: usize, to: usize) -> MovementId {
        topo.movements()
            .iter()
            .find(|m| {
                m.from_leg().index() == from
                    && m.to_leg().index() == to
                    && m.turn() == TurnKind::Straight
            })
            .expect("straight movement")
            .id()
    }

    #[test]
    fn builds_and_validates() {
        let topo = build(&GeometryConfig::default());
        assert_eq!(topo.legs().len(), 4);
        topo.validate().expect("valid");
    }

    #[test]
    fn displaced_left_crosses_opposing_only_upstream() {
        // The CFI's defining property: the left from the west leg (2) and
        // the opposing through east→west (0→2) conflict ONLY at the
        // upstream crossover, never inside the main box. With the conflict
        // moved upstream the two movements can be pipelined.
        let cfg = GeometryConfig::with_lanes(1);
        let box_r = cfg.box_radius();
        let topo = build(&cfg);
        let left_w = topo.movement(left_from(&topo, 2));
        let through_ew = topo.movement(straight(&topo, 0, 2));
        let zones_l: std::collections::HashSet<_> = left_w.zones().iter().map(|z| z.zone).collect();
        let shared: Vec<_> = through_ew
            .zones()
            .iter()
            .filter(|z| zones_l.contains(&z.zone))
            .collect();
        assert!(
            !shared.is_empty(),
            "crossover must intersect the opposing direction's lanes"
        );
        for z in shared {
            // Cell x-extent entirely west of the main box.
            let cell_max_x = (z.zone.col + 1) as f64 * topo.zone_cell();
            assert!(
                cell_max_x < -box_r + topo.zone_cell(),
                "shared zone {} lies inside the main box",
                z.zone
            );
        }
    }

    #[test]
    fn left_turn_conflicts_with_cross_street() {
        let topo = build(&GeometryConfig::with_lanes(1));
        // Left from west (2) crosses the north→south through (1→3).
        let left_w = left_from(&topo, 2);
        let ns = straight(&topo, 1, 3);
        let key = (left_w.min(ns), left_w.max(ns));
        assert!(
            topo.conflicting_pairs().contains(&key),
            "left must still cross the cross-street"
        );
    }

    #[test]
    fn non_left_movements_match_plain_cross_shape() {
        let cfg = GeometryConfig::default();
        let topo = build(&cfg);
        for m in topo.movements() {
            if m.turn() != TurnKind::Left {
                assert!((m.box_entry() - cfg.approach_len).abs() < 1e-9);
            } else {
                // Left paths are longer: they include the crossover dogleg.
                assert!(m.box_entry() > cfg.approach_len);
            }
        }
    }
}
