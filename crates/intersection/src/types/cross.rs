//! Radial intersections: the common 4-way cross and the 5-way irregular
//! intersection, both built by the same generic radial constructor.

use crate::config::GeometryConfig;
use crate::ids::{LegId, MovementId, TurnKind};
use crate::movement::Movement;
use crate::topology::{Leg, Topology};
use crate::types::util;
use nwade_geometry::{LineSegment, Path, PathElement};

/// Builds the paper's common 4-way cross intersection.
pub fn build_cross(cfg: &GeometryConfig) -> Topology {
    use std::f64::consts::FRAC_PI_2;
    build_radial(
        "4-way cross",
        &[0.0, FRAC_PI_2, 2.0 * FRAC_PI_2, 3.0 * FRAC_PI_2],
        cfg,
    )
}

/// Builds the 5-way irregular intersection: five legs at uneven angles.
pub fn build_irregular(cfg: &GeometryConfig) -> Topology {
    let degs = [0.0f64, 75.0, 150.0, 225.0, 290.0];
    let angles: Vec<f64> = degs.iter().map(|d| d.to_radians()).collect();
    build_radial("5-way irregular", &angles, cfg)
}

/// Generic radial intersection: legs at the given outward angles, every
/// movement a three-piece polyline (approach, box chord, exit).
pub fn build_radial(name: &str, angles: &[f64], cfg: &GeometryConfig) -> Topology {
    cfg.validate().expect("geometry config must be valid");
    assert!(angles.len() >= 3, "a radial intersection needs >= 3 legs");
    let box_r = cfg.box_radius();
    let legs: Vec<Leg> = angles
        .iter()
        .enumerate()
        .map(|(i, &a)| Leg::new(LegId::new(i as u8), a, cfg.lanes_in, cfg.lanes_out))
        .collect();

    let mut movements = Vec::new();
    for (ai, &theta_a) in angles.iter().enumerate() {
        let u_a = util::leg_dir(theta_a);
        for (bi, &theta_b) in angles.iter().enumerate() {
            if ai == bi {
                continue;
            }
            let turn = TurnKind::from_delta(util::turn_delta(theta_a, theta_b));
            let u_b = util::leg_dir(theta_b);
            for lane in util::lanes_for_turn(turn, cfg.lanes_in) {
                let out = util::exit_lane(turn, lane, cfg.lanes_out);
                let spawn = util::spawn_point(u_a, cfg, box_r, lane);
                let stop = util::stop_point(u_a, cfg, box_r, lane);
                let exit_start = util::exit_start(u_b, cfg, box_r, out);
                let exit_end = util::exit_end(u_b, cfg, box_r, out);
                let path = Path::new(vec![
                    PathElement::Line(LineSegment::new(spawn, stop)),
                    PathElement::Line(LineSegment::new(stop, exit_start)),
                    PathElement::Line(LineSegment::new(exit_start, exit_end)),
                ]);
                let box_entry = spawn.distance(stop);
                let box_exit = box_entry + stop.distance(exit_start);
                movements.push(Movement::new(
                    MovementId::new(movements.len() as u16),
                    LegId::new(ai as u8),
                    lane,
                    LegId::new(bi as u8),
                    turn,
                    path,
                    box_entry,
                    box_exit,
                ));
            }
        }
    }
    Topology::assemble(name, legs, movements, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TurnKind;

    #[test]
    fn cross_has_expected_movement_count() {
        // Per leg: left (1 lane) + right (1 lane) + 2 straight-capable
        // exits? No — 4-way: one straight exit (1 per lane), one left, one
        // right. With 2 lanes in: 2 straight + 1 left + 1 right = 4.
        let topo = build_cross(&GeometryConfig::with_lanes(2));
        assert_eq!(topo.movements().len(), 4 * 4);
        topo.validate().expect("valid");
    }

    #[test]
    fn cross_turns_partition_correctly() {
        let topo = build_cross(&GeometryConfig::with_lanes(2));
        for leg in topo.legs() {
            let left = topo.movements_with_turn(leg.id(), TurnKind::Left);
            let straight = topo.movements_with_turn(leg.id(), TurnKind::Straight);
            let right = topo.movements_with_turn(leg.id(), TurnKind::Right);
            assert_eq!(left.len(), 1, "{}", leg.id());
            assert_eq!(straight.len(), 2, "{}", leg.id());
            assert_eq!(right.len(), 1, "{}", leg.id());
            // Lane discipline.
            assert_eq!(left[0].from_lane(), 0);
            assert_eq!(right[0].from_lane(), 1);
        }
    }

    #[test]
    fn opposing_straights_do_not_conflict() {
        let topo = build_cross(&GeometryConfig::with_lanes(1));
        // Straight W→E and E→W travel opposite sides of the road.
        let find = |from: u8, to: u8| {
            topo.movements()
                .iter()
                .find(|m| {
                    m.from_leg().index() == from as usize
                        && m.to_leg().index() == to as usize
                        && m.turn() == TurnKind::Straight
                })
                .expect("movement exists")
                .id()
        };
        let we = find(2, 0); // leg 2 is west (angle π) → east
        let ew = find(0, 2);
        let pairs = topo.conflicting_pairs();
        let key = (we.min(ew), we.max(ew));
        assert!(
            !pairs.contains(&key),
            "opposing straights should not share zones"
        );
    }

    #[test]
    fn crossing_straights_conflict() {
        let topo = build_cross(&GeometryConfig::with_lanes(1));
        let find = |from: u8, to: u8| {
            topo.movements()
                .iter()
                .find(|m| {
                    m.from_leg().index() == from as usize && m.to_leg().index() == to as usize
                })
                .expect("movement exists")
                .id()
        };
        let we = find(2, 0);
        let sn = find(3, 1); // south → north
        let key = (we.min(sn), we.max(sn));
        assert!(
            topo.conflicting_pairs().contains(&key),
            "perpendicular straights must conflict"
        );
    }

    #[test]
    fn left_turn_conflicts_with_opposing_straight() {
        let topo = build_cross(&GeometryConfig::with_lanes(1));
        // Left W→N crosses the path of straight E→W.
        let left = topo
            .movements()
            .iter()
            .find(|m| m.from_leg().index() == 2 && m.turn() == TurnKind::Left)
            .expect("left from west");
        let opposing = topo
            .movements()
            .iter()
            .find(|m| {
                m.from_leg().index() == 0
                    && m.to_leg().index() == 2
                    && m.turn() == TurnKind::Straight
            })
            .expect("straight east to west");
        let key = (left.id().min(opposing.id()), left.id().max(opposing.id()));
        assert!(topo.conflicting_pairs().contains(&key));
    }

    #[test]
    fn irregular_has_five_legs_and_validates() {
        let topo = build_irregular(&GeometryConfig::default());
        assert_eq!(topo.legs().len(), 5);
        topo.validate().expect("valid");
        // Every leg must reach every other leg through some movement.
        for a in topo.legs() {
            let reachable: std::collections::HashSet<usize> = topo
                .movements_from(a.id())
                .iter()
                .map(|m| m.to_leg().index())
                .collect();
            assert_eq!(reachable.len(), 4, "leg {} reaches {reachable:?}", a.id());
        }
    }

    #[test]
    fn paths_span_approach_box_exit() {
        let cfg = GeometryConfig::default();
        let topo = build_cross(&cfg);
        for m in topo.movements() {
            assert!((m.box_entry() - cfg.approach_len).abs() < 1e-9);
            assert!(m.box_exit() > m.box_entry());
            assert!(m.path().length() > m.box_exit());
            // Exit segment length matches config.
            assert!((m.path().length() - m.box_exit() - cfg.exit_len).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = ">= 3 legs")]
    fn two_leg_radial_panics() {
        let _ = build_radial("bad", &[0.0, 1.0], &GeometryConfig::default());
    }
}
