//! The 4-way diverging diamond interchange (DDI).
//!
//! A DDI carries an east–west arterial across a pair of ramp legs (north
//! and south). Between two crossover points the arterial's directions
//! swap sides, so left turns onto the ramps depart from the "wrong" side
//! without crossing the opposing through movement. The only
//! through-vs-through conflicts are the two crossover boxes themselves,
//! and ramp movements merge or diverge without crossing opposing flow.
//!
//! Legs: 0 = east, 1 = north ramp, 2 = west, 3 = south ramp. The ramps
//! have no through (north↔south) movement, exactly as at a real DDI.

use crate::config::GeometryConfig;
use crate::ids::{LegId, MovementId, TurnKind};
use crate::movement::Movement;
use crate::topology::{Leg, Topology};
use crate::types::util;
use nwade_geometry::{LineSegment, Path, PathElement, Vec2};
use std::f64::consts::{FRAC_PI_2, PI};

/// Half-length of each crossover diagonal along x.
const DIAG: f64 = 15.0;
/// Distance from the center to each crossover center.
fn crossover_x(cfg: &GeometryConfig) -> f64 {
    cfg.box_radius() + 25.0
}
/// y coordinate at which the ramp legs begin.
fn ramp_base(cfg: &GeometryConfig) -> f64 {
    cfg.lanes_in.max(cfg.lanes_out) as f64 * cfg.lane_width + 6.0
}

/// Builds the 4-way DDI.
pub fn build(cfg: &GeometryConfig) -> Topology {
    cfg.validate().expect("geometry config must be valid");
    let w = cfg.lane_width;
    let nl = cfg.lanes_in;
    let no = cfg.lanes_out;
    let lc = crossover_x(cfg);
    let yb = ramp_base(cfg);
    let app = cfg.approach_len;
    let ext = cfg.exit_len;

    let legs = vec![
        Leg::new(LegId::new(0), 0.0, nl, no),
        Leg::new(LegId::new(1), FRAC_PI_2, nl, no),
        Leg::new(LegId::new(2), PI, nl, no),
        Leg::new(LegId::new(3), 3.0 * FRAC_PI_2, nl, no),
    ];

    // Lane center helpers (arterial).
    let ys = |i: usize| -((i as f64 + 0.5) * w); // south side
    let yn = |i: usize| (i as f64 + 0.5) * w; // north side
    let xn = |j: usize| (j as f64 + 0.5) * w; // north-ramp exit lanes
    let xn_in = |i: usize| -((i as f64 + 0.5) * w); // north-ramp entry lanes
    let xs = |j: usize| -((j as f64 + 0.5) * w); // south-ramp exit lanes
    let xs_in = |i: usize| (i as f64 + 0.5) * w; // south-ramp entry lanes

    let mut movements: Vec<Movement> = Vec::new();
    let push = |movements: &mut Vec<Movement>,
                from: u8,
                lane: usize,
                to: u8,
                turn: TurnKind,
                pts: Vec<Vec2>,
                approach: f64,
                exit: f64| {
        let elements: Vec<PathElement> = pts
            .windows(2)
            .map(|p| PathElement::Line(LineSegment::new(p[0], p[1])))
            .collect();
        let path = Path::new(elements);
        let box_entry = approach;
        let box_exit = path.length() - exit;
        movements.push(Movement::new(
            MovementId::new(movements.len() as u16),
            LegId::new(from),
            lane,
            LegId::new(to),
            turn,
            path,
            box_entry,
            box_exit,
        ));
    };

    // --- Arterial through movements (both cross both crossovers). ---
    for i in util::lanes_for_turn(TurnKind::Straight, nl) {
        let j = util::exit_lane(TurnKind::Straight, i, no);
        // West → East.
        push(
            &mut movements,
            2,
            i,
            0,
            TurnKind::Straight,
            vec![
                Vec2::new(-(lc + DIAG + app), ys(i)),
                Vec2::new(-(lc + DIAG), ys(i)),
                Vec2::new(-(lc - DIAG), yn(i)),
                Vec2::new(lc - DIAG, yn(i)),
                Vec2::new(lc + DIAG, ys(j)),
                Vec2::new(lc + DIAG + ext, ys(j)),
            ],
            app,
            ext,
        );
        // East → West.
        push(
            &mut movements,
            0,
            i,
            2,
            TurnKind::Straight,
            vec![
                Vec2::new(lc + DIAG + app, yn(i)),
                Vec2::new(lc + DIAG, yn(i)),
                Vec2::new(lc - DIAG, ys(i)),
                Vec2::new(-(lc - DIAG), ys(i)),
                Vec2::new(-(lc + DIAG), yn(j)),
                Vec2::new(-(lc + DIAG + ext), yn(j)),
            ],
            app,
            ext,
        );
    }

    // --- Arterial left turns onto the ramps (free-flow from the crossed
    // side: they never meet the opposing through). ---
    for i in util::lanes_for_turn(TurnKind::Left, nl) {
        let j = util::exit_lane(TurnKind::Left, i, no);
        // West → North.
        push(
            &mut movements,
            2,
            i,
            1,
            TurnKind::Left,
            vec![
                Vec2::new(-(lc + DIAG + app), ys(i)),
                Vec2::new(-(lc + DIAG), ys(i)),
                Vec2::new(-(lc - DIAG), yn(i)),
                Vec2::new(xn(j) - DIAG, yn(i)),
                Vec2::new(xn(j), yb),
                Vec2::new(xn(j), yb + ext),
            ],
            app,
            ext,
        );
        // East → South.
        push(
            &mut movements,
            0,
            i,
            3,
            TurnKind::Left,
            vec![
                Vec2::new(lc + DIAG + app, yn(i)),
                Vec2::new(lc + DIAG, yn(i)),
                Vec2::new(lc - DIAG, ys(i)),
                Vec2::new(xs(j) + DIAG, ys(i)),
                Vec2::new(xs(j), -yb),
                Vec2::new(xs(j), -(yb + ext)),
            ],
            app,
            ext,
        );
    }

    // --- Arterial right turns onto the ramps (diverge before the first
    // crossover). ---
    for i in util::lanes_for_turn(TurnKind::Right, nl) {
        let j = util::exit_lane(TurnKind::Right, i, no);
        // West → South.
        push(
            &mut movements,
            2,
            i,
            3,
            TurnKind::Right,
            vec![
                Vec2::new(-(lc + DIAG + app), ys(i)),
                Vec2::new(-(lc + DIAG + 5.0), ys(i)),
                Vec2::new(xs(j), -yb),
                Vec2::new(xs(j), -(yb + ext)),
            ],
            app - 5.0,
            ext,
        );
        // East → North.
        push(
            &mut movements,
            0,
            i,
            1,
            TurnKind::Right,
            vec![
                Vec2::new(lc + DIAG + app, yn(i)),
                Vec2::new(lc + DIAG + 5.0, yn(i)),
                Vec2::new(xn(j), yb),
                Vec2::new(xn(j), yb + ext),
            ],
            app - 5.0,
            ext,
        );
    }

    // --- Ramp movements. ---
    for i in util::lanes_for_turn(TurnKind::Right, nl) {
        let j = util::exit_lane(TurnKind::Right, i, no);
        // North → West (right).
        push(
            &mut movements,
            1,
            i,
            2,
            TurnKind::Right,
            vec![
                Vec2::new(xn_in(i), yb + app),
                Vec2::new(xn_in(i), yb),
                Vec2::new(-(lc + DIAG), yn(j)),
                Vec2::new(-(lc + DIAG + ext), yn(j)),
            ],
            app,
            ext,
        );
        // South → East (right).
        push(
            &mut movements,
            3,
            i,
            0,
            TurnKind::Right,
            vec![
                Vec2::new(xs_in(i), -(yb + app)),
                Vec2::new(xs_in(i), -yb),
                Vec2::new(lc + DIAG, ys(j)),
                Vec2::new(lc + DIAG + ext, ys(j)),
            ],
            app,
            ext,
        );
    }
    for i in util::lanes_for_turn(TurnKind::Left, nl) {
        let j = util::exit_lane(TurnKind::Left, i, no);
        // North → East (left): merge into the eastbound crossed section.
        push(
            &mut movements,
            1,
            i,
            0,
            TurnKind::Left,
            vec![
                Vec2::new(xn_in(i), yb + app),
                Vec2::new(xn_in(i), yb),
                Vec2::new(lc - DIAG, yn(0)),
                Vec2::new(lc + DIAG, ys(j)),
                Vec2::new(lc + DIAG + ext, ys(j)),
            ],
            app,
            ext,
        );
        // South → West (left): merge into the westbound crossed section.
        push(
            &mut movements,
            3,
            i,
            2,
            TurnKind::Left,
            vec![
                Vec2::new(xs_in(i), -(yb + app)),
                Vec2::new(xs_in(i), -yb),
                Vec2::new(-(lc - DIAG), ys(0)),
                Vec2::new(-(lc + DIAG), yn(j)),
                Vec2::new(-(lc + DIAG + ext), yn(j)),
            ],
            app,
            ext,
        );
    }

    Topology::assemble("4-way DDI", legs, movements, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(topo: &Topology, from: usize, to: usize) -> MovementId {
        topo.movements()
            .iter()
            .find(|m| m.from_leg().index() == from && m.to_leg().index() == to)
            .unwrap_or_else(|| panic!("movement {from}->{to} missing"))
            .id()
    }

    #[test]
    fn builds_and_validates() {
        let topo = build(&GeometryConfig::default());
        assert_eq!(topo.legs().len(), 4);
        topo.validate().expect("valid");
    }

    #[test]
    fn ramps_have_no_through_movement() {
        let topo = build(&GeometryConfig::default());
        assert!(topo
            .movements()
            .iter()
            .all(|m| !(m.from_leg().index() == 1 && m.to_leg().index() == 3)));
        assert!(topo
            .movements()
            .iter()
            .all(|m| !(m.from_leg().index() == 3 && m.to_leg().index() == 1)));
    }

    #[test]
    fn throughs_conflict_at_crossovers_only() {
        let cfg = GeometryConfig::with_lanes(1);
        let topo = build(&cfg);
        let we = topo.movement(find(&topo, 2, 0));
        let ew = topo.movement(find(&topo, 0, 2));
        let zones_we: std::collections::HashSet<_> = we.zones().iter().map(|z| z.zone).collect();
        let shared: Vec<_> = ew
            .zones()
            .iter()
            .filter(|z| zones_we.contains(&z.zone))
            .collect();
        assert!(!shared.is_empty(), "throughs must cross at the crossovers");
        let lc = crossover_x(&cfg);
        for z in shared {
            let cx = (z.zone.col as f64 + 0.5) * topo.zone_cell();
            assert!(
                (cx.abs() - lc).abs() < DIAG + 2.0 * topo.zone_cell(),
                "shared zone at x={cx:.1} is outside both crossovers (lc={lc:.1})"
            );
        }
    }

    #[test]
    fn left_turns_avoid_opposing_through() {
        let topo = build(&GeometryConfig::with_lanes(1));
        // W→N left vs E→W through: the DDI's signature free left.
        let left = find(&topo, 2, 1);
        let opposing = find(&topo, 0, 2);
        let key = (left.min(opposing), left.max(opposing));
        // They DO share the west crossover (both pass through it), so look
        // at zones east of the west crossover: the left turn's zones there
        // are all on the north side, the westbound through's on the south.
        let lm = topo.movement(left);
        let om = topo.movement(opposing);
        let zl: std::collections::HashSet<_> = lm
            .zones()
            .iter()
            .filter(|z| {
                (z.zone.col as f64) * topo.zone_cell()
                    > -(crossover_x(&GeometryConfig::with_lanes(1)) - DIAG)
            })
            .map(|z| z.zone)
            .collect();
        let shared_inside = om
            .zones()
            .iter()
            .filter(|z| {
                (z.zone.col as f64) * topo.zone_cell()
                    > -(crossover_x(&GeometryConfig::with_lanes(1)) - DIAG)
            })
            .filter(|z| zl.contains(&z.zone))
            .count();
        assert_eq!(
            shared_inside, 0,
            "left turn and opposing through overlap between crossovers ({key:?})"
        );
    }

    #[test]
    fn ramp_left_merges_with_through() {
        let topo = build(&GeometryConfig::with_lanes(1));
        // N→E left merges into the eastbound section → must share zones
        // with W→E through.
        let merge = find(&topo, 1, 0);
        let through = find(&topo, 2, 0);
        let key = (merge.min(through), merge.max(through));
        assert!(topo.conflicting_pairs().contains(&key));
    }

    #[test]
    fn turn_kinds_match_geometry() {
        let topo = build(&GeometryConfig::default());
        for m in topo.movements() {
            match (m.from_leg().index(), m.to_leg().index()) {
                (2, 0) | (0, 2) => assert_eq!(m.turn(), TurnKind::Straight),
                (2, 1) | (0, 3) | (1, 0) | (3, 2) => assert_eq!(m.turn(), TurnKind::Left),
                (2, 3) | (0, 1) | (1, 2) | (3, 0) => assert_eq!(m.turn(), TurnKind::Right),
                other => panic!("unexpected movement {other:?}"),
            }
        }
    }
}
