//! Builders for the five evaluated intersection geometries.

pub mod cfi;
pub mod cross;
pub mod ddi;
pub mod roundabout;
pub(crate) mod util;
