//! The 3-way roundabout: movements circulate counter-clockwise around a
//! central circle, entering just clockwise of their leg and exiting just
//! counter-clockwise of the destination leg.

use crate::config::GeometryConfig;
use crate::ids::{normalize_angle, LegId, MovementId, TurnKind};
use crate::movement::Movement;
use crate::topology::{Leg, Topology};
use crate::types::util;
use nwade_geometry::{Arc, LineSegment, Path, PathElement, Vec2};
use std::f64::consts::TAU;

/// Angular offset of entry/exit points from the leg center line.
const MOUTH_OFFSET_DEG: f64 = 10.0;
/// Additional per-lane angular stagger so multi-lane legs do not produce
/// identical entry points.
const LANE_STAGGER_DEG: f64 = 3.0;

/// Builds the 3-way roundabout.
pub fn build(cfg: &GeometryConfig) -> Topology {
    cfg.validate().expect("geometry config must be valid");
    let angles = [90f64.to_radians(), 210f64.to_radians(), 330f64.to_radians()];
    let circle_r = cfg.box_radius() + 4.0;

    let legs: Vec<Leg> = angles
        .iter()
        .enumerate()
        .map(|(i, &a)| Leg::new(LegId::new(i as u8), a, cfg.lanes_in, cfg.lanes_out))
        .collect();

    let mouth = MOUTH_OFFSET_DEG.to_radians();
    let mut movements = Vec::new();
    for (ai, &theta_a) in angles.iter().enumerate() {
        let u_a = util::leg_dir(theta_a);
        for (bi, &theta_b) in angles.iter().enumerate() {
            if ai == bi {
                continue;
            }
            let turn = TurnKind::from_delta(util::turn_delta(theta_a, theta_b));
            let u_b = util::leg_dir(theta_b);
            for lane in util::lanes_for_turn(turn, cfg.lanes_in) {
                let out = util::exit_lane(turn, lane, cfg.lanes_out);
                let entry_angle = theta_a - mouth - (lane as f64) * LANE_STAGGER_DEG.to_radians();
                let exit_angle = theta_b + mouth;
                // Counter-clockwise sweep from entry to exit, in (0, 2π).
                let mut sweep = normalize_angle(exit_angle - entry_angle);
                if sweep <= 0.0 {
                    sweep += TAU;
                }
                let entry_pt = Vec2::from_angle(entry_angle) * circle_r;
                let arc = Arc::new(Vec2::ZERO, circle_r, entry_angle, sweep);
                let exit_pt = arc.end();
                let spawn = util::spawn_point(u_a, cfg, circle_r, lane);
                let exit_end = util::exit_end(u_b, cfg, circle_r, out);
                let path = Path::new(vec![
                    PathElement::Line(LineSegment::new(spawn, entry_pt)),
                    PathElement::Arc(arc),
                    PathElement::Line(LineSegment::new(exit_pt, exit_end)),
                ]);
                let box_entry = spawn.distance(entry_pt);
                let box_exit = box_entry + arc.length();
                movements.push(Movement::new(
                    MovementId::new(movements.len() as u16),
                    LegId::new(ai as u8),
                    lane,
                    LegId::new(bi as u8),
                    turn,
                    path,
                    box_entry,
                    box_exit,
                ));
            }
        }
    }
    Topology::assemble("3-way roundabout", legs, movements, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let topo = build(&GeometryConfig::default());
        assert_eq!(topo.legs().len(), 3);
        topo.validate().expect("valid");
    }

    #[test]
    fn movements_cover_all_leg_pairs() {
        let topo = build(&GeometryConfig::with_lanes(1));
        let mut pairs: Vec<(usize, usize)> = topo
            .movements()
            .iter()
            .map(|m| (m.from_leg().index(), m.to_leg().index()))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 6, "3 legs × 2 destinations");
    }

    #[test]
    fn circulating_movements_share_arc_zones() {
        let topo = build(&GeometryConfig::with_lanes(1));
        // Any two movements entering from different legs share part of the
        // circle, so conflicts must be plentiful.
        let pairs = topo.conflicting_pairs();
        assert!(
            pairs.len() >= 6,
            "expected many circulating conflicts, got {}",
            pairs.len()
        );
    }

    #[test]
    fn arc_lengths_are_reasonable() {
        let topo = build(&GeometryConfig::with_lanes(1));
        for m in topo.movements() {
            let arc_len = m.box_exit() - m.box_entry();
            let circle_r = GeometryConfig::default().box_radius() + 4.0;
            // Sweep between ~20° and 360°.
            assert!(arc_len > 0.3 * circle_r, "{}: arc too short", m.id());
            assert!(arc_len < TAU * circle_r, "{}: arc too long", m.id());
        }
    }

    #[test]
    fn no_u_turns() {
        let topo = build(&GeometryConfig::default());
        assert!(topo.movements().iter().all(|m| m.from_leg() != m.to_leg()));
    }
}
