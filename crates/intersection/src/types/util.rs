//! Shared geometry helpers for the intersection builders.
//!
//! All builders use right-hand traffic: for a leg whose outward direction
//! is `u`, incoming lanes sit on the `u.perp()` side (the right-hand side
//! of a vehicle travelling inward along `-u`) and outgoing lanes on the
//! opposite side.

use crate::config::GeometryConfig;
use crate::ids::{normalize_angle, TurnKind};
use nwade_geometry::Vec2;

/// Outward unit vector of a leg at `angle`.
pub fn leg_dir(angle: f64) -> Vec2 {
    Vec2::from_angle(angle)
}

/// Center-line offset of incoming lane `i` on a leg with direction `u`.
pub fn in_offset(u: Vec2, lane_width: f64, i: usize) -> Vec2 {
    u.perp() * (lane_width * (i as f64 + 0.5))
}

/// Center-line offset of outgoing lane `j` on a leg with direction `u`.
pub fn out_offset(u: Vec2, lane_width: f64, j: usize) -> Vec2 {
    -u.perp() * (lane_width * (j as f64 + 0.5))
}

/// Spawn point of incoming lane `i`: where vehicles enter the modeled
/// area.
pub fn spawn_point(u: Vec2, cfg: &GeometryConfig, box_r: f64, i: usize) -> Vec2 {
    u * (box_r + cfg.approach_len) + in_offset(u, cfg.lane_width, i)
}

/// Stop-line point of incoming lane `i`: the box boundary.
pub fn stop_point(u: Vec2, cfg: &GeometryConfig, box_r: f64, i: usize) -> Vec2 {
    u * box_r + in_offset(u, cfg.lane_width, i)
}

/// Box-boundary point where outgoing lane `j` begins.
pub fn exit_start(u: Vec2, cfg: &GeometryConfig, box_r: f64, j: usize) -> Vec2 {
    u * box_r + out_offset(u, cfg.lane_width, j)
}

/// End of outgoing lane `j`: where vehicles leave the modeled area.
pub fn exit_end(u: Vec2, cfg: &GeometryConfig, box_r: f64, j: usize) -> Vec2 {
    u * (box_r + cfg.exit_len) + out_offset(u, cfg.lane_width, j)
}

/// Heading change from entering along leg `from_angle` to exiting along
/// leg `to_angle`, normalized to `(-π, π]`.
pub fn turn_delta(from_angle: f64, to_angle: f64) -> f64 {
    normalize_angle(to_angle - (from_angle + std::f64::consts::PI))
}

/// The incoming lanes allowed to perform `turn` out of `lanes_in` lanes:
/// left turns use the leftmost lane (index 0), right turns the rightmost,
/// straight movements every lane.
pub fn lanes_for_turn(turn: TurnKind, lanes_in: usize) -> Vec<usize> {
    match turn {
        TurnKind::Left => vec![0],
        TurnKind::Right => vec![lanes_in - 1],
        TurnKind::Straight => (0..lanes_in).collect(),
    }
}

/// The outgoing lane a movement exits into.
pub fn exit_lane(turn: TurnKind, from_lane: usize, lanes_out: usize) -> usize {
    match turn {
        TurnKind::Left => 0,
        TurnKind::Right => lanes_out - 1,
        TurnKind::Straight => from_lane.min(lanes_out - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn west_leg_lane_sides() {
        // West leg: u = (-1, 0). Eastbound (inward) traffic keeps right,
        // i.e. the south side.
        let u = leg_dir(PI);
        let cfg = GeometryConfig::default();
        let inc = in_offset(u, cfg.lane_width, 0);
        assert!(inc.y < 0.0, "incoming lane should be south, got {inc}");
        let out = out_offset(u, cfg.lane_width, 0);
        assert!(out.y > 0.0, "outgoing lane should be north, got {out}");
    }

    #[test]
    fn spawn_is_farther_than_stop() {
        let cfg = GeometryConfig::default();
        let u = leg_dir(0.3);
        let s = spawn_point(u, &cfg, 15.0, 0);
        let t = stop_point(u, &cfg, 15.0, 0);
        assert!((s.distance(t) - cfg.approach_len).abs() < 1e-9);
        assert!(s.norm() > t.norm());
    }

    #[test]
    fn turn_delta_classifications() {
        // From the west leg (π) going to the east leg (0): straight.
        assert!(turn_delta(PI, 0.0).abs() < 1e-9);
        // West → north (π/2): eastbound turning left.
        assert_eq!(
            TurnKind::from_delta(turn_delta(PI, PI / 2.0)),
            TurnKind::Left
        );
        // West → south (3π/2): eastbound turning right.
        assert_eq!(
            TurnKind::from_delta(turn_delta(PI, 3.0 * PI / 2.0)),
            TurnKind::Right
        );
    }

    #[test]
    fn lane_allocation_rules() {
        assert_eq!(lanes_for_turn(TurnKind::Left, 3), vec![0]);
        assert_eq!(lanes_for_turn(TurnKind::Right, 3), vec![2]);
        assert_eq!(lanes_for_turn(TurnKind::Straight, 3), vec![0, 1, 2]);
        assert_eq!(lanes_for_turn(TurnKind::Left, 1), vec![0]);
        assert_eq!(exit_lane(TurnKind::Left, 2, 2), 0);
        assert_eq!(exit_lane(TurnKind::Right, 0, 2), 1);
        assert_eq!(exit_lane(TurnKind::Straight, 1, 2), 1);
        assert_eq!(exit_lane(TurnKind::Straight, 3, 2), 1);
    }
}
