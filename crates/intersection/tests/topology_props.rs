//! Property tests over the topology builders' public API.

use nwade_intersection::{build, GeometryConfig, IntersectionKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every kind validates for every reasonable lane count, and the
    /// zone rasterization tiles every movement path without gaps.
    #[test]
    fn all_kinds_valid_across_lane_counts(
        lanes in 1usize..4,
        kind_idx in 0usize..5,
    ) {
        let kind = IntersectionKind::ALL[kind_idx];
        let cfg = GeometryConfig::with_lanes(lanes);
        let topo = build(kind, &cfg);
        topo.validate().expect("valid topology");
        for m in topo.movements() {
            let zones = m.zones();
            prop_assert!(!zones.is_empty());
            prop_assert!((zones[0].enter - 0.0).abs() < 1e-9);
            prop_assert!((zones[zones.len() - 1].exit - m.path().length()).abs() < 1e-9);
            for w in zones.windows(2) {
                prop_assert!((w[0].exit - w[1].enter).abs() < 1e-9, "gap in tiling");
            }
            // Box markers within the path.
            prop_assert!(m.box_entry() >= 0.0);
            prop_assert!(m.box_exit() <= m.path().length() + 1e-6);
        }
    }

    /// Paths are geometrically continuous: consecutive sampled points
    /// are never farther apart than the sampling step allows.
    #[test]
    fn movement_paths_are_continuous(kind_idx in 0usize..5) {
        let kind = IntersectionKind::ALL[kind_idx];
        let topo = build(kind, &GeometryConfig::default());
        for m in topo.movements() {
            let pts = m.path().sample(2.0);
            for w in pts.windows(2) {
                prop_assert!(
                    w[0].distance(w[1]) < 2.5,
                    "{}: discontinuity of {:.2} m",
                    m.id(),
                    w[0].distance(w[1])
                );
            }
        }
    }

    /// Conflict structure is symmetric and self-free.
    #[test]
    fn conflict_pairs_are_canonical(kind_idx in 0usize..5) {
        let kind = IntersectionKind::ALL[kind_idx];
        let topo = build(kind, &GeometryConfig::default());
        let pairs = topo.conflicting_pairs();
        for (a, b) in &pairs {
            prop_assert!(a < b, "pairs stored canonically");
        }
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        prop_assert_eq!(set.len(), pairs.len(), "no duplicates");
    }
}
