//! Adaptive adversaries beyond the static Table I attack plans.
//!
//! The Table I settings ([`crate::AttackPlan`]) stage a fixed violation
//! and a fixed number of false reporters. The policies here instead
//! *react* to the defence, stressing the Eq. 2 detection model from the
//! attacker's side:
//!
//! * [`AdaptivePlan`] — a compromised vehicle that binary-searches the
//!   watchers' position tolerance, pulsing lateral deviations and
//!   shrinking the amplitude every time an incident report names it.
//!   It converges to the largest deviation the neighbourhood watch
//!   does *not* flag — the worst-case undetectable attacker.
//! * [`CliquePlan`] — a fraction of the fleet colludes: clique members
//!   suppress their own observations (they never report honestly) and
//!   fabricate accusations against an innocent vehicle. Sweeping the
//!   fraction maps the quorum cliff that Eq. 2's `p_v` term predicts.
//! * [`SybilPlan`] — phantom reporter identities that exist only on the
//!   radio: they hold no plan, drive nothing, and flood the manager
//!   with fabricated incident reports. The false-reporter ledger is the
//!   defence under test — each phantom gets at most
//!   `false_report_threshold` verification rounds before it is ignored.
//!
//! Every policy is a plain-data plan validated by
//! [`crate::SimConfig::validate`]; the world owns all runtime state so
//! forensic snapshots ([`crate::WorldHistory`]) capture adversary
//! progress like any other state.

use nwade_traffic::VehicleId;

/// First raw id used for Sybil phantom reporters. Far above any id the
/// demand generator assigns, so phantoms never collide with real
/// vehicles in the medium's position table or the manager's ledger.
pub const SYBIL_ID_BASE: u64 = 900_000;

/// A compromised vehicle that probes for the detection threshold.
///
/// The attacker keeps executing its published plan longitudinally (so
/// the manager's schedule stays intact) while pulsing a lateral offset
/// during the first half of every probe epoch. At the end of an epoch
/// the amplitude bisects: reported ⇒ too bold, halve down; unreported
/// ⇒ safe, push up. After `log2(max_amplitude / resolution)` epochs the
/// amplitude brackets the effective tolerance of the watcher set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePlan {
    /// Simulation time at which the probe campaign begins.
    pub start: f64,
    /// Length of one probe epoch, seconds. Must comfortably exceed the
    /// sensing interval, otherwise a pulse can fall between passes and
    /// read as "undetected" for the wrong reason.
    pub probe_period: f64,
    /// Upper bound of the bisection, meters of lateral offset.
    pub max_amplitude: f64,
}

impl Default for AdaptivePlan {
    fn default() -> Self {
        AdaptivePlan {
            start: 40.0,
            probe_period: 4.0,
            max_amplitude: 8.0,
        }
    }
}

/// A colluding watcher clique recruited from the live fleet.
///
/// At `start`, `fraction` of the currently active vehicles flip to
/// false reporters: their sensing passes stop (observation
/// suppression), their verification votes lie, and they fabricate
/// incident reports against one innocent vehicle. This is the
/// vehicle-side knob behind Eq. 2's `p_v` — the probability that a
/// randomly drawn watcher is compromised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CliquePlan {
    /// Simulation time at which the clique activates.
    pub start: f64,
    /// Fraction of the active fleet recruited, in (0, 1].
    pub fraction: f64,
}

impl Default for CliquePlan {
    fn default() -> Self {
        CliquePlan {
            start: 40.0,
            fraction: 0.3,
        }
    }
}

/// Phantom reporter identities flooding the manager.
///
/// Each phantom unicasts a fabricated incident report against the same
/// innocent target every `report_interval`. Phantoms never answer
/// verification polls (they are not in any watcher group — they have
/// no position in the fleet), so every report costs the manager a
/// verification round until the false-reporter ledger blacklists that
/// phantom id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SybilPlan {
    /// Simulation time at which the phantoms appear.
    pub start: f64,
    /// Number of phantom identities.
    pub count: usize,
    /// Seconds between report volleys.
    pub report_interval: f64,
}

impl Default for SybilPlan {
    fn default() -> Self {
        SybilPlan {
            start: 40.0,
            count: 4,
            report_interval: 3.0,
        }
    }
}

/// One composable adversary policy, configured next to (and compatible
/// with) the static [`crate::AttackPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackPolicy {
    /// Threshold-probing lateral deviations.
    Adaptive(AdaptivePlan),
    /// Colluding watcher clique (suppression + fabrication).
    Clique(CliquePlan),
    /// Phantom reporter flood.
    Sybil(SybilPlan),
}

impl AttackPolicy {
    /// Simulation time at which the policy activates.
    pub fn start(&self) -> f64 {
        match self {
            AttackPolicy::Adaptive(p) => p.start,
            AttackPolicy::Clique(p) => p.start,
            AttackPolicy::Sybil(p) => p.start,
        }
    }

    /// Validates the policy against the run duration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self, duration: f64) -> Result<(), String> {
        let start = self.start();
        if !(start > 0.0 && start < duration) {
            return Err("adversary start must fall inside the run".into());
        }
        match self {
            AttackPolicy::Adaptive(p) => {
                if !(p.probe_period > 0.0 && p.probe_period.is_finite()) {
                    return Err("adaptive probe period must be positive and finite".into());
                }
                if !(p.max_amplitude > 0.0 && p.max_amplitude.is_finite()) {
                    return Err("adaptive max amplitude must be positive and finite".into());
                }
            }
            AttackPolicy::Clique(p) => {
                if !(p.fraction > 0.0 && p.fraction <= 1.0) {
                    return Err("clique fraction must be in (0, 1]".into());
                }
            }
            AttackPolicy::Sybil(p) => {
                if p.count == 0 {
                    return Err("sybil count must be at least one".into());
                }
                if !(p.report_interval > 0.0 && p.report_interval.is_finite()) {
                    return Err("sybil report interval must be positive and finite".into());
                }
            }
        }
        Ok(())
    }
}

/// Runtime state of the adaptive attacker's bisection, owned by the
/// world so snapshots carry it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveState {
    /// The compromised vehicle currently probing.
    pub id: VehicleId,
    /// Largest amplitude known to go unreported.
    pub lo: f64,
    /// Smallest amplitude known to draw a report.
    pub hi: f64,
    /// Amplitude of the current epoch's pulse.
    pub amp: f64,
    /// When the current epoch started.
    pub epoch_start: f64,
    /// Whether an incident report named `id` during this epoch.
    pub reported_this_epoch: bool,
}

impl AdaptiveState {
    /// Starts a bisection for `id` at the plan's upper bound — the first
    /// epoch probes at full amplitude to confirm the bracket.
    pub fn new(id: VehicleId, plan: &AdaptivePlan, now: f64) -> Self {
        AdaptiveState {
            id,
            lo: 0.0,
            hi: plan.max_amplitude,
            amp: plan.max_amplitude,
            epoch_start: now,
            reported_this_epoch: false,
        }
    }

    /// Closes the current epoch: folds the report verdict into the
    /// bracket and picks the next amplitude by bisection.
    pub fn close_epoch(&mut self, now: f64) {
        if self.reported_this_epoch {
            self.hi = self.amp;
        } else {
            self.lo = self.amp;
        }
        self.amp = 0.5 * (self.lo + self.hi);
        self.epoch_start = now;
        self.reported_this_epoch = false;
    }

    /// Width of the remaining bracket around the detection threshold.
    pub fn bracket_width(&self) -> f64 {
        self.hi - self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        for policy in [
            AttackPolicy::Adaptive(AdaptivePlan::default()),
            AttackPolicy::Clique(CliquePlan::default()),
            AttackPolicy::Sybil(SybilPlan::default()),
        ] {
            policy.validate(300.0).expect("default policy valid");
        }
    }

    #[test]
    fn invalid_policies_rejected() {
        let late = AttackPolicy::Adaptive(AdaptivePlan {
            start: 1e9,
            ..Default::default()
        });
        assert!(late.validate(300.0).is_err());

        let flat = AttackPolicy::Adaptive(AdaptivePlan {
            max_amplitude: 0.0,
            ..Default::default()
        });
        assert!(flat.validate(300.0).is_err());

        let zero_period = AttackPolicy::Adaptive(AdaptivePlan {
            probe_period: 0.0,
            ..Default::default()
        });
        assert!(zero_period.validate(300.0).is_err());

        let empty = AttackPolicy::Clique(CliquePlan {
            fraction: 0.0,
            ..Default::default()
        });
        assert!(empty.validate(300.0).is_err());

        let oversized = AttackPolicy::Clique(CliquePlan {
            fraction: 1.5,
            ..Default::default()
        });
        assert!(oversized.validate(300.0).is_err());

        let none = AttackPolicy::Sybil(SybilPlan {
            count: 0,
            ..Default::default()
        });
        assert!(none.validate(300.0).is_err());

        let never = AttackPolicy::Sybil(SybilPlan {
            report_interval: f64::INFINITY,
            ..Default::default()
        });
        assert!(never.validate(300.0).is_err());
    }

    #[test]
    fn bisection_converges_onto_threshold() {
        let plan = AdaptivePlan::default();
        let mut st = AdaptiveState::new(VehicleId::new(7), &plan, 0.0);
        // Ground-truth tolerance the "watchers" enforce in this model.
        let tolerance = 5.0;
        for epoch in 0..20 {
            st.reported_this_epoch = st.amp > tolerance;
            st.close_epoch(epoch as f64);
        }
        assert!(st.bracket_width() < 1e-3, "bracket {}", st.bracket_width());
        assert!(
            (st.lo - tolerance).abs() < 1e-3,
            "converged to {} not {tolerance}",
            st.lo
        );
        // The settled amplitude sits just under the tolerance.
        assert!(st.amp <= tolerance + 1e-3);
    }

    #[test]
    fn first_epoch_probes_at_full_amplitude() {
        let plan = AdaptivePlan::default();
        let st = AdaptiveState::new(VehicleId::new(1), &plan, 12.0);
        assert_eq!(st.amp, plan.max_amplitude);
        assert_eq!(st.epoch_start, 12.0);
        assert!(!st.reported_this_epoch);
    }
}
