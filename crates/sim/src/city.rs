//! Sharded multi-intersection city grid.
//!
//! A [`CityGrid`] instantiates one [`Simulation`] per intersection —
//! each with its own manager, chain, VANET medium, and RNG stream —
//! and connects them with directed road links. Every city tick runs in
//! two phases:
//!
//! 1. **Parallel shard phase** — each shard advances one tick via the
//!    chunked fan-out from `nwade-exec`. Shards share no mutable state,
//!    so the phase is a pure element-wise map over the shard list.
//! 2. **Serialized commit phase** — in ascending shard-ID order, all
//!    cross-shard effects apply: outbound handoffs enter their link's
//!    travel queue, due handoffs are delivered to the neighbour's
//!    inbound queue, chain tips are exchanged for cross-shard
//!    anchoring, and the anchor audit verifies every anchor a shard
//!    embedded against the tips the city actually fed it.
//!
//! Because the commit phase is serial and ordered, the city evolves
//! bit-identically regardless of worker-thread count — pinned by
//! [`CityGrid::state_hash`] and the `integration_city_diff` suite. A
//! 1-shard city has no links, so its single shard stays bit-identical
//! to a plain [`Simulation`] with the same config.

use crate::config::{EngineChoice, SimConfig};
use crate::engine::{fan_out_mut_with_cutoff, host_threads};
use crate::metrics::SimMetrics;
use crate::world::{Handoff, Simulation, StateHasher};
use nwade_crypto::Digest;
use nwade_intersection::{IntersectionKind, LegId};
use std::collections::{BTreeMap, VecDeque};

/// Shard-level work is coarse (a whole intersection tick), so even two
/// shards are worth a thread each — unlike the per-vehicle phases,
/// which only fan out past [`crate::engine::PARALLEL_CUTOFF`] items.
const SHARD_CUTOFF: usize = 2;

/// Each shard's generated vehicle ids start at `shard * this`, keeping
/// id spaces disjoint for any realistic run length.
pub const SHARD_ID_STRIDE: u64 = 100_000_000;

/// How many recently fed neighbour tips the anchor audit remembers per
/// (shard, neighbour) pair. Tips are fed every tick but blocks seal at
/// window cadence (10 ticks), so a small window of history suffices;
/// 128 leaves an order of magnitude of slack.
const FED_TIP_HISTORY: usize = 128;

/// The four topology kinds shards cycle through, in shard-ID order.
const SHARD_KINDS: [IntersectionKind; 4] = [
    IntersectionKind::FourWayCross,
    IntersectionKind::ThreeWayRoundabout,
    IntersectionKind::FiveWayIrregular,
    IntersectionKind::FourWayCfi,
];

/// A directed road link connecting one shard's boundary leg to a
/// neighbour's entry leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Departing shard index.
    pub from: usize,
    /// Leg of the departing shard's topology that borders the link.
    pub from_leg: u8,
    /// Receiving shard index.
    pub to: usize,
    /// Leg of the receiving shard's topology the link feeds.
    pub to_leg: u8,
    /// Travel time along the connecting road, seconds.
    pub latency: f64,
}

/// City-grid configuration: N shards derived from one base [`SimConfig`]
/// plus the road links between them.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Number of intersection shards.
    pub shards: usize,
    /// Template every shard derives its config from (see
    /// [`CityConfig::shard_config`] for the derivation).
    pub base: SimConfig,
    /// Directed road links between shards.
    pub links: Vec<LinkSpec>,
    /// Worker threads for the shard phase; 0 resolves to the host's
    /// available parallelism. Thread count never changes results.
    pub threads: usize,
}

impl CityConfig {
    /// A ring of `shards` intersections: shard `i`'s leg 0 drains into
    /// shard `(i+1) % shards`'s leg 1. One shard means no links — the
    /// degenerate city that must match a plain [`Simulation`].
    pub fn ring(shards: usize, base: SimConfig) -> Self {
        let links = if shards > 1 {
            (0..shards)
                .map(|i| LinkSpec {
                    from: i,
                    from_leg: 0,
                    to: (i + 1) % shards,
                    to_leg: 1,
                    latency: 8.0,
                })
                .collect()
        } else {
            Vec::new()
        };
        CityConfig {
            shards,
            base,
            links,
            threads: 0,
        }
    }

    /// The config shard `i` runs under: the base with the shard's
    /// topology kind (cycling through the four supported kinds), a
    /// decorrelated seed, a disjoint vehicle-id space, and the serial
    /// per-vehicle engine — parallelism in a city comes from the shard
    /// fan-out, not from nested per-vehicle threading.
    pub fn shard_config(&self, i: usize) -> SimConfig {
        let mut cfg = self.base.clone();
        cfg.kind = SHARD_KINDS[i % SHARD_KINDS.len()];
        cfg.seed = self.base.seed.wrapping_add(i as u64);
        cfg.vehicle_id_base = i as u64 * SHARD_ID_STRIDE;
        cfg.engine = EngineChoice::Serial;
        cfg
    }

    /// Validates the grid topology.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("city needs at least one shard".into());
        }
        self.base.validate()?;
        for link in &self.links {
            if link.from >= self.shards || link.to >= self.shards {
                return Err(format!(
                    "link {}→{} references a shard outside 0..{}",
                    link.from, link.to, self.shards
                ));
            }
            if link.from == link.to {
                return Err(format!("link {}→{} is a self-loop", link.from, link.to));
            }
            if !(link.latency >= 0.0 && link.latency.is_finite()) {
                return Err("link latency must be non-negative and finite".into());
            }
        }
        Ok(())
    }
}

/// A link's runtime state: handoffs in transit, each with its delivery
/// time.
#[derive(Debug, Clone)]
struct LinkState {
    spec: LinkSpec,
    in_transit: VecDeque<(f64, Handoff)>,
}

/// Per-shard slice of a [`CityReport`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Topology name.
    pub topology: String,
    /// Plans the shard's manager scheduled.
    pub plans_scheduled: usize,
    /// Vehicles that exited the city from this shard.
    pub exited: usize,
    /// Vehicles handed off to neighbours.
    pub handoffs_out: usize,
    /// Vehicles received from neighbours.
    pub handoffs_in: usize,
    /// Mean boundary re-admission latency, simulated seconds.
    pub boundary_latency: Option<f64>,
}

/// Aggregate measurements over a city run.
#[derive(Debug, Clone)]
pub struct CityReport {
    /// Per-shard breakdown, shard-ID order.
    pub per_shard: Vec<ShardStats>,
    /// Plans scheduled across all shards.
    pub plans_scheduled: usize,
    /// City-wide exits.
    pub exited: usize,
    /// City-wide boundary crossings (sum of per-shard `handoffs_out`).
    pub handoffs: usize,
    /// Anchors that did not match any tip the city fed — must be 0.
    pub anchor_mismatches: usize,
    /// Mean boundary re-admission latency across all shards, simulated
    /// seconds.
    pub boundary_latency: Option<f64>,
}

/// N intersection shards advancing in lock-step, linked by roads.
pub struct CityGrid {
    config: CityConfig,
    shards: Vec<Simulation>,
    links: Vec<LinkState>,
    /// Tips the city fed each shard, per neighbour shard id — the
    /// ground truth the anchor audit checks embedded anchors against.
    fed_tips: Vec<BTreeMap<u32, VecDeque<Digest>>>,
    /// Next block index each shard's anchor audit has yet to inspect.
    next_audit: Vec<u64>,
    anchor_mismatches: usize,
    threads: usize,
    ticks: u64,
}

impl CityGrid {
    /// Builds the grid: one simulation per shard, boundary legs wired
    /// from the link specs.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: CityConfig) -> Self {
        config.validate().expect("city config must be valid");
        let mut shards: Vec<Simulation> = (0..config.shards)
            .map(|i| Simulation::new(config.shard_config(i)))
            .collect();
        for (i, shard) in shards.iter_mut().enumerate() {
            let exits: Vec<LegId> = config
                .links
                .iter()
                .filter(|l| l.from == i)
                .map(|l| LegId::new(l.from_leg))
                .collect();
            shard.set_boundary_exits(exits);
        }
        let links = config
            .links
            .iter()
            .map(|spec| LinkState {
                spec: *spec,
                in_transit: VecDeque::new(),
            })
            .collect();
        let threads = match config.threads {
            0 => host_threads(),
            t => t,
        };
        CityGrid {
            fed_tips: vec![BTreeMap::new(); config.shards],
            next_audit: vec![0; config.shards],
            anchor_mismatches: 0,
            threads,
            ticks: 0,
            shards,
            links,
            config,
        }
    }

    /// The shards, shard-ID order.
    pub fn shards(&self) -> &[Simulation] {
        &self.shards
    }

    /// Mutable shard access (bench drivers prespawn fleets and enqueue
    /// request load through this).
    pub fn shards_mut(&mut self) -> &mut [Simulation] {
        &mut self.shards
    }

    /// City ticks advanced so far.
    pub fn ticks_elapsed(&self) -> u64 {
        self.ticks
    }

    /// Anchors embedded by any shard that did not match a fed tip.
    /// Stays 0 unless a chain diverged from what the city delivered.
    pub fn anchor_mismatches(&self) -> usize {
        self.anchor_mismatches
    }

    /// Advances every shard one tick in parallel, then applies all
    /// cross-shard effects serially in shard-ID order.
    pub fn tick(&mut self) {
        self.ticks += 1;
        fan_out_mut_with_cutoff(&mut self.shards, self.threads, SHARD_CUTOFF, |chunk| {
            for shard in chunk.iter_mut() {
                shard.tick_once();
            }
            Vec::<()>::new()
        });
        self.commit();
    }

    /// The serialized commit phase. Every step iterates in a fixed
    /// order (shards ascending, links in spec order), so the result is
    /// independent of how the parallel phase was chunked.
    fn commit(&mut self) {
        let now = self.shards[0].now();
        // 1. Route this tick's outbound handoffs onto their links.
        for i in 0..self.shards.len() {
            for handoff in self.shards[i].take_outbound_handoffs() {
                let link = self
                    .links
                    .iter_mut()
                    .find(|l| l.spec.from == i && l.spec.from_leg == handoff.exit_leg.index() as u8)
                    .expect("boundary exits are derived from links");
                link.in_transit
                    .push_back((now + link.spec.latency, handoff));
            }
        }
        // 2. Deliver handoffs that finished their road travel.
        for link in &mut self.links {
            while link.in_transit.front().is_some_and(|(due, _)| *due <= now) {
                let (_, handoff) = link.in_transit.pop_front().expect("front exists");
                self.shards[link.spec.to]
                    .queue_inbound_handoff(LegId::new(link.spec.to_leg), handoff);
            }
        }
        // 3. Anchor exchange: each link's receiving shard learns the
        //    departing shard's current chain tip, and the city records
        //    what it fed for the audit below.
        for li in 0..self.links.len() {
            let spec = self.links[li].spec;
            let tip = self.shards[spec.from].chain_tip();
            self.shards[spec.to].note_neighbor_tip(spec.from as u32, tip);
            let history = self.fed_tips[spec.to].entry(spec.from as u32).or_default();
            if history.back() != Some(&tip) {
                history.push_back(tip);
                if history.len() > FED_TIP_HISTORY {
                    history.pop_front();
                }
            }
        }
        // 4. Anchor audit: every anchor a shard embedded must be a tip
        //    the city actually fed it.
        for i in 0..self.shards.len() {
            let blocks = self.shards[i].blocks_from(self.next_audit[i]);
            for block in &blocks {
                if block.index() < self.next_audit[i] {
                    continue;
                }
                for anchor in block.anchors() {
                    let known = self.fed_tips[i]
                        .get(&anchor.shard)
                        .is_some_and(|h| h.contains(&anchor.tip));
                    if !known {
                        self.anchor_mismatches += 1;
                    }
                }
                self.next_audit[i] = block.index() + 1;
            }
        }
    }

    /// Runs `ticks` city ticks.
    pub fn run_ticks(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Digest of the full city state: every shard's
    /// [`Simulation::state_hash`] plus the link queues and the audit
    /// counters. Equal hashes at every tick pin bit-identical evolution
    /// across worker-thread counts.
    pub fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.u64(self.ticks);
        h.u64(self.shards.len() as u64);
        for shard in &self.shards {
            h.u64(shard.state_hash());
        }
        for link in &self.links {
            h.u64(link.in_transit.len() as u64);
            for (due, handoff) in &link.in_transit {
                h.f64(*due);
                h.u64(handoff.id.raw());
            }
        }
        h.u64(self.anchor_mismatches as u64);
        h.finish()
    }

    /// Handoffs currently riding a link between shards.
    pub fn in_transit(&self) -> usize {
        self.links.iter().map(|l| l.in_transit.len()).sum()
    }

    /// Checks the city-wide vehicle-conservation invariants: boundary
    /// crossings never create or destroy a vehicle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_conservation(&self) -> Result<(), String> {
        let m = |f: fn(&SimMetrics) -> usize| -> usize {
            self.shards.iter().map(|s| f(s.metrics_so_far())).sum()
        };
        let spawned = m(|m| m.spawned);
        let exited = m(|m| m.exited);
        let out = m(|m| m.handoffs_out);
        let inn = m(|m| m.handoffs_in);
        let active: usize = self.shards.iter().map(|s| s.active_vehicle_count()).sum();
        let queued: usize = self.shards.iter().map(|s| s.inbound_backlog()).sum();
        let transit = self.in_transit();
        if out != inn + transit + queued {
            return Err(format!(
                "handoff books unbalanced: {out} out != {inn} in + {transit} in transit + {queued} queued"
            ));
        }
        if spawned != exited + active + transit + queued {
            return Err(format!(
                "population books unbalanced: {spawned} spawned != {exited} exited + \
                 {active} active + {transit} in transit + {queued} queued"
            ));
        }
        Ok(())
    }

    /// Aggregates the per-shard metrics into a city report.
    pub fn report(&self) -> CityReport {
        let per_shard: Vec<ShardStats> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let m = s.metrics_so_far();
                ShardStats {
                    shard: i,
                    topology: s.topology().name().to_string(),
                    plans_scheduled: m.plans_scheduled,
                    exited: m.exited,
                    handoffs_out: m.handoffs_out,
                    handoffs_in: m.handoffs_in,
                    boundary_latency: m.boundary_readmission_latency(),
                }
            })
            .collect();
        let (lat_total, lat_samples) = self.shards.iter().fold((0.0, 0usize), |(t, n), s| {
            let m = s.metrics_so_far();
            (t + m.boundary_latency_total, n + m.boundary_latency_samples)
        });
        CityReport {
            plans_scheduled: per_shard.iter().map(|s| s.plans_scheduled).sum(),
            exited: per_shard.iter().map(|s| s.exited).sum(),
            handoffs: per_shard.iter().map(|s| s.handoffs_out).sum(),
            anchor_mismatches: self.anchor_mismatches,
            boundary_latency: (lat_samples > 0).then(|| lat_total / lat_samples as f64),
            per_shard,
        }
    }

    /// The configuration the city was built from.
    pub fn config(&self) -> &CityConfig {
        &self.config
    }
}

impl std::fmt::Debug for CityGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CityGrid")
            .field("shards", &self.shards.len())
            .field("tick", &self.ticks)
            .field("state_hash", &self.state_hash())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_base() -> SimConfig {
        let mut base = SimConfig::default();
        base.duration = 40.0;
        base.density = 60.0;
        base.seed = 11;
        base
    }

    #[test]
    fn ring_config_validates_and_links_wrap() {
        let cfg = CityConfig::ring(4, small_base());
        cfg.validate().expect("valid ring");
        assert_eq!(cfg.links.len(), 4);
        assert_eq!(cfg.links[3].to, 0, "ring wraps");
        let one = CityConfig::ring(1, small_base());
        assert!(one.links.is_empty(), "1-shard city has no links");
        one.validate().expect("valid singleton");
    }

    #[test]
    fn invalid_links_rejected() {
        let mut cfg = CityConfig::ring(2, small_base());
        cfg.links[0].to = 9;
        assert!(cfg.validate().is_err());
        let mut cfg = CityConfig::ring(2, small_base());
        cfg.links[0].to = cfg.links[0].from;
        assert!(cfg.validate().is_err());
        let mut cfg = CityConfig::ring(2, small_base());
        cfg.links[0].latency = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = CityConfig::ring(2, small_base());
        cfg.shards = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn shard_configs_are_disjoint_and_cycle_kinds() {
        let cfg = CityConfig::ring(5, small_base());
        let c0 = cfg.shard_config(0);
        let c4 = cfg.shard_config(4);
        assert_eq!(c0.vehicle_id_base, 0);
        assert_eq!(c4.vehicle_id_base, 4 * SHARD_ID_STRIDE);
        assert_ne!(c0.seed, c4.seed);
        assert_eq!(c0.kind, c4.kind, "kinds cycle with period 4");
        assert_ne!(c0.kind, cfg.shard_config(1).kind);
    }

    #[test]
    fn city_flows_and_conserves_vehicles() {
        let mut city = CityGrid::new(CityConfig::ring(3, small_base()));
        // Ring crossings need a full trip (~30 s) plus 8 s link travel
        // plus the admission gate before the first arrival lands.
        for _ in 0..700 {
            city.tick();
            city.check_conservation().expect("conserved every tick");
        }
        let report = city.report();
        assert!(report.handoffs > 0, "ring traffic crosses boundaries");
        assert!(
            report.per_shard.iter().any(|s| s.handoffs_in > 0),
            "handoffs arrive"
        );
        assert_eq!(report.anchor_mismatches, 0, "anchors all audited clean");
        assert!(
            report.boundary_latency.is_some(),
            "re-admitted vehicles got plans"
        );
    }

    #[test]
    fn anchors_are_embedded_and_audited() {
        let mut city = CityGrid::new(CityConfig::ring(2, small_base()));
        city.run_ticks(300);
        let anchored = city
            .shards()
            .iter()
            .flat_map(|s| s.blocks_from(0))
            .filter(|b| !b.anchors().is_empty())
            .count();
        assert!(anchored > 0, "blocks carry neighbour anchors");
        assert_eq!(city.anchor_mismatches(), 0);
    }

    #[test]
    fn thread_count_is_unobservable() {
        let mut hashes = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut cfg = CityConfig::ring(3, small_base());
            cfg.threads = threads;
            let mut city = CityGrid::new(cfg);
            let mut trace = Vec::new();
            for _ in 0..200 {
                city.tick();
                trace.push(city.state_hash());
            }
            hashes.push(trace);
        }
        assert_eq!(hashes[0], hashes[1]);
        assert_eq!(hashes[0], hashes[2]);
    }
}
