//! Simulation configuration.

use crate::adversary::AttackPolicy;
use nwade::attack::{AttackSetting, ViolationKind};
use nwade::{CrashPoint, NwadeConfig};
use nwade_aim::AdmissionPolicy;
use nwade_intersection::{GeometryConfig, IntersectionKind};
use nwade_traffic::{KinematicLimits, TurnMix};
use nwade_vanet::MediumConfig;

/// Which AIM scheduler drives the intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerChoice {
    /// The reservation scheduler (DASH stand-in, the paper's host
    /// system).
    Reservation,
    /// The full-lock FCFS baseline.
    Fcfs,
    /// The fixed-cycle traffic-light baseline.
    TrafficLight,
}

/// Which signature scheme signs blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureChoice {
    /// Cheap keyed-hash mock (default for large sweeps; Figs. 4/5/7/8 do
    /// not measure crypto cost).
    Mock,
    /// Real RSA with the given modulus size (Fig. 6 uses 2048).
    Rsa {
        /// Modulus size in bits.
        bits: usize,
    },
}

/// How the per-vehicle tick phases execute.
///
/// Both engines run the exact same phase code over the same vehicle
/// order; the parallel engine merely executes independent per-vehicle
/// maps on worker threads and concatenates the results in chunk order.
/// Reports are bit-identical across the two (covered by the
/// `integration_perf_engines` differential test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// Run every phase inline on the calling thread.
    Serial,
    /// Fan per-vehicle phases out over a thread pool sized to the host.
    Parallel,
    /// Pick per tick: serial below a vehicle-count threshold derived
    /// from the host's parallelism, threaded above it. On a 1-thread
    /// host this is always serial — `BENCH_perf.json` showed the
    /// parallel engine's scope-spawn overhead losing to the serial loop
    /// at every density there.
    #[default]
    Auto,
}

/// The attack to inject, per Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPlan {
    /// The Table I row.
    pub setting: AttackSetting,
    /// How the violating vehicle misbehaves.
    pub violation: ViolationKind,
    /// Simulation time at which the attack begins.
    pub start: f64,
}

/// A scheduled intersection-manager outage: the manager goes silent
/// (receives nothing, sends nothing, schedules nothing) for a window,
/// then restarts from its persisted chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImOutage {
    /// Simulation time at which the manager goes dark.
    pub start: f64,
    /// How long it stays dark, seconds.
    pub duration: f64,
}

impl ImOutage {
    /// `true` while `now` falls inside the outage window.
    pub fn covers(&self, now: f64) -> bool {
        now >= self.start && now < self.start + self.duration
    }
}

/// Durability configuration for the intersection manager's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Log the manager's durable state to a write-ahead log and recover
    /// warm after crashes and outages. Ignored when the crate's `store`
    /// feature is compiled out.
    pub enabled: bool,
    /// Append a full state snapshot every N processing windows.
    pub snapshot_every: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            enabled: true,
            snapshot_every: 8,
        }
    }
}

/// Kill the intersection manager at a labelled point inside a processing
/// window and let it recover from the durable store (chaos harness).
/// Requires the `store` feature; fires at most once per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// The first non-empty processing window at or after this time
    /// crashes.
    pub at: f64,
    /// Where inside the window the crash hits.
    pub point: CrashPoint,
    /// Downtime imposed when recovery lands on the cold path (warm
    /// recovery resumes the same tick, with no darkness at all).
    pub cold_downtime: f64,
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Intersection geometry.
    pub kind: IntersectionKind,
    /// Geometry parameters (lanes, lengths, zone grid).
    pub geometry: GeometryConfig,
    /// Arrival rate, vehicles per minute (paper: 20–120, default 80).
    pub density: f64,
    /// Turning mix (paper: 25/50/25).
    pub turn_mix: TurnMix,
    /// NWADE protocol parameters.
    pub nwade: NwadeConfig,
    /// Network parameters.
    pub medium: MediumConfig,
    /// Vehicle kinematics.
    pub limits: KinematicLimits,
    /// Scheduler choice.
    pub scheduler: SchedulerChoice,
    /// When `false`, the NWADE layer is disabled entirely: no blocks, no
    /// watching, no reports — the Fig. 8 "without NWADE" baseline.
    pub nwade_enabled: bool,
    /// Optional attack injection.
    pub attack: Option<AttackPlan>,
    /// Optional adaptive adversary (threshold probing, colluding clique,
    /// or Sybil flood); composes with `attack`.
    pub adversary: Option<AttackPolicy>,
    /// Optional manager outage/restart window.
    pub im_outage: Option<ImOutage>,
    /// Durable-store settings for the manager's WAL + snapshots.
    pub store: StoreConfig,
    /// Optional crash-point injection (kills the manager mid-window).
    pub im_crash: Option<CrashPlan>,
    /// Total simulated time, seconds.
    pub duration: f64,
    /// Physics timestep, seconds.
    pub dt: f64,
    /// How often vehicles run their sensing pass, seconds.
    pub sense_interval: f64,
    /// RNG seed (all randomness in a run derives from it).
    pub seed: u64,
    /// Block signature scheme.
    pub signature: SignatureChoice,
    /// Speed at which vehicles enter the modeled area, m/s.
    pub initial_speed: f64,
    /// Tick-engine execution mode (results are identical either way).
    pub engine: EngineChoice,
    /// Use the uniform-grid spatial index for neighbourhood scans
    /// (sensing, braking, collision, invariants) instead of the O(V²)
    /// all-pairs sweeps. Observation sets are identical either way; the
    /// flag exists for differential testing and perf baselines.
    pub spatial_index: bool,
    /// Run the AIM schedulers' retained linear probe loop instead of the
    /// slot-seeking search. Plans are bit-identical either way; the flag
    /// exists for differential testing and window-latency baselines.
    pub probe_scheduler: bool,
    /// Run processing windows through the pipelined engine: scheduling
    /// and Merkle work on the tick thread, chain-serial signing on a
    /// worker. Results are bit-identical to the sequential path (pinned
    /// by the `integration_window_pipeline_diff` suite); the flag exists
    /// for differential testing and window-latency baselines.
    pub pipelined_windows: bool,
    /// Per-window admission policy applied to the pending-request queue
    /// before scheduling. The default (unbounded) admits everything in
    /// arrival order — the historical behaviour, bit-for-bit; a bounded
    /// policy caps the batch and defers the overflow fairly.
    pub admission: AdmissionPolicy,
    /// Base offset added to every vehicle id this simulation generates
    /// (arrivals and prespawned fleets alike). City grids give each
    /// shard a disjoint id space so a handed-off vehicle keeps its
    /// identity everywhere; 0 (the default) preserves single-intersection
    /// behaviour bit-for-bit.
    pub vehicle_id_base: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            kind: IntersectionKind::FourWayCross,
            geometry: GeometryConfig::default(),
            density: 80.0,
            turn_mix: TurnMix::default(),
            nwade: NwadeConfig::default(),
            medium: MediumConfig::default(),
            limits: KinematicLimits::default(),
            scheduler: SchedulerChoice::Reservation,
            nwade_enabled: true,
            attack: None,
            adversary: None,
            im_outage: None,
            store: StoreConfig::default(),
            im_crash: None,
            duration: 300.0,
            dt: 0.1,
            sense_interval: 0.5,
            seed: 0,
            signature: SignatureChoice::Mock,
            initial_speed: 15.0,
            engine: EngineChoice::default(),
            spatial_index: true,
            probe_scheduler: false,
            pipelined_windows: false,
            admission: AdmissionPolicy::default(),
            vehicle_id_base: 0,
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        self.nwade.validate()?;
        self.medium.validate()?;
        self.admission.validate()?;
        if !(self.density > 0.0) {
            return Err("density must be positive".into());
        }
        if !(self.duration > 0.0) {
            return Err("duration must be positive".into());
        }
        if !(self.dt > 0.0 && self.dt < 1.0) {
            return Err("dt must be in (0, 1)".into());
        }
        if !(self.sense_interval >= self.dt) {
            return Err("sense interval must be at least one tick".into());
        }
        if !(self.initial_speed >= 0.0 && self.initial_speed <= self.limits.v_max) {
            return Err("initial speed must be within [0, v_max]".into());
        }
        if let Some(attack) = &self.attack {
            if !(attack.start > 0.0 && attack.start < self.duration) {
                return Err("attack start must fall inside the run".into());
            }
        }
        if let Some(policy) = &self.adversary {
            policy.validate(self.duration)?;
        }
        if let Some(outage) = &self.im_outage {
            if !(outage.start > 0.0 && outage.start < self.duration) {
                return Err("IM outage start must fall inside the run".into());
            }
            if !(outage.duration > 0.0 && outage.duration.is_finite()) {
                return Err("IM outage duration must be positive and finite".into());
            }
        }
        if self.store.snapshot_every == 0 {
            return Err("store snapshot cadence must be at least one window".into());
        }
        if let Some(crash) = &self.im_crash {
            if !(crash.at > 0.0 && crash.at < self.duration) {
                return Err("IM crash time must fall inside the run".into());
            }
            if !(crash.cold_downtime > 0.0 && crash.cold_downtime.is_finite()) {
                return Err("IM crash cold downtime must be positive and finite".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate().expect("default valid");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig::default();
        c.density = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.dt = 2.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.sense_interval = 0.01;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.initial_speed = 1000.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.attack = Some(AttackPlan {
            setting: AttackSetting::V1,
            violation: ViolationKind::SuddenStop,
            start: 1e9,
        });
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.adversary = Some(AttackPolicy::Clique(crate::adversary::CliquePlan {
            start: 40.0,
            fraction: 2.0,
        }));
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.im_outage = Some(ImOutage {
            start: 1e9,
            duration: 10.0,
        });
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.im_outage = Some(ImOutage {
            start: 100.0,
            duration: 0.0,
        });
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.store.snapshot_every = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.im_crash = Some(CrashPlan {
            at: 1e9,
            point: CrashPoint::AfterCommit,
            cold_downtime: 10.0,
        });
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.im_crash = Some(CrashPlan {
            at: 50.0,
            point: CrashPoint::BeforeCommit,
            cold_downtime: 0.0,
        });
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.admission = AdmissionPolicy::bounded(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn outage_window_membership() {
        let o = ImOutage {
            start: 100.0,
            duration: 20.0,
        };
        assert!(!o.covers(99.9));
        assert!(o.covers(100.0));
        assert!(o.covers(119.9));
        assert!(!o.covers(120.0));
    }
}
