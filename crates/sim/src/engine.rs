//! Deterministic fan-out for per-vehicle tick phases.
//!
//! The tick pipeline is decomposed into *per-vehicle maps*: each phase
//! computes, for every vehicle independently, a small result (brake
//! decision, physics delta, guard actions, invariant snapshot). Such a
//! map can run over contiguous chunks of the vehicle list on worker
//! threads and concatenate the chunk results in chunk order — which is
//! the original iteration order — so the output is **bit-identical** to
//! the serial loop. All side effects (medium sends, RNG draws, metric
//! updates, exits) stay serial in the reduction step.
//!
//! The chunked fan-out primitives live in `nwade-exec` (shared with the
//! AIM scheduler's pre-pass) and are re-exported here so existing
//! `nwade_sim::engine` callers keep working.

use crate::config::EngineChoice;
use nwade_geometry::{GridIndex, Vec2};

pub use nwade_exec::{
    fan_out, fan_out_indices, fan_out_mut, fan_out_mut_with_cutoff, host_threads, PARALLEL_CUTOFF,
};

/// Worker-thread count for an engine choice, ignoring workload size: 1
/// for serial, the host's available parallelism otherwise. `Auto` gets
/// the host count here — use [`resolve_threads_sized`] where a workload
/// size is known.
pub fn resolve_threads(choice: EngineChoice) -> usize {
    match choice {
        EngineChoice::Serial => 1,
        EngineChoice::Parallel | EngineChoice::Auto => host_threads(),
    }
}

/// Fleet size below which `Auto` stays serial regardless of the host's
/// parallelism. Measured, not derived: the committed `BENCH_perf.json`
/// sweep has the serial loop winning every density up to 500 placed
/// vehicles and the threaded engine first paying for itself at 1000,
/// so the floor sits between those two measured points. The old
/// per-worker chunk bound (`PARALLEL_CUTOFF × workers`) flipped to
/// threads far too early on narrow hosts.
pub const AUTO_SERIAL_FLOOR: usize = 768;

/// Vehicle count below which `Auto` stays serial: the measured
/// [`AUTO_SERIAL_FLOOR`], or — on hosts wide enough that the floor
/// would leave workers with partial chunks — at least one
/// [`PARALLEL_CUTOFF`]-sized chunk per worker, so each spawned thread
/// amortizes its spawn cost over a full chunk of per-vehicle work.
pub fn auto_parallel_threshold(host_threads: usize) -> usize {
    AUTO_SERIAL_FLOOR.max(PARALLEL_CUTOFF * host_threads.max(1))
}

/// Worker-thread count for an engine choice given the number of items a
/// tick fans out over. `Auto` resolves to 1 on single-threaded hosts and
/// below [`auto_parallel_threshold`], to the host's parallelism above
/// it. Thread count never changes results (see the module docs), so the
/// switch point is a pure performance knob.
pub fn resolve_threads_sized(choice: EngineChoice, items: usize) -> usize {
    match choice {
        EngineChoice::Serial => 1,
        EngineChoice::Parallel => host_threads(),
        EngineChoice::Auto => {
            let host = host_threads();
            if host <= 1 || items < auto_parallel_threshold(host) {
                1
            } else {
                host
            }
        }
    }
}

/// Indices into `snapshot` a vehicle at `me` observes: everything within
/// `radius`, excluding itself. With a grid the candidate set is narrowed
/// to nearby cells; the result — set *and* order (ascending snapshot
/// index, which is ascending vehicle id) — is identical to the
/// brute-force sweep, because the grid returns a superset of the disc
/// filtered by the same distance predicate.
pub fn observed_neighbors(
    snapshot: &[(u64, Vec2, f64)],
    grid: Option<&GridIndex>,
    self_id: u64,
    me: Vec2,
    radius: f64,
) -> Vec<usize> {
    let r_sq = radius * radius;
    match grid {
        Some(grid) => grid
            .query(me, radius)
            .into_iter()
            .filter(|&i| snapshot[i].0 != self_id && snapshot[i].1.distance_sq(me) <= r_sq)
            .collect(),
        None => snapshot
            .iter()
            .enumerate()
            .filter(|(_, (id, p, _))| *id != self_id && p.distance_sq(me) <= r_sq)
            .map(|(i, _)| i)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_modes() {
        assert_eq!(resolve_threads(EngineChoice::Serial), 1);
        assert!(resolve_threads(EngineChoice::Parallel) >= 1);
        assert!(resolve_threads(EngineChoice::Auto) >= 1);
    }

    #[test]
    fn auto_respects_size_threshold() {
        let host = host_threads();
        assert_eq!(resolve_threads_sized(EngineChoice::Serial, 1_000_000), 1);
        assert_eq!(resolve_threads_sized(EngineChoice::Parallel, 0), host);
        // Below the threshold Auto is always serial.
        assert_eq!(resolve_threads_sized(EngineChoice::Auto, 0), 1);
        assert_eq!(
            resolve_threads_sized(EngineChoice::Auto, auto_parallel_threshold(host) - 1),
            1
        );
        // The measured crossover floor binds on every host: fleets the
        // committed perf baseline clocked as serial-faster (≤ 500
        // vehicles) never fan out, however many cores are available.
        for measured_serial_faster in [50, 200, 500] {
            assert_eq!(
                resolve_threads_sized(EngineChoice::Auto, measured_serial_faster),
                1,
                "auto must stay serial at {measured_serial_faster} vehicles"
            );
        }
        assert!(auto_parallel_threshold(host) >= AUTO_SERIAL_FLOOR);
        // At/above it Auto matches the host — unless the host has a
        // single thread, where parallelism can never win.
        let at = resolve_threads_sized(EngineChoice::Auto, auto_parallel_threshold(host));
        if host <= 1 {
            assert_eq!(at, 1);
        } else {
            assert_eq!(at, host);
        }
    }

    #[test]
    fn observed_neighbors_excludes_self_and_far() {
        let snapshot = vec![
            (10u64, Vec2::new(0.0, 0.0), 1.0),
            (20u64, Vec2::new(3.0, 0.0), 2.0),
            (30u64, Vec2::new(100.0, 0.0), 3.0),
        ];
        let got = observed_neighbors(&snapshot, None, 10, Vec2::ZERO, 5.0);
        assert_eq!(got, vec![1]);
        let grid = GridIndex::build(
            5.0,
            &[Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(100.0, 0.0)],
        );
        assert_eq!(
            observed_neighbors(&snapshot, Some(&grid), 10, Vec2::ZERO, 5.0),
            vec![1]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Grid-index sensing produces the same observation set (and
        /// order) as the brute-force O(V²) sweep, for random vehicle
        /// layouts and sensing radii — the exact helper the sense pass
        /// runs through.
        #[test]
        fn grid_sensing_equals_brute_force(
            layout in proptest::collection::vec(
                (0u64..200, -400.0..400.0f64, -400.0..400.0f64, 0.0..30.0f64), 0..80),
            observer in 0usize..80,
            radius in 1.0..500.0f64,
        ) {
            let snapshot: Vec<(u64, Vec2, f64)> = layout
                .iter()
                .map(|(id, x, y, v)| (*id, Vec2::new(*x, *y), *v))
                .collect();
            let points: Vec<Vec2> = snapshot.iter().map(|(_, p, _)| *p).collect();
            // Cell size = sensing radius, as the engine builds it.
            let grid = GridIndex::build(radius, &points);
            let (self_id, me) = if snapshot.is_empty() {
                (0, Vec2::ZERO)
            } else {
                let o = &snapshot[observer % snapshot.len()];
                (o.0, o.1)
            };
            prop_assert_eq!(
                observed_neighbors(&snapshot, Some(&grid), self_id, me, radius),
                observed_neighbors(&snapshot, None, self_id, me, radius)
            );
        }
    }
}
