//! Deterministic fan-out for per-vehicle tick phases.
//!
//! The tick pipeline is decomposed into *per-vehicle maps*: each phase
//! computes, for every vehicle independently, a small result (brake
//! decision, physics delta, guard actions, invariant snapshot). Such a
//! map can run over contiguous chunks of the vehicle list on worker
//! threads and concatenate the chunk results in chunk order — which is
//! the original iteration order — so the output is **bit-identical** to
//! the serial loop. All side effects (medium sends, RNG draws, metric
//! updates, exits) stay serial in the reduction step.
//!
//! The helpers here encode that contract: the closure passed to
//! [`fan_out`] / [`fan_out_mut`] / [`fan_out_indices`] must be
//! element-wise, i.e. `f(a ++ b) == f(a) ++ f(b)`. Under that contract
//! the thread count is unobservable.

use crate::config::EngineChoice;
use nwade_geometry::{GridIndex, Vec2};

/// Below this many items a phase runs inline: spawning threads costs
/// more than the work itself.
const PARALLEL_CUTOFF: usize = 64;

/// Worker-thread count for an engine choice: 1 for serial, the host's
/// available parallelism otherwise.
pub fn resolve_threads(choice: EngineChoice) -> usize {
    match choice {
        EngineChoice::Serial => 1,
        EngineChoice::Parallel => rayon::current_num_threads().max(1),
    }
}

/// Splits `0..n` into at most `threads` contiguous ranges.
fn ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = n.div_ceil(threads).max(1);
    (0..n.div_ceil(chunk))
        .map(|t| (t * chunk)..((t + 1) * chunk).min(n))
        .collect()
}

/// Runs an element-wise map over index ranges of `0..n`, concatenating
/// per-range results in range order. With `threads <= 1` (or few items)
/// this is exactly `f(0..n)`.
pub fn fan_out_indices<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    if threads <= 1 || n < PARALLEL_CUTOFF {
        return f(0..n);
    }
    let ranges = ranges(n, threads);
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(ranges.len(), Vec::new);
    rayon::scope(|s| {
        for (slot, range) in parts.iter_mut().zip(ranges) {
            let f = &f;
            s.spawn(move || *slot = f(range));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs an element-wise map over chunks of a shared slice.
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    if threads <= 1 || items.len() < PARALLEL_CUTOFF {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let pieces: Vec<&[T]> = items.chunks(chunk).collect();
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(pieces.len(), Vec::new);
    rayon::scope(|s| {
        for (slot, piece) in parts.iter_mut().zip(pieces) {
            let f = &f;
            s.spawn(move || *slot = f(piece));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs an element-wise map over disjoint mutable chunks of a slice —
/// the shape of phases that advance vehicle state or drive the guards.
pub fn fan_out_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut [T]) -> Vec<R> + Sync,
{
    if threads <= 1 || items.len() < PARALLEL_CUTOFF {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let pieces: Vec<&mut [T]> = items.chunks_mut(chunk).collect();
    let mut parts: Vec<Vec<R>> = Vec::new();
    parts.resize_with(pieces.len(), Vec::new);
    rayon::scope(|s| {
        for (slot, piece) in parts.iter_mut().zip(pieces) {
            let f = &f;
            s.spawn(move || *slot = f(piece));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Indices into `snapshot` a vehicle at `me` observes: everything within
/// `radius`, excluding itself. With a grid the candidate set is narrowed
/// to nearby cells; the result — set *and* order (ascending snapshot
/// index, which is ascending vehicle id) — is identical to the
/// brute-force sweep, because the grid returns a superset of the disc
/// filtered by the same distance predicate.
pub fn observed_neighbors(
    snapshot: &[(u64, Vec2, f64)],
    grid: Option<&GridIndex>,
    self_id: u64,
    me: Vec2,
    radius: f64,
) -> Vec<usize> {
    let r_sq = radius * radius;
    match grid {
        Some(grid) => grid
            .query(me, radius)
            .into_iter()
            .filter(|&i| snapshot[i].0 != self_id && snapshot[i].1.distance_sq(me) <= r_sq)
            .collect(),
        None => snapshot
            .iter()
            .enumerate()
            .filter(|(_, (id, p, _))| *id != self_id && p.distance_sq(me) <= r_sq)
            .map(|(i, _)| i)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_modes() {
        assert_eq!(resolve_threads(EngineChoice::Serial), 1);
        assert!(resolve_threads(EngineChoice::Parallel) >= 1);
    }

    #[test]
    fn fan_out_indices_matches_serial_map() {
        for n in [0usize, 1, 5, PARALLEL_CUTOFF, 1000, 1001] {
            for threads in [1usize, 2, 3, 8] {
                let out = fan_out_indices(n, threads, |range| {
                    range.map(|i| i * 3 + 1).collect::<Vec<_>>()
                });
                let expected: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
                assert_eq!(out, expected, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn fan_out_preserves_order_and_filtering() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1usize, 4] {
            let out = fan_out(&items, threads, |chunk| {
                chunk.iter().filter(|x| **x % 7 == 0).copied().collect()
            });
            let expected: Vec<u64> = items.iter().filter(|x| **x % 7 == 0).copied().collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn fan_out_mut_applies_every_element_once() {
        let mut items: Vec<u64> = vec![1; 999];
        let echoed = fan_out_mut(&mut items, 5, |chunk| {
            chunk
                .iter_mut()
                .map(|x| {
                    *x += 1;
                    *x
                })
                .collect()
        });
        assert!(items.iter().all(|x| *x == 2));
        assert_eq!(echoed, items);
    }

    #[test]
    fn observed_neighbors_excludes_self_and_far() {
        let snapshot = vec![
            (10u64, Vec2::new(0.0, 0.0), 1.0),
            (20u64, Vec2::new(3.0, 0.0), 2.0),
            (30u64, Vec2::new(100.0, 0.0), 3.0),
        ];
        let got = observed_neighbors(&snapshot, None, 10, Vec2::ZERO, 5.0);
        assert_eq!(got, vec![1]);
        let grid = GridIndex::build(
            5.0,
            &[Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(100.0, 0.0)],
        );
        assert_eq!(
            observed_neighbors(&snapshot, Some(&grid), 10, Vec2::ZERO, 5.0),
            vec![1]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Grid-index sensing produces the same observation set (and
        /// order) as the brute-force O(V²) sweep, for random vehicle
        /// layouts and sensing radii — the exact helper the sense pass
        /// runs through.
        #[test]
        fn grid_sensing_equals_brute_force(
            layout in proptest::collection::vec(
                (0u64..200, -400.0..400.0f64, -400.0..400.0f64, 0.0..30.0f64), 0..80),
            observer in 0usize..80,
            radius in 1.0..500.0f64,
        ) {
            let snapshot: Vec<(u64, Vec2, f64)> = layout
                .iter()
                .map(|(id, x, y, v)| (*id, Vec2::new(*x, *y), *v))
                .collect();
            let points: Vec<Vec2> = snapshot.iter().map(|(_, p, _)| *p).collect();
            // Cell size = sensing radius, as the engine builds it.
            let grid = GridIndex::build(radius, &points);
            let (self_id, me) = if snapshot.is_empty() {
                (0, Vec2::ZERO)
            } else {
                let o = &snapshot[observer % snapshot.len()];
                (o.0, o.1)
            };
            prop_assert_eq!(
                observed_neighbors(&snapshot, Some(&grid), self_id, me, radius),
                observed_neighbors(&snapshot, None, self_id, me, radius)
            );
        }
    }
}
