//! Time-travel forensics: a snapshot ring buffer over the simulation
//! world with deterministic rewind and bit-identical resimulation.
//!
//! Chaos-seed triage used to be log archaeology: when an invariant
//! tripped or a false report slipped through, the only recourse was
//! re-running the whole scenario from tick zero. [`WorldHistory`]
//! instead snapshots the **full world** (vehicles with their protocol
//! guards, the manager stack scheduler-and-chain included, in-flight
//! VANET messages, the RNG stream, and — with the `store` feature — the
//! forked durable device) every K ticks into a bounded ring, records a
//! compact per-tick state hash for the whole run, and auto-pins a
//! rewind point whenever an incident fires (invariant violation,
//! benign self-evacuation, false-report acceptance, violation
//! confirmation).
//!
//! Replay is bit-identical **by construction**: a snapshot is a deep
//! [`Simulation::clone`], the engine is a deterministic fixed-timestep
//! loop whose only entropy source is the captured RNG, and worker
//! threading never changes results (chunked fan-out, see
//! `crate::engine`). [`WorldHistory::resimulate`] still *verifies* the
//! construction — every replayed tick's [`Simulation::state_hash`] is
//! compared against the recorded original — so any determinism
//! regression surfaces as a pinpointed divergence tick instead of a
//! silently wrong forensic conclusion.

use crate::world::Simulation;
use std::collections::{BTreeMap, VecDeque};
use std::ops::Range;

/// Default snapshot cadence, ticks (2 s of simulated time at the
/// default 100 ms timestep).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 20;

/// Default ring capacity (snapshots retained before eviction).
pub const DEFAULT_CAPACITY: usize = 16;

/// Why a rewind point was auto-captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// A safety invariant tripped (collision, overlap, chain break…).
    InvariantViolation,
    /// A benign vehicle gave up on the manager and self-evacuated.
    BenignSelfEvacuation,
    /// The manager confirmed an accusation against an innocent vehicle
    /// — a false report was *accepted*.
    FalseReportAccepted,
    /// The manager confirmed the true violator (useful for replaying
    /// the detection path itself).
    ViolationConfirmed,
}

/// An auto-captured rewind point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// Tick at which the incident was first observed.
    pub tick: u64,
    /// Simulated time of that tick, seconds.
    pub at: f64,
    /// What happened.
    pub kind: IncidentKind,
    /// Tick of the pinned snapshot replay should start from — the
    /// latest snapshot at or before the incident.
    pub rewind_tick: u64,
}

/// How a [`WorldHistory::resimulate`] call went.
#[derive(Debug)]
pub struct ReplayReport {
    /// Tick of the snapshot the replay started from.
    pub started_from: u64,
    /// Ticks re-executed (fast-forward plus instrumented range).
    pub ticks_replayed: u64,
    /// Per-tick hash comparisons that ran against the recorded run.
    pub hashes_compared: usize,
    /// The replayed world as of the end of the range (for further
    /// inspection or continued stepping).
    pub world: Simulation,
}

/// Replay failures — all of them addressing problems, except
/// [`ReplayError::Divergence`] which means determinism itself broke.
#[derive(Debug)]
pub enum ReplayError {
    /// No retained snapshot at or before the requested tick (evicted
    /// from the ring, or the tick predates observation).
    NoSnapshot {
        /// The requested tick.
        requested: u64,
    },
    /// The requested range ends past the last observed tick.
    BeyondRecording {
        /// The requested end tick.
        requested: u64,
        /// The last tick the history observed.
        recorded: u64,
    },
    /// A replayed tick's state hash differs from the original run's —
    /// the bit-identical guarantee is broken at this tick.
    Divergence {
        /// First tick whose hash mismatched.
        tick: u64,
        /// The original run's hash at that tick.
        expected: u64,
        /// The replayed hash.
        got: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NoSnapshot { requested } => {
                write!(f, "no retained snapshot at or before tick {requested}")
            }
            ReplayError::BeyondRecording {
                requested,
                recorded,
            } => write!(
                f,
                "range end {requested} is past the last recorded tick {recorded}"
            ),
            ReplayError::Divergence {
                tick,
                expected,
                got,
            } => write!(
                f,
                "replay diverged at tick {tick}: expected {expected:#018x}, got {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Snapshot ring buffer + per-tick hash recorder + incident pins.
///
/// Drive it as a [`Simulation::run_with`] observer (or call
/// [`WorldHistory::observe`] by hand between `tick_once` calls). The
/// first observation — typically the freshly built world at tick 0 —
/// is always captured, so the whole run stays rewindable until the
/// ring wraps.
pub struct WorldHistory {
    every: u64,
    capacity: usize,
    ring: VecDeque<(u64, Simulation)>,
    /// Snapshots protected from ring eviction because an incident
    /// rewinds to them.
    pinned: BTreeMap<u64, Simulation>,
    /// `hashes[i]` is the state hash at tick `first_tick + i`.
    hashes: Vec<u64>,
    first_tick: Option<u64>,
    incidents: Vec<Incident>,
    // Incident-edge baselines (previous observation's counters).
    seen_invariants: usize,
    seen_evacuations: usize,
    seen_false_accepted: bool,
    seen_confirmed: bool,
}

impl WorldHistory {
    /// A history snapshotting every `every` ticks, retaining up to
    /// `capacity` unpinned snapshots.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero or `capacity` is zero.
    pub fn new(every: u64, capacity: usize) -> Self {
        assert!(every > 0, "snapshot cadence must be at least one tick");
        assert!(capacity > 0, "ring capacity must be at least one");
        WorldHistory {
            every,
            capacity,
            ring: VecDeque::new(),
            pinned: BTreeMap::new(),
            hashes: Vec::new(),
            first_tick: None,
            incidents: Vec::new(),
            seen_invariants: 0,
            seen_evacuations: 0,
            seen_false_accepted: false,
            seen_confirmed: false,
        }
    }

    /// Defaults: every 20 ticks, 16 snapshots.
    pub fn with_defaults() -> Self {
        WorldHistory::new(DEFAULT_SNAPSHOT_EVERY, DEFAULT_CAPACITY)
    }

    /// Records the world at its current tick: hashes it, snapshots it
    /// when the tick lands on the cadence, and pins a rewind point when
    /// an incident edge fires. Call once per tick, in tick order.
    pub fn observe(&mut self, sim: &Simulation) {
        let tick = sim.ticks_elapsed();
        let first_observation = self.first_tick.is_none();
        match self.first_tick {
            None => self.first_tick = Some(tick),
            Some(first) => {
                debug_assert_eq!(
                    first + self.hashes.len() as u64,
                    tick,
                    "observe must be called once per tick, in order"
                );
            }
        }
        self.hashes.push(sim.state_hash());

        // The first observation always snapshots — `run_with` observers
        // first see tick 1, which never lands on the cadence, and
        // without this anchor nothing before the first cadence tick
        // would be rewindable.
        if first_observation || tick.is_multiple_of(self.every) {
            self.ring.push_back((tick, sim.clone()));
            while self.ring.len() > self.capacity {
                self.ring.pop_front();
            }
        }

        self.detect_incidents(sim, tick);
    }

    /// Compares this observation's counters to the previous one and
    /// pins a rewind point per newly fired incident class.
    fn detect_incidents(&mut self, sim: &Simulation, tick: u64) {
        let metrics = sim.metrics_so_far();
        let invariants = sim.invariants_so_far().total();
        let evacuations = metrics.benign_self_evacuations;
        let false_accepted = metrics.false_accusation_confirmed.is_some();
        let confirmed = metrics.violation_confirmed.is_some();

        let mut fired = Vec::new();
        if invariants > self.seen_invariants {
            fired.push(IncidentKind::InvariantViolation);
        }
        if evacuations > self.seen_evacuations {
            fired.push(IncidentKind::BenignSelfEvacuation);
        }
        if false_accepted && !self.seen_false_accepted {
            fired.push(IncidentKind::FalseReportAccepted);
        }
        if confirmed && !self.seen_confirmed {
            fired.push(IncidentKind::ViolationConfirmed);
        }
        self.seen_invariants = invariants;
        self.seen_evacuations = evacuations;
        self.seen_false_accepted = false_accepted;
        self.seen_confirmed = confirmed;

        for kind in fired {
            if let Some(rewind_tick) = self.pin_latest_at_or_before(tick) {
                self.incidents.push(Incident {
                    tick,
                    at: sim.now(),
                    kind,
                    rewind_tick,
                });
            }
        }
    }

    /// Moves the latest snapshot at or before `tick` into the pinned
    /// set (immune to ring eviction) and returns its tick.
    fn pin_latest_at_or_before(&mut self, tick: u64) -> Option<u64> {
        if let Some((&t, _)) = self.pinned.range(..=tick).next_back() {
            let newer_in_ring = self
                .ring
                .iter()
                .rev()
                .find(|(rt, _)| *rt <= tick)
                .is_some_and(|(rt, _)| *rt > t);
            if !newer_in_ring {
                return Some(t);
            }
        }
        let (rt, snap) = self.ring.iter().rev().find(|(rt, _)| *rt <= tick)?;
        let rt = *rt;
        self.pinned.entry(rt).or_insert_with(|| snap.clone());
        Some(rt)
    }

    /// Incidents recorded so far, in observation order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Ticks of the currently rewindable snapshots (pinned + ring),
    /// ascending and deduplicated.
    pub fn snapshot_ticks(&self) -> Vec<u64> {
        let mut ticks: Vec<u64> = self
            .pinned
            .keys()
            .copied()
            .chain(self.ring.iter().map(|(t, _)| *t))
            .collect();
        ticks.sort_unstable();
        ticks.dedup();
        ticks
    }

    /// The last tick this history observed, if any.
    pub fn last_tick(&self) -> Option<u64> {
        let first = self.first_tick?;
        Some(first + self.hashes.len() as u64 - 1)
    }

    /// The recorded state hash at `tick`, if observed.
    pub fn hash_at(&self, tick: u64) -> Option<u64> {
        let first = self.first_tick?;
        let offset = tick.checked_sub(first)? as usize;
        self.hashes.get(offset).copied()
    }

    /// An independent world positioned at the latest snapshot at or
    /// before `tick` — `None` when that part of history was evicted.
    /// Stepping the returned world re-executes the original run
    /// bit-identically (pinned by [`WorldHistory::resimulate`]).
    pub fn rewind(&self, tick: u64) -> Option<Simulation> {
        let ring_hit = self.ring.iter().rev().find(|(t, _)| *t <= tick);
        let pin_hit = self.pinned.range(..=tick).next_back();
        match (ring_hit, pin_hit) {
            (Some((rt, snap)), Some((pt, pin))) => {
                Some(if rt >= pt { snap.clone() } else { pin.clone() })
            }
            (Some((_, snap)), None) => Some(snap.clone()),
            (None, Some((_, pin))) => Some(pin.clone()),
            (None, None) => None,
        }
    }

    /// Re-executes `range` (tick numbers, half-open) from the nearest
    /// snapshot, calling `instrumentation` after every tick inside the
    /// range, and verifying every replayed tick — fast-forward included
    /// — against the recorded hash stream.
    ///
    /// # Errors
    ///
    /// [`ReplayError::NoSnapshot`] / [`ReplayError::BeyondRecording`]
    /// when the range is outside retained history;
    /// [`ReplayError::Divergence`] when a replayed tick's hash differs
    /// from the original run's (a determinism bug, never expected).
    pub fn resimulate(
        &self,
        range: Range<u64>,
        mut instrumentation: impl FnMut(&Simulation),
    ) -> Result<ReplayReport, ReplayError> {
        let last = self.last_tick().ok_or(ReplayError::NoSnapshot {
            requested: range.start,
        })?;
        let end = range.end.max(range.start);
        if end.saturating_sub(1) > last {
            return Err(ReplayError::BeyondRecording {
                requested: end,
                recorded: last,
            });
        }
        let mut world = self.rewind(range.start).ok_or(ReplayError::NoSnapshot {
            requested: range.start,
        })?;
        let started_from = world.ticks_elapsed();
        let mut ticks_replayed = 0u64;
        let mut hashes_compared = 0usize;
        while world.ticks_elapsed() + 1 < end {
            world.tick_once();
            ticks_replayed += 1;
            let tick = world.ticks_elapsed();
            if let Some(expected) = self.hash_at(tick) {
                let got = world.state_hash();
                hashes_compared += 1;
                if got != expected {
                    return Err(ReplayError::Divergence {
                        tick,
                        expected,
                        got,
                    });
                }
            }
            if range.contains(&tick) {
                instrumentation(&world);
            }
        }
        Ok(ReplayReport {
            started_from,
            ticks_replayed,
            hashes_compared,
            world,
        })
    }
}

impl std::fmt::Debug for WorldHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldHistory")
            .field("every", &self.every)
            .field("capacity", &self.capacity)
            .field("snapshots", &self.ring.len())
            .field("pinned", &self.pinned.len())
            .field("hashes", &self.hashes.len())
            .field("incidents", &self.incidents.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn tiny_config() -> SimConfig {
        let mut config = SimConfig::default();
        config.duration = 20.0;
        config.density = 30.0;
        config.seed = 11;
        config
    }

    /// Runs `ticks` ticks, observing each, and returns the history plus
    /// the finished world.
    fn record(ticks: u64) -> (WorldHistory, Simulation) {
        let mut sim = Simulation::new(tiny_config());
        let mut history = WorldHistory::new(10, 4);
        for _ in 0..ticks {
            sim.tick_once();
            history.observe(&sim);
        }
        (history, sim)
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_rejected() {
        let _ = WorldHistory::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WorldHistory::new(10, 0);
    }

    #[test]
    fn first_observation_is_always_rewindable() {
        let (history, _) = record(5);
        // Tick 1 is off-cadence but anchored as the first observation.
        assert_eq!(history.snapshot_ticks(), vec![1]);
        let world = history.rewind(3).expect("anchor snapshot");
        assert_eq!(world.ticks_elapsed(), 1);
    }

    #[test]
    fn ring_keeps_cadence_and_evicts_oldest() {
        let (history, _) = record(80);
        // Cadence snapshots at 10, 20, ..., 80 plus the tick-1 anchor;
        // capacity 4 keeps only the newest four.
        assert_eq!(history.snapshot_ticks(), vec![50, 60, 70, 80]);
        assert!(history.rewind(45).is_none(), "evicted history is gone");
        assert_eq!(history.last_tick(), Some(80));
    }

    #[test]
    fn hash_stream_is_recorded_per_tick() {
        let (history, sim) = record(25);
        assert_eq!(history.hash_at(25), Some(sim.state_hash()));
        assert!(history.hash_at(0).is_none(), "tick 0 was never observed");
        assert!(history.hash_at(26).is_none());
    }

    #[test]
    fn resimulate_reproduces_recorded_run() {
        let (history, sim) = record(60);
        let mut instrumented = Vec::new();
        let report = history
            .resimulate(40..61, |w| instrumented.push(w.ticks_elapsed()))
            .expect("replay clean");
        assert_eq!(report.started_from, 40);
        assert_eq!(report.ticks_replayed, 20);
        assert_eq!(report.hashes_compared, 20);
        assert_eq!(instrumented, (41..=60).collect::<Vec<_>>());
        assert_eq!(report.world.state_hash(), sim.state_hash());
    }

    #[test]
    fn resimulate_rejects_out_of_range() {
        let (history, _) = record(30);
        assert!(matches!(
            history.resimulate(25..99, |_| {}),
            Err(ReplayError::BeyondRecording {
                requested: 99,
                recorded: 30
            })
        ));
        let empty = WorldHistory::with_defaults();
        assert!(matches!(
            empty.resimulate(0..1, |_| {}),
            Err(ReplayError::NoSnapshot { .. })
        ));
    }

    #[test]
    fn replay_errors_render() {
        let err = ReplayError::Divergence {
            tick: 7,
            expected: 1,
            got: 2,
        };
        assert!(err.to_string().contains("diverged at tick 7"));
        assert!(ReplayError::NoSnapshot { requested: 3 }
            .to_string()
            .contains("tick 3"));
    }
}
