//! The intersection-manager agent: an honest [`NwadeManager`] optionally
//! wrapped in the malicious behaviours of threats iii/iv.

use nwade::messages::IncidentReport;
use nwade::{ManagerAction, NwadeManager, WindowPipeline};
use nwade_aim::{corrupt, PlanRequest};
use nwade_chain::{tamper, Block};
use nwade_crypto::SignatureScheme;
use nwade_geometry::Vec2;
use nwade_intersection::Topology;
use nwade_traffic::VehicleId;
use std::collections::HashSet;
use std::sync::Arc;

/// The manager-side agent.
#[derive(Clone)]
pub struct ImuAgent {
    /// The honest protocol engine.
    pub manager: NwadeManager,
    /// Whether the attacker controls the manager.
    pub malicious: bool,
    /// Vehicles the (malicious) manager shields: reports about them are
    /// dismissed without verification.
    pub shielded: HashSet<VehicleId>,
    /// Signer (needed to re-sign corrupted blocks — the compromised
    /// manager still holds the key).
    signer: Arc<dyn SignatureScheme>,
    /// Corrupt the next block (pure-IM attack).
    pub corrupt_next_block: bool,
    /// Whether a corrupted block has been emitted.
    pub corruption_emitted: bool,
    topology: Arc<Topology>,
}

/// What the IMU host should do after handling an event.
#[derive(Debug, Clone)]
pub enum ImuAction {
    /// Broadcast a block.
    Broadcast(Block),
    /// Poll watchers (honest path).
    Poll {
        /// Correlation id.
        request_id: u64,
        /// The accused vehicle.
        suspect: VehicleId,
        /// The watchers.
        group: Vec<VehicleId>,
        /// The suspect's published plan.
        plan: Option<Box<nwade_aim::TravelPlan>>,
    },
    /// Dismiss a report.
    Dismiss {
        /// Reporting vehicle.
        reporter: VehicleId,
        /// Cleared suspect.
        suspect: VehicleId,
    },
    /// Broadcast an evacuation alert.
    Alert {
        /// Confirmed suspect.
        suspect: VehicleId,
        /// Its last known position.
        location: Vec2,
    },
}

impl ImuAgent {
    /// Creates the agent.
    pub fn new(
        manager: NwadeManager,
        topology: Arc<Topology>,
        signer: Arc<dyn SignatureScheme>,
        malicious: bool,
    ) -> Self {
        ImuAgent {
            manager,
            malicious,
            shielded: HashSet::new(),
            signer,
            corrupt_next_block: false,
            corruption_emitted: false,
            topology,
        }
    }

    fn convert(action: ManagerAction) -> ImuAction {
        match action {
            ManagerAction::BroadcastBlock(b) => ImuAction::Broadcast(b),
            ManagerAction::PollWatchers {
                request_id,
                suspect,
                group,
                plan,
            } => ImuAction::Poll {
                request_id,
                suspect,
                group,
                plan,
            },
            ManagerAction::Dismiss { reporter, suspect } => {
                ImuAction::Dismiss { reporter, suspect }
            }
            ManagerAction::EvacuationAlert {
                suspect, location, ..
            } => ImuAction::Alert { suspect, location },
        }
    }

    /// Processes one scheduling window. A malicious manager with
    /// `corrupt_next_block` set substitutes conflicting plans into the
    /// properly signed block (it holds the key).
    pub fn on_window(&mut self, requests: &[PlanRequest], now: f64) -> Vec<ImuAction> {
        let Some(action) = self.manager.on_window(requests, now) else {
            return Vec::new();
        };
        let ManagerAction::BroadcastBlock(block) = action else {
            return vec![Self::convert(action)];
        };
        let block = self.finalize_block(block, now);
        vec![ImuAction::Broadcast(block)]
    }

    /// The pipelined variant of [`ImuAgent::on_window`]: scheduling,
    /// conflict filtering and the Merkle root run on the calling thread
    /// while the chain-serial signing happens on `pipeline`'s worker.
    /// The window is drained before returning (the simulator's same-tick
    /// discipline), so the returned actions — corruption hook included —
    /// are identical to the sequential path.
    pub fn on_window_pipelined(
        &mut self,
        requests: &[PlanRequest],
        now: f64,
        pipeline: &mut WindowPipeline,
    ) -> Vec<ImuAction> {
        let Some(prepared) = self.manager.prepare_window(requests, now) else {
            return Vec::new();
        };
        pipeline.submit(prepared);
        let mut actions = Vec::new();
        for sealed in pipeline.drain() {
            let ManagerAction::BroadcastBlock(block) = self.manager.absorb_sealed(sealed) else {
                continue;
            };
            let block = self.finalize_block(block, now);
            actions.push(ImuAction::Broadcast(block));
        }
        actions
    }

    /// Applies the pure-IM block-corruption attack to a freshly sealed
    /// block when armed: conflicting plans are substituted and the block
    /// re-signed (the compromised manager still holds the key). Fires at
    /// most once per run; the block passes through unchanged when the
    /// attack is off or the window lacks crossing traffic.
    pub fn finalize_block(&mut self, block: Block, now: f64) -> Block {
        if self.malicious && self.corrupt_next_block && !self.corruption_emitted {
            if let Some(bad_plans) = corrupt::make_conflicting(block.plans(), &self.topology, now) {
                self.corruption_emitted = true;
                self.corrupt_next_block = false;
                return tamper::resign_with_plans(&block, bad_plans, self.signer.as_ref());
            }
            // Not enough crossing traffic in this window; try the next.
        }
        block
    }

    /// Handles an incident report. The malicious manager dismisses
    /// reports about shielded vehicles and instantly "confirms" reports
    /// *from* its colluders (staging a false evacuation).
    pub fn on_incident_report(
        &mut self,
        report: &IncidentReport,
        nearby_watchers: &[VehicleId],
        colluders: &HashSet<VehicleId>,
        now: f64,
    ) -> Vec<ImuAction> {
        if self.malicious {
            if self.shielded.contains(&report.suspect) {
                // Protect the colluding violator: tell the honest
                // reporter it was wrong.
                return vec![ImuAction::Dismiss {
                    reporter: report.reporter,
                    suspect: report.suspect,
                }];
            }
            if colluders.contains(&report.reporter) {
                // Collusion: stage an evacuation against the innocent
                // accused without any verification.
                return vec![ImuAction::Alert {
                    suspect: report.suspect,
                    location: report.evidence.position,
                }];
            }
        }
        self.manager
            .on_incident_report(report, nearby_watchers, now)
            .into_iter()
            .map(Self::convert)
            .collect()
    }

    /// Handles a watcher's verify-response (ignored by a malicious
    /// manager unless it serves the collusion).
    pub fn on_verify_response(
        &mut self,
        request_id: u64,
        suspect: VehicleId,
        observed: bool,
        abnormal: bool,
        fresh_candidates: &[VehicleId],
        now: f64,
    ) -> Vec<ImuAction> {
        if self.malicious {
            return Vec::new();
        }
        self.manager
            .on_verify_response(
                request_id,
                suspect,
                observed,
                abnormal,
                fresh_candidates,
                now,
            )
            .into_iter()
            .map(Self::convert)
            .collect()
    }

    /// Generates the evacuation block around confirmed threats.
    pub fn evacuation_block(
        &mut self,
        states: &[PlanRequest],
        threats: &[Vec2],
        now: f64,
    ) -> Option<Block> {
        match self.manager.evacuation_block(states, threats, now)? {
            ManagerAction::BroadcastBlock(b) => Some(b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade::messages::Observation;
    use nwade::NwadeConfig;
    use nwade_aim::{ReservationScheduler, SchedulerConfig};
    use nwade_crypto::MockScheme;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind, MovementId};
    use nwade_traffic::VehicleDescriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agent(malicious: bool) -> ImuAgent {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let signer = Arc::new(MockScheme::from_seed(0));
        let manager = NwadeManager::new(
            topo.clone(),
            Box::new(ReservationScheduler::new(
                topo.clone(),
                SchedulerConfig::default(),
            )),
            signer.clone(),
            NwadeConfig::default(),
        );
        ImuAgent::new(manager, topo, signer, malicious)
    }

    fn requests(n: u64, offset: u64) -> Vec<PlanRequest> {
        (0..n)
            .map(|i| PlanRequest {
                id: VehicleId::new(offset + i),
                descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(offset + i)),
                movement: MovementId::new((((offset + i) * 7) % 16) as u16),
                position_s: 40.0 * i as f64,
                speed: 15.0,
            })
            .collect()
    }

    fn incident(reporter: u64, suspect: u64) -> IncidentReport {
        IncidentReport {
            reporter: VehicleId::new(reporter),
            suspect: VehicleId::new(suspect),
            evidence: Observation {
                target: VehicleId::new(suspect),
                position: Vec2::new(5.0, 5.0),
                speed: 0.0,
                time: 1.0,
            },
            block_index: 0,
        }
    }

    #[test]
    fn honest_window_broadcasts_clean_block() {
        let mut a = agent(false);
        let actions = a.on_window(&requests(3, 0), 0.0);
        let [ImuAction::Broadcast(block)] = actions.as_slice() else {
            panic!("expected broadcast");
        };
        assert_eq!(block.plans().len(), 3);
        assert!(nwade_aim::find_conflicts(block.plans(), a.manager.topology(), 0.5).is_empty());
    }

    #[test]
    fn malicious_window_emits_conflicting_block_once() {
        let mut a = agent(true);
        a.corrupt_next_block = true;
        let actions = a.on_window(&requests(8, 0), 0.0);
        let [ImuAction::Broadcast(block)] = actions.as_slice() else {
            panic!("expected broadcast");
        };
        assert!(
            !nwade_aim::find_conflicts(block.plans(), a.manager.topology(), 0.5).is_empty(),
            "block should carry conflicting plans"
        );
        assert!(a.corruption_emitted);
        // The next window is clean again.
        let actions = a.on_window(&requests(4, 100), 10.0);
        let [ImuAction::Broadcast(block)] = actions.as_slice() else {
            panic!()
        };
        assert!(nwade_aim::find_conflicts(block.plans(), a.manager.topology(), 0.5).is_empty());
    }

    /// The pipelined entry point produces byte-identical broadcasts to
    /// the sequential one — including the one-shot corruption swap —
    /// and leaves the manager at the same chain tip.
    #[test]
    fn pipelined_window_matches_sequential_including_corruption() {
        let mut seq = agent(true);
        let mut pipe = agent(true);
        seq.corrupt_next_block = true;
        pipe.corrupt_next_block = true;
        let mut pipeline = WindowPipeline::for_manager(&pipe.manager);
        for (w, n) in [(0u64, 8u64), (1, 4), (2, 6)] {
            let reqs = requests(n, w * 100);
            let now = w as f64 * 10.0;
            let a = seq.on_window(&reqs, now);
            let b = pipe.on_window_pipelined(&reqs, now, &mut pipeline);
            assert_eq!(a.len(), b.len(), "window {w}");
            for (x, y) in a.iter().zip(&b) {
                let (ImuAction::Broadcast(x), ImuAction::Broadcast(y)) = (x, y) else {
                    panic!("expected broadcasts");
                };
                assert_eq!(x.hash(), y.hash(), "window {w} diverged");
                assert_eq!(x.signature(), y.signature());
            }
        }
        assert!(seq.corruption_emitted);
        assert_eq!(seq.corruption_emitted, pipe.corruption_emitted);
        assert_eq!(seq.manager.chain_tip(), pipe.manager.chain_tip());
    }

    #[test]
    fn malicious_manager_shields_colluder() {
        let mut a = agent(true);
        a.shielded.insert(VehicleId::new(9));
        let actions = a.on_incident_report(&incident(0, 9), &[], &HashSet::new(), 1.0);
        assert!(matches!(
            actions.as_slice(),
            [ImuAction::Dismiss { reporter, suspect }]
                if reporter.raw() == 0 && suspect.raw() == 9
        ));
    }

    #[test]
    fn malicious_manager_confirms_colluder_false_report() {
        let mut a = agent(true);
        let mut colluders = HashSet::new();
        colluders.insert(VehicleId::new(7));
        let actions = a.on_incident_report(&incident(7, 3), &[], &colluders, 1.0);
        assert!(matches!(
            actions.as_slice(),
            [ImuAction::Alert { suspect, .. }] if suspect.raw() == 3
        ));
    }

    #[test]
    fn malicious_manager_ignores_votes() {
        let mut a = agent(true);
        assert!(a
            .on_verify_response(0, VehicleId::new(1), true, true, &[], 1.0)
            .is_empty());
    }

    #[test]
    fn honest_manager_runs_normal_verification() {
        let mut a = agent(false);
        let watchers: Vec<VehicleId> = (1..8).map(VehicleId::new).collect();
        let actions = a.on_incident_report(&incident(0, 9), &watchers, &HashSet::new(), 1.0);
        assert!(matches!(actions.as_slice(), [ImuAction::Poll { .. }]));
    }
}
